//! Integration tests for the query service under concurrency: many
//! clients over real TCP, admission-control rejections, per-request
//! deadlines, and the two cache levels observable through `stats`.
//!
//! The catalog is the DAT1 scenario from `sjdata`, so the queries here
//! exercise the same derivation pipelines as the paper's case study.

use scrubjay::prelude::*;
use sjdata::{dat1, Dat1Config};
use sjserve::protocol::codes;
use sjserve::scheduler::SchedulerConfig;
use sjserve::{serve, Client, ClientError, QueryService, QuerySpec, ServiceConfig, ValueSpec};
use std::net::SocketAddr;
use std::time::Duration;

fn small_cfg() -> Dat1Config {
    Dat1Config {
        racks: 4,
        nodes_per_rack: 4,
        amg_rack_index: 2,
        amg_nodes: 3,
        background_jobs: 3,
        duration_secs: 1800,
        ..Dat1Config::default()
    }
}

fn start_service(scheduler: SchedulerConfig) -> QueryService {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    QueryService::new(
        ctx,
        catalog,
        ServiceConfig {
            scheduler,
            ..ServiceConfig::default()
        },
    )
}

fn rack_heat_spec() -> QuerySpec {
    QuerySpec {
        domains: vec!["job".into(), "rack".into()],
        values: vec![ValueSpec::dim("application"), ValueSpec::dim("heat")],
        window_secs: None,
        step_secs: None,
        limit: Some(50),
    }
}

/// The acceptance bar: at least 8 concurrent clients over TCP, mixed
/// hot/cold queries, zero deadlocks, and correct bookkeeping after.
#[test]
fn eight_concurrent_clients_mixed_hot_and_cold() {
    let service = start_service(SchedulerConfig {
        workers: 4,
        max_queue: 64,
        default_timeout: Duration::from_secs(60),
    });
    let handle = serve(service, "127.0.0.1:0").unwrap();
    let addr: SocketAddr = handle.addr;

    let clients = 8;
    let queries_each = 4;
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{c}");
                let mut client = Client::connect_as(addr, &tenant).unwrap();
                let mut ok = 0usize;
                let mut result_hits = 0usize;
                for i in 0..queries_each {
                    // Half the clients share one hot query; the rest add a
                    // per-client window so their first request is cold
                    // (distinct plan key -> distinct fingerprint).
                    let mut spec = rack_heat_spec();
                    if c % 2 == 1 {
                        spec.window_secs = Some(120.0 + c as f64);
                    }
                    let response = client
                        .query(spec, Some(60_000))
                        .unwrap_or_else(|e| panic!("client {c} query {i}: {e}"));
                    let result = response.result.expect("ok response carries a result");
                    assert!(!result.columns.is_empty());
                    assert!(result.row_count > 0, "derived dataset should be non-empty");
                    ok += 1;
                    if result.result_cache_hit {
                        result_hits += 1;
                    }
                }
                (ok, result_hits)
            })
        })
        .collect();

    let mut ok_total = 0;
    let mut hit_total = 0;
    for t in threads {
        let (ok, hits) = t.join().expect("no client thread may panic or deadlock");
        ok_total += ok;
        hit_total += hits;
    }
    assert_eq!(ok_total, clients * queries_each);
    // Every client repeats its own query, so most requests are cache hits.
    assert!(
        hit_total >= clients * (queries_each - 1),
        "expected widespread result-cache hits, saw {hit_total}"
    );

    // Stats through the protocol agree with what the clients saw.
    let mut probe = Client::connect_as(addr, "probe").unwrap();
    let stats = probe.stats().unwrap().stats.expect("stats payload");
    assert!(stats.requests_total >= (clients * queries_each) as u64);
    assert_eq!(stats.rejected_queue_full, 0);
    assert!(
        stats.plan_cache_hits > 0,
        "repeat queries must hit the plan cache"
    );
    assert!(stats.result_cache_hits >= hit_total as u64);
    assert!(stats.latency_count >= (clients * queries_each) as u64);
    assert!(stats.latency_ms_p50 > 0.0);
    assert!(stats.latency_ms_p99 >= stats.latency_ms_p50);
    assert!(stats.plan_cache_entries >= 1);

    let final_stats = handle.stop();
    assert_eq!(final_stats.in_flight, 0);
    assert_eq!(final_stats.queue_depth, 0);
}

/// Repeating one query must hit both cache levels, and the hit must be
/// measurably faster end to end than the cold miss.
#[test]
fn repeated_query_hits_plan_and_result_cache_and_is_faster() {
    let service = start_service(SchedulerConfig::default());
    let cold = service
        .handle(sjserve::Request::query("cold", "t", rack_heat_spec()))
        .result
        .expect("cold query succeeds");
    assert!(!cold.plan_cache_hit);
    assert!(!cold.result_cache_hit);
    assert!(
        cold.engine_metrics.is_some(),
        "cold run reports engine work"
    );

    let mut hot_ms = f64::MAX;
    for i in 0..3 {
        let hot = service
            .handle(sjserve::Request::query(
                &format!("hot{i}"),
                "t",
                rack_heat_spec(),
            ))
            .result
            .expect("hot query succeeds");
        assert!(hot.plan_cache_hit, "solved plan must be reused");
        assert!(hot.result_cache_hit, "materialized rows must be reused");
        assert!(hot.engine_metrics.is_none(), "nothing executed on a hit");
        assert_eq!(hot.rows, cold.rows, "cache must not change the answer");
        hot_ms = hot_ms.min(hot.elapsed_ms);
    }
    assert!(
        hot_ms < cold.elapsed_ms,
        "cache hit ({hot_ms}ms) should beat the cold path ({}ms)",
        cold.elapsed_ms
    );
    service.shutdown();
}

/// With a one-deep queue and one busy worker, a burst must produce
/// structured `queue_full` rejections — not blocking, not dropped lines.
#[test]
fn over_capacity_burst_is_rejected_with_structured_errors() {
    let service = start_service(SchedulerConfig {
        workers: 1,
        max_queue: 1,
        default_timeout: Duration::from_secs(60),
    });
    let handle = serve(service, "127.0.0.1:0").unwrap();
    let addr = handle.addr;

    let burst = 12;
    let threads: Vec<_> = (0..burst)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect_as(addr, &format!("burst-{c}")).unwrap();
                match client.query(rack_heat_spec(), Some(60_000)) {
                    Ok(resp) => {
                        assert!(resp.result.is_some());
                        Ok(())
                    }
                    Err(ClientError::Server(body)) => {
                        assert_eq!(body.code, codes::QUEUE_FULL, "{body:?}");
                        assert!(body.message.contains("capacity"), "{body:?}");
                        Err(())
                    }
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            })
        })
        .collect();

    let rejected = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(Result::is_err)
        .count();
    // 12 near-simultaneous cold queries against 1 worker + 1 queue slot
    // cannot all be admitted.
    assert!(rejected > 0, "expected queue_full rejections");

    let stats = handle.stop();
    assert_eq!(stats.rejected_queue_full, rejected as u64);
    assert!(stats.per_tenant.iter().any(|t| t.rejected > 0));
}

/// An impossibly small deadline yields a structured timeout, and the
/// service keeps serving afterwards.
#[test]
fn tiny_deadline_times_out_with_structured_error() {
    let service = start_service(SchedulerConfig {
        workers: 1,
        max_queue: 8,
        default_timeout: Duration::from_secs(60),
    });

    let mut spec = rack_heat_spec();
    spec.window_secs = Some(97.0); // unique plan: never pre-cached
    let mut request = sjserve::Request::query("rush", "t", spec);
    request.timeout_ms = Some(0);
    let response = service.handle(request);
    assert!(!response.is_ok());
    assert_eq!(response.code(), Some(codes::TIMEOUT));

    // The worker pool survives; a patient identical query still answers.
    let mut spec = rack_heat_spec();
    spec.window_secs = Some(97.0);
    let response = service.handle(sjserve::Request::query("patient", "t", spec));
    assert!(response.is_ok(), "{:?}", response.error);

    let stats = service.shutdown();
    assert!(stats.timeouts >= 1);
}

/// Queries nothing in the catalog can satisfy produce `no_solution`, and
/// malformed payloads produce `bad_request` — both as typed errors.
#[test]
fn structured_errors_for_bad_queries() {
    let service = start_service(SchedulerConfig::default());

    // `power` is in the default dictionary but nothing in DAT1 measures
    // it: the solve itself must fail, structurally.
    let spec = QuerySpec {
        domains: vec!["job".into()],
        values: vec![ValueSpec::dim("power")],
        window_secs: None,
        step_secs: None,
        limit: None,
    };
    let response = service.handle(sjserve::Request::query("q1", "t", spec));
    assert_eq!(
        response.code(),
        Some(codes::NO_SOLUTION),
        "{:?}",
        response.error
    );

    // An unknown keyword is caught earlier, at canonicalization.
    let spec = QuerySpec {
        domains: vec!["job".into()],
        values: vec![ValueSpec::dim("no-such-dimension")],
        window_secs: None,
        step_secs: None,
        limit: None,
    };
    let response = service.handle(sjserve::Request::query("q2", "t", spec));
    assert_eq!(
        response.code(),
        Some(codes::BAD_REQUEST),
        "{:?}",
        response.error
    );

    let bare = sjserve::Request::bare("q3", sjserve::Verb::Query);
    let response = service.handle(bare);
    assert_eq!(response.code(), Some(codes::BAD_REQUEST));

    service.shutdown();
}

/// `health` and `explain` over the wire; `shutdown` verb stops the
/// server and the final report is returned to the waiter.
#[test]
fn health_explain_and_shutdown_over_tcp() {
    let service = start_service(SchedulerConfig::default());
    let handle = serve(service, "127.0.0.1:0").unwrap();
    let addr = handle.addr;

    let mut client = Client::connect_as(addr, "ops").unwrap();
    let health = client.health().unwrap().health.expect("health payload");
    assert_eq!(health.status, "ok");
    assert!(
        health.datasets.contains(&"rack_temps".to_string()),
        "{health:?}"
    );

    let plan = client
        .explain(rack_heat_spec())
        .unwrap()
        .plan
        .expect("plan payload");
    assert!(plan.plan_text.contains("rack_temps"), "{}", plan.plan_text);
    assert!(plan.plan_json.contains("\"load\""), "{}", plan.plan_json);
    // Explaining again reuses the solved plan.
    let again = client.explain(rack_heat_spec()).unwrap().plan.unwrap();
    assert!(again.plan_cache_hit);
    assert_eq!(again.fingerprint, plan.fingerprint);

    client.shutdown().unwrap();
    let report = handle.wait();
    assert!(report.requests_total >= 3);
}
