//! Engine robustness: large catalogs, the dataset-count cap, repeated
//! solving, and schema-prediction consistency on every solvable query.

use scrubjay::prelude::*;
use sjcore::engine::EngineConfig;
use sjcore::SjError;

/// A chain catalog: dataset i shares a domain with dataset i+1 only, so
/// relating the ends requires every link.
fn chain_catalog(ctx: &ExecCtx, links: usize) -> Catalog {
    let mut catalog = Catalog::default_hpc();
    // Chain through alternating identifier dimensions.
    let dims = [
        ("compute-node", "node-id"),
        ("rack", "rack-id"),
        ("cpu", "cpu-id"),
        ("socket", "socket-id"),
        ("job", "job-id"),
    ];
    for i in 0..links {
        let (d1, u1) = dims[i % dims.len()];
        let (d2, u2) = dims[(i + 1) % dims.len()];
        let schema = Schema::new(vec![
            FieldDef::new("a", FieldSemantics::domain(d1, u1)),
            FieldDef::new("b", FieldSemantics::domain(d2, u2)),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..4)
            .map(|k| {
                Row::new(vec![
                    Value::str(format!("{d1}-{k}")),
                    Value::str(format!("{d2}-{k}")),
                ])
            })
            .collect();
        catalog
            .register_dataset(
                &format!("link{i}"),
                SjDataset::from_rows(ctx, rows, schema, format!("link{i}"), 1),
            )
            .unwrap();
    }
    // A value at the far end of the chain.
    let (dl, ul) = dims[links % dims.len()];
    let schema = Schema::new(vec![
        FieldDef::new("x", FieldSemantics::domain(dl, ul)),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    let rows: Vec<Row> = (0..4)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("{dl}-{k}")),
                Value::Float(60.0 + k as f64),
            ])
        })
        .collect();
    catalog
        .register_dataset(
            "sensor",
            SjDataset::from_rows(ctx, rows, schema, "sensor", 1),
        )
        .unwrap();
    catalog
}

#[test]
fn chains_are_followed_link_by_link() {
    let ctx = ExecCtx::local();
    // 3 links: node->rack->cpu->socket, sensor on socket; query relates
    // the chain's first domain to the sensor's value.
    let catalog = chain_catalog(&ctx, 3);
    let query = Query::new(["node"], vec![QueryValue::dim("temperature")]);
    let plan = QueryEngine::new(&catalog).solve(&query).unwrap();
    // Needs all three links plus the sensor.
    assert_eq!(plan.loads().len(), 4);
    assert_eq!(plan.num_combines(), 3);
    let ds = plan.execute(&catalog, None).unwrap();
    assert_eq!(ds.count().unwrap(), 4);
}

#[test]
fn max_datasets_cap_limits_the_widening() {
    let ctx = ExecCtx::local();
    let catalog = chain_catalog(&ctx, 4);
    let query = Query::new(["node"], vec![QueryValue::dim("temperature")]);
    // The full chain needs 5 datasets; cap at 2 and it must fail — and
    // because datasets remained untried, the failure must be the
    // structured truncation error, not a claim of unsatisfiability.
    let engine = QueryEngine::with_config(
        &catalog,
        EngineConfig {
            max_datasets: 2,
            ..EngineConfig::default()
        },
    );
    assert!(matches!(
        engine.solve(&query).unwrap_err(),
        SjError::SearchTruncated {
            max_datasets: 2,
            ..
        }
    ));
    // With the default cap it solves.
    assert!(QueryEngine::new(&catalog).solve(&query).is_ok());
}

#[test]
fn repeated_solving_is_stable() {
    let ctx = ExecCtx::local();
    let catalog = chain_catalog(&ctx, 3);
    let query = Query::new(["node"], vec![QueryValue::dim("temperature")]);
    let engine = QueryEngine::new(&catalog);
    let first = engine.solve(&query).unwrap();
    for _ in 0..5 {
        assert_eq!(engine.solve(&query).unwrap(), first);
    }
}

#[test]
fn predicted_schema_matches_execution_on_many_queries() {
    let ctx = ExecCtx::local();
    let catalog = chain_catalog(&ctx, 4);
    let engine = QueryEngine::new(&catalog);
    for domain in ["node", "rack", "cpu", "socket", "job"] {
        let query = Query::new(
            match domain {
                "node" => ["node"],
                "rack" => ["rack"],
                "cpu" => ["cpu"],
                "socket" => ["socket"],
                _ => ["job"],
            },
            vec![QueryValue::dim("temperature")],
        );
        match engine.solve(&query) {
            Ok(plan) => {
                let predicted = engine.solution_schema(&query).unwrap();
                let ds = plan.execute(&catalog, None).unwrap();
                assert_eq!(ds.schema(), &predicted, "domain {domain}");
            }
            Err(SjError::NoSolution(_)) => {}
            Err(e) => panic!("unexpected error for {domain}: {e}"),
        }
    }
}

#[test]
fn a_wide_catalog_solves_quickly() {
    // 40 datasets (over the 32-dataset cap for one query, but the cover
    // seeds small); solving must stay interactive.
    let ctx = ExecCtx::local();
    let mut catalog = chain_catalog(&ctx, 3);
    for i in 0..36 {
        let schema = Schema::new(vec![
            FieldDef::new("n", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("p", FieldSemantics::value("power", "watts")),
        ])
        .unwrap();
        catalog
            .register_dataset(
                &format!("noise{i}"),
                SjDataset::from_rows(&ctx, vec![], schema, format!("noise{i}"), 1),
            )
            .unwrap();
    }
    let query = Query::new(["node"], vec![QueryValue::dim("temperature")]);
    let start = std::time::Instant::now();
    let plan = QueryEngine::new(&catalog).solve(&query).unwrap();
    let elapsed = start.elapsed();
    assert!(plan.loads().len() >= 4);
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "solve took {elapsed:?}"
    );
}
