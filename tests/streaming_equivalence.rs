//! Golden incremental-equivalence suite (the tentpole's headline
//! guarantee): for each of five seeded disarray append schedules, every
//! window a standing query emits must be **byte-identical** to solving
//! the same query from scratch over the full accepted prefix at that
//! emission's watermark — under both planners and both partition
//! representations.
//!
//! The cold reference re-executes the standing plan over the entire
//! accepted prefix ([`StreamEngine::cold_window`]); the emission was
//! produced from the horizon-widened window slice. Agreement therefore
//! proves the incremental maintenance path (slice evaluation + cached
//! windows + tag invalidation) loses nothing relative to batch solving.

use sjcore::engine::{EngineConfig, PlannerKind, Query, QueryValue};
use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::ExecCtx;
use sjstream::{StreamConfig, StreamEngine};

/// The standing derive-rate + interpolation-join query: instruction
/// rates from cumulative counters, joined with interpolated coolant
/// temperatures, per node over time.
fn standing_query() -> Query {
    Query::new(
        ["compute-node", "time"],
        vec![
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::dim("temperature"),
        ],
    )
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_secs: 60.0,
        allowed_lateness_secs: 120.0,
        // Must cover the interpolation window (120 s default) plus the
        // slowest sampling cadence in any schedule.
        horizon_secs: 300.0,
        eval_parts: 1,
        ..StreamConfig::default()
    }
}

/// Replay one schedule and assert equivalence on every emission.
/// Returns (emissions, re_emissions).
fn run_schedule(kind: Disarray, planner: PlannerKind, rowwise: bool) -> (usize, usize) {
    let ctx = if rowwise {
        ExecCtx::local().with_rowwise()
    } else {
        ExecCtx::local()
    };
    let catalog = stream_catalog(&ctx).expect("stream catalog");
    let engine_config = EngineConfig {
        planner,
        ..EngineConfig::default()
    };
    let mut engine = StreamEngine::new(&ctx, catalog, stream_config(), engine_config);
    engine
        .subscribe("q-equiv", "tenant-a", &standing_query())
        .expect("subscribe");

    let label = format!("{} planner={planner:?} rowwise={rowwise}", kind.name());
    let (mut emissions, mut re_emissions) = (0usize, 0usize);
    for (i, batch) in disarray_schedule(kind, 42, 30).iter().enumerate() {
        let out = engine.append(batch).expect("append");
        assert!(
            out.failures.is_empty(),
            "[{label}] append {i} tore down the subscription: {:?}",
            out.failures
        );
        for e in &out.emissions {
            assert!(
                !e.degraded,
                "[{label}] window {} degraded without fault injection: {:?}",
                e.window_id, e.error
            );
            let (cold_cols, cold_rows) = engine
                .cold_window("q-equiv", e.window_id)
                .expect("cold solve");
            assert_eq!(
                e.columns, cold_cols,
                "[{label}] window {} columns diverged",
                e.window_id
            );
            assert_eq!(
                e.rows, cold_rows,
                "[{label}] window {} ({} → {}) diverged from the cold batch solve \
                 at watermark {} (append {i}, re_emission={})",
                e.window_id, e.start_us, e.end_us, e.watermark_us, e.re_emission
            );
            emissions += 1;
            re_emissions += e.re_emission as usize;
        }
    }
    assert!(
        emissions >= 3,
        "[{label}] expected at least 3 emissions, got {emissions}"
    );
    (emissions, re_emissions)
}

fn run_all_modes(kind: Disarray) {
    for planner in [PlannerKind::Legacy, PlannerKind::Constraint] {
        for rowwise in [false, true] {
            run_schedule(kind, planner, rowwise);
        }
    }
}

#[test]
fn in_order_schedule_matches_cold_solves() {
    run_all_modes(Disarray::InOrder);
}

#[test]
fn clock_skewed_sources_match_cold_solves() {
    run_all_modes(Disarray::ClockSkew);
}

#[test]
fn late_and_duplicated_samples_match_cold_solves() {
    run_all_modes(Disarray::LateDuplicates);
}

#[test]
fn counter_wrap_mid_stream_matches_cold_solves() {
    run_all_modes(Disarray::CounterWrap);
}

#[test]
fn rack_skew_matches_cold_solves() {
    run_all_modes(Disarray::RackSkew);
}

/// The disarray shapes must actually exercise the policies they name.
#[test]
fn disarray_policies_are_exercised() {
    let ctx = ExecCtx::local();
    let catalog = stream_catalog(&ctx).unwrap();
    let mut engine = StreamEngine::new(&ctx, catalog, stream_config(), EngineConfig::default());
    engine
        .subscribe("q-equiv", "tenant-a", &standing_query())
        .unwrap();
    for batch in disarray_schedule(Disarray::LateDuplicates, 42, 30) {
        engine.append(&batch).unwrap();
    }
    let c = engine.counters();
    assert!(
        c.rows_duplicate_dropped > 0,
        "late_duplicates schedule produced no duplicates: {c:?}"
    );
    assert!(
        c.window_re_emissions > 0,
        "late data never re-emitted a window: {c:?}"
    );
    assert!(c.window_emissions > 0);

    // Clock skew holds the watermark back: with the coolant clock three
    // steps behind, strictly fewer windows ripen than in order.
    let ctx2 = ExecCtx::local();
    let mut skewed = StreamEngine::new(
        &ctx2,
        stream_catalog(&ctx2).unwrap(),
        stream_config(),
        EngineConfig::default(),
    );
    skewed.subscribe("q", "t", &standing_query()).unwrap();
    for batch in disarray_schedule(Disarray::ClockSkew, 42, 30) {
        skewed.append(&batch).unwrap();
    }
    assert!(skewed.watermark_us() < engine.watermark_us());
}
