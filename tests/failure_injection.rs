//! Failure-injection integration tests: malformed inputs, semantic
//! conflicts, unsolvable queries, empty data, and counter pathologies
//! must fail loudly (or degrade gracefully), never panic or silently
//! corrupt results.

use scrubjay::prelude::*;
use sjcore::derivations::combine::{InterpolationJoin, NaturalJoin};
use sjcore::derivations::transform::DeriveRate;
use sjcore::derivations::{Combination, Transformation};
use sjcore::semantics::DimensionDef;
use sjcore::wrappers::{wrap_csv, CsvOptions, KvStore};
use sjcore::SjError;

fn dict() -> SemanticDictionary {
    SemanticDictionary::default_hpc()
}

fn temp_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap()
}

#[test]
fn malformed_csv_fails_with_context() {
    let ctx = ExecCtx::local();
    // Bad datetime.
    let e = wrap_csv(
        &ctx,
        "time,node,temp\nnot-a-time,n1,4.2\n",
        temp_schema(),
        &dict(),
        "t",
        &CsvOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(e, SjError::ParseError(_)));
    assert!(e.to_string().contains("record 1"));

    // Short record.
    let e = wrap_csv(
        &ctx,
        "time,node,temp\n2017-01-01 00:00:00,n1\n",
        temp_schema(),
        &dict(),
        "t",
        &CsvOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(e, SjError::ParseError(_)));

    // Unterminated quote.
    let e = wrap_csv(
        &ctx,
        "time,node,temp\n2017-01-01 00:00:00,\"n1,4.2\n",
        temp_schema(),
        &dict(),
        "t",
        &CsvOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(e, SjError::ParseError(_)));
}

#[test]
fn missing_semantics_fail_catalog_registration() {
    let ctx = ExecCtx::local();
    let mut catalog = Catalog::default_hpc();
    // A schema referencing a dimension the dictionary does not know.
    let schema = Schema::new(vec![FieldDef::new(
        "q",
        FieldSemantics::value("quantum-flux", "jigawatts"),
    )])
    .unwrap();
    let ds = SjDataset::from_rows(&ctx, vec![], schema, "weird", 1);
    let e = catalog.register_dataset("weird", ds).unwrap_err();
    assert!(matches!(e, SjError::SemanticsInvalid(_)));
}

#[test]
fn dictionary_conflicts_are_rejected_not_merged() {
    let mut d = dict();
    // Homonym dimension.
    assert!(matches!(
        d.register_dimension(DimensionDef::identifier("time")),
        Err(SjError::HomonymConflict(_))
    ));
    // Alias shadowing an existing keyword.
    assert!(d.register_alias("celsius", "fahrenheit").is_err());
    // Alias to nowhere.
    assert!(matches!(
        d.register_alias("warmth", "heatish"),
        Err(SjError::UnknownKeyword(_))
    ));
}

#[test]
fn unsolvable_queries_explain_why() {
    let ctx = ExecCtx::local();
    let mut catalog = Catalog::default_hpc();
    let ds = SjDataset::from_rows(&ctx, vec![], temp_schema(), "temps", 1);
    catalog.register_dataset("temps", ds).unwrap();
    let engine = QueryEngine::new(&catalog);

    // Unknown domain dimension: no dataset carries `rack`.
    let e = engine
        .solve(&Query::new(["rack"], vec![QueryValue::dim("temperature")]))
        .unwrap_err();
    match e {
        SjError::NoSolution(msg) => assert!(msg.contains("rack"), "{msg}"),
        other => panic!("expected NoSolution, got {other}"),
    }

    // Value neither recorded nor derivable (power).
    let e = engine
        .solve(&Query::new(["node"], vec![QueryValue::dim("power")]))
        .unwrap_err();
    match e {
        SjError::NoSolution(msg) => assert!(msg.contains("power"), "{msg}"),
        other => panic!("expected NoSolution, got {other}"),
    }

    // Dimension not in the dictionary at all: fails at canonicalization.
    let e = engine
        .solve(&Query::new(["warp-core"], vec![]))
        .unwrap_err();
    assert!(matches!(e, SjError::UnknownKeyword(_)));
}

#[test]
fn empty_datasets_flow_through_whole_pipelines() {
    let ctx = ExecCtx::local();
    let d = dict();
    let empty = SjDataset::from_rows(&ctx, vec![], temp_schema(), "empty", 2);
    let other_schema = Schema::new(vec![
        FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let layout = SjDataset::from_rows(
        &ctx,
        vec![Row::new(vec![Value::str("n1"), Value::str("r1")])],
        other_schema,
        "layout",
        1,
    );
    let joined = NaturalJoin.apply(&empty, &layout, &d).unwrap();
    assert_eq!(joined.count().unwrap(), 0);

    let ij = InterpolationJoin::new(60.0).apply(&empty, &empty, &d);
    // Empty vs itself: shares node and time, still valid, still empty.
    assert_eq!(ij.unwrap().count().unwrap(), 0);
}

#[test]
fn all_resets_yield_empty_rates_not_garbage() {
    // A counter that resets at every sample has no valid rate window.
    let ctx = ExecCtx::local();
    let schema = Schema::new(vec![
        FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        ),
    ])
    .unwrap();
    let rows: Vec<Row> = (0..10)
        .map(|i| {
            Row::new(vec![
                Value::str("c0"),
                Value::Time(Timestamp::from_secs(i)),
                // Strictly decreasing counter: every window is a reset.
                Value::Int(1000 - i * 100),
            ])
        })
        .collect();
    let ds = SjDataset::from_rows(&ctx, rows, schema, "papi", 2);
    let out = DeriveRate::new(0.001).apply(&ds, &dict()).unwrap();
    assert_eq!(out.count().unwrap(), 0);
}

#[test]
fn duplicate_timestamps_do_not_break_rates() {
    let ctx = ExecCtx::local();
    let schema = Schema::new(vec![
        FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        ),
    ])
    .unwrap();
    let mk = |secs: i64, count: i64| {
        Row::new(vec![
            Value::str("c0"),
            Value::Time(Timestamp::from_secs(secs)),
            Value::Int(count),
        ])
    };
    // Two samples at the same instant (dt = 0 must be skipped).
    let rows = vec![mk(0, 0), mk(1, 100), mk(1, 120), mk(2, 300)];
    let ds = SjDataset::from_rows(&ctx, rows, schema, "papi", 1);
    let out = DeriveRate::new(1.0).apply(&ds, &dict()).unwrap();
    let rates: Vec<f64> = out
        .collect_column("instr_rate")
        .unwrap()
        .iter()
        .filter_map(|v| v.as_f64())
        .collect();
    assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0));
}

#[test]
fn kv_store_unknown_table_and_bad_values() {
    let ctx = ExecCtx::local();
    let store = KvStore::new();
    assert!(matches!(
        store.wrap(&ctx, "nope", temp_schema(), &dict(), 1),
        Err(SjError::UnknownKeyword(_))
    ));
    let mut doc = std::collections::BTreeMap::new();
    doc.insert("time".to_string(), "garbage".to_string());
    store.insert("t", doc);
    assert!(matches!(
        store.wrap(&ctx, "t", temp_schema(), &dict(), 1),
        Err(SjError::ParseError(_))
    ));
}

#[test]
fn plan_execution_against_the_wrong_catalog_fails_cleanly() {
    let ctx = ExecCtx::local();
    let plan = Plan::load("not_registered");
    let catalog = Catalog::default_hpc();
    assert!(plan.execute(&catalog, None).is_err());

    // A plan JSON with an op that is not a transformation where one is
    // required.
    let bad = r#"{
        "node": "transform",
        "spec": { "op": "natural_join" },
        "input": { "node": "load", "dataset": "x" }
    }"#;
    let plan = Plan::from_json(bad).unwrap();
    let mut catalog = Catalog::default_hpc();
    catalog
        .register_dataset(
            "x",
            SjDataset::from_rows(&ctx, vec![], temp_schema(), "x", 1),
        )
        .unwrap();
    let e = plan.execute(&catalog, None).unwrap_err();
    assert!(e.to_string().contains("not a transformation"));
}
