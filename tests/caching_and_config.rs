//! Integration tests: plan execution through both cache implementations,
//! and derivation-engine configuration behaviour.

use scrubjay::prelude::*;
use sjcore::cache::TieredCache;
use sjcore::engine::EngineConfig;
use sjcore::SjError;
use sjdata::{dat1, Dat1Config};

fn small_cfg() -> Dat1Config {
    Dat1Config {
        racks: 4,
        nodes_per_rack: 4,
        amg_rack_index: 2,
        amg_nodes: 3,
        background_jobs: 3,
        duration_secs: 1800,
        ..Dat1Config::default()
    }
}

fn rack_heat_query() -> Query {
    Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    )
}

#[test]
fn tiered_cache_serves_repeat_executions() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog)
        .solve(&rack_heat_query())
        .unwrap();

    // A hot tier too small for the final result forces demotion through
    // the compressed cold tier.
    let cache = TieredCache::new(16 << 10, 64 << 20);
    let first = plan.execute_cached(&catalog, Some(&cache)).unwrap();
    let n1 = first.count().unwrap();
    let second = plan.execute_cached(&catalog, Some(&cache)).unwrap();
    let n2 = second.count().unwrap();
    assert_eq!(n1, n2);
    let stats = cache.stats();
    assert!(
        stats.hot_hits + stats.cold_hits >= 1,
        "repeat execution should hit some tier: {stats:?}"
    );

    // Rows are identical either way.
    let mut a = first.collect().unwrap();
    let mut b = second.collect().unwrap();
    let key = |r: &Row| format!("{:?}", r.values());
    a.sort_by_key(&key);
    b.sort_by_key(&key);
    assert_eq!(a, b);
}

#[test]
fn flat_and_tiered_caches_agree_with_uncached_execution() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog)
        .solve(&rack_heat_query())
        .unwrap();

    let sort = |ds: &SjDataset| {
        let mut rows = ds.collect().unwrap();
        rows.sort_by_key(|r| format!("{:?}", r.values()));
        rows
    };
    let plain = sort(&plan.execute(&catalog, None).unwrap());
    let flat = ResultCache::new(64 << 20);
    let with_flat = sort(&plan.execute(&catalog, Some(&flat)).unwrap());
    let tiered = TieredCache::new(64 << 20, 64 << 20);
    let with_tiered = sort(&plan.execute_cached(&catalog, Some(&tiered)).unwrap());
    assert_eq!(plain, with_flat);
    assert_eq!(plain, with_tiered);
}

#[test]
fn interp_window_config_propagates_into_plans() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    let engine = QueryEngine::with_config(
        &catalog,
        EngineConfig {
            interp_window_secs: 300.0,
            explode_step_secs: 30.0,
            ..EngineConfig::default()
        },
    );
    let plan = engine.solve(&rack_heat_query()).unwrap();
    let json = plan.to_json();
    assert!(json.contains("\"window_secs\": 300.0"), "{json}");
    assert!(json.contains("\"step_secs\": 30.0"), "{json}");
}

#[test]
fn disallowing_unanchored_joins_blocks_time_only_relations() {
    // A catalog with two datasets whose only shared domain is time.
    let ctx = ExecCtx::local();
    let mut catalog = Catalog::default_hpc();
    let a = Schema::new(vec![
        FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    let b = Schema::new(vec![
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
        FieldDef::new("app", FieldSemantics::value("application", "app-name")),
    ])
    .unwrap();
    let mk = |schema: Schema, name: &str| {
        SjDataset::from_rows(
            &ctx,
            vec![Row::new(vec![
                Value::Time(Timestamp::from_secs(0)),
                Value::str("x"),
                Value::str("y"),
            ])],
            schema,
            name,
            1,
        )
    };
    catalog.register_dataset("temps", mk(a, "temps")).unwrap();
    catalog.register_dataset("jobs", mk(b, "jobs")).unwrap();

    let query = Query::new(
        ["job", "rack"],
        vec![
            QueryValue::dim("application"),
            QueryValue::dim("temperature"),
        ],
    );

    // Default config: the time-only interpolation join is a valid (if
    // weak) fallback relation.
    let permissive = QueryEngine::new(&catalog);
    let plan = permissive.solve(&query).unwrap();
    assert_eq!(plan.num_combines(), 1);

    // Strict config: no anchored path exists, so there is no solution.
    let strict = QueryEngine::with_config(
        &catalog,
        EngineConfig {
            allow_unanchored: false,
            ..EngineConfig::default()
        },
    );
    assert!(matches!(
        strict.solve(&query).unwrap_err(),
        SjError::NoSolution(_)
    ));
}

#[test]
fn synonym_columns_join_through_the_dictionary() {
    // One dataset calls the column NODEID (an alias), the other node-id;
    // the engine must match them through the canonical dimension.
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    // node_layout uses NODEID units alias internally already; make sure
    // the alias resolves in a user query too.
    let q = Query::new(["node", "rack"], vec![]);
    let plan = QueryEngine::new(&catalog).solve(&q).unwrap();
    assert!(plan.loads().contains(&"node_layout"));
    let ds = plan.execute(&catalog, None).unwrap();
    assert!(ds.count().unwrap() > 0);
}
