//! Routed streaming over the binary wire: a `subscribe: true` query
//! through `sjrouted` must deliver the **same frame sequence** a
//! single-node `sjserved` subscriber would see — byte-identical modulo
//! the router-minted ids — across every disarray schedule and both
//! planners. Satellites ride along: worker-kill chaos (failover or a
//! structured degraded teardown, never a hang), bulk backfill parity,
//! the idle-source watermark timeout, and JSON-lines clients against a
//! binary-default daemon.

use sjcore::engine::{EngineConfig, PlannerKind, Query, QueryValue};
use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::ExecCtx;
use sjroute::{Router, RouterConfig};
use sjserve::protocol::{codes, PROTO_VERSION};
use sjserve::{
    serve, Client, ClientError, QueryService, QuerySpec, RouterStatsReport, ServerHandle,
    ServiceConfig, ValueSpec,
};
use sjstream::{AppendBatch, StreamConfig, StreamEngine};
use std::net::SocketAddr;
use std::time::Duration;

const SEED: u64 = 42;
const STEPS: usize = 20;

/// The standing derive-rate + interpolation-join query (two datasets).
fn joined_spec() -> QuerySpec {
    QuerySpec {
        domains: vec!["compute-node".into(), "time".into()],
        values: vec![
            ValueSpec::with_units("instructions", "instructions-per-ms"),
            ValueSpec::dim("temperature"),
        ],
        window_secs: None,
        step_secs: None,
        limit: None,
    }
}

fn engine_config(planner: PlannerKind) -> EngineConfig {
    EngineConfig {
        planner,
        ..EngineConfig::default()
    }
}

fn spawn_worker(planner: PlannerKind) -> ServerHandle {
    let ctx = ExecCtx::local();
    let catalog = stream_catalog(&ctx).unwrap();
    let config = ServiceConfig {
        engine: engine_config(planner),
        ..ServiceConfig::default()
    };
    serve(QueryService::new(ctx, catalog, config), "127.0.0.1:0").unwrap()
}

fn spawn_router(worker_addrs: Vec<String>, planner: PlannerKind) -> ServerHandle<Router> {
    let config = RouterConfig {
        engine: engine_config(planner),
        // Slow heartbeat: worker loss in these tests must be detected
        // on the append-forward path (which severs the feed), not raced
        // by a background probe.
        heartbeat: Duration::from_secs(60),
        probe_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    };
    let router = Router::new(worker_addrs, config).unwrap();
    serve(router, "127.0.0.1:0").unwrap()
}

fn subscriber(addr: SocketAddr) -> Client {
    let mut client = Client::connect_as(addr, "tenant-a").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let ack = client.subscribe(joined_spec()).unwrap();
    assert!(ack.subscription.is_some(), "subscribe returns an ack");
    client
}

/// A window frame, normalized: everything except the ids the router
/// rewrites (request id, query id). Rows are the rendered strings, so
/// equality here is the byte-identity probe.
fn norm_frame(frame: &sjserve::Response) -> String {
    let w = frame
        .window
        .as_ref()
        .unwrap_or_else(|| panic!("expected a window frame, got {frame:?}"));
    format!(
        "{}|{}|{}..{}|wm={}|re={}|deg={}|err={:?}|{:?}|{:?}",
        frame.status,
        w.window_id,
        w.start_us,
        w.end_us,
        w.watermark_us,
        w.re_emission,
        w.degraded,
        w.error,
        w.columns,
        w.rows
    )
}

/// Like [`norm_frame`] but additionally dropping emission-time fields
/// (`watermark_us`, `re_emission`): bulk backfill sweeps once at the
/// end, so those legitimately differ from row-at-a-time delivery.
fn norm_frame_final(frame: &sjserve::Response) -> (i64, String) {
    let w = frame.window.as_ref().expect("window frame");
    (
        w.window_id,
        format!(
            "{}|{}..{}|deg={}|err={:?}|{:?}|{:?}",
            frame.status, w.start_us, w.end_us, w.degraded, w.error, w.columns, w.rows
        ),
    )
}

/// Poll the router's stats until `pred` holds (metric increments on the
/// push path can trail the client's last read by an instant).
fn wait_for_router_stats(
    client: &mut Client,
    pred: impl Fn(&RouterStatsReport) -> bool,
) -> RouterStatsReport {
    let mut last = None;
    for _ in 0..100 {
        let stats = client
            .stats()
            .unwrap()
            .router_stats
            .expect("router answers router_stats");
        if pred(&stats) {
            return stats;
        }
        last = Some(stats);
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("router stats never reached the expected state: {last:?}");
}

/// Append a schedule through `appender` and drain exactly the emitted
/// frame count from `sub`, normalized.
fn run_and_collect(
    appender: &mut Client,
    sub: &mut Client,
    schedule: &[AppendBatch],
) -> Vec<String> {
    let mut total = 0usize;
    for batch in schedule {
        let ack = appender
            .append(batch.clone())
            .unwrap()
            .append
            .expect("append ack");
        total += ack.windows_emitted;
    }
    (0..total)
        .map(|_| norm_frame(&sub.next_frame().unwrap()))
        .collect()
}

/// Reference: the frame sequence a single-node `sjserved` subscriber
/// sees over this schedule.
fn single_node_frames(kind: Disarray, planner: PlannerKind) -> Vec<String> {
    let worker = spawn_worker(planner);
    let mut sub = subscriber(worker.addr);
    let mut appender = Client::connect_as(worker.addr, "ingest").unwrap();
    let frames = run_and_collect(
        &mut appender,
        &mut sub,
        &disarray_schedule(kind, SEED, STEPS),
    );
    drop(sub);
    worker.stop();
    frames
}

/// The same schedule through a router fronting a 2-replica fleet.
fn routed_frames(kind: Disarray, planner: PlannerKind, check_stats: bool) -> Vec<String> {
    let w0 = spawn_worker(planner);
    let w1 = spawn_worker(planner);
    let router = spawn_router(vec![w0.addr.to_string(), w1.addr.to_string()], planner);
    let mut sub = subscriber(router.addr);
    let mut appender = Client::connect_as(router.addr, "ingest").unwrap();
    let frames = run_and_collect(
        &mut appender,
        &mut sub,
        &disarray_schedule(kind, SEED, STEPS),
    );
    if check_stats {
        let n = frames.len();
        let stats = wait_for_router_stats(&mut appender, |s| s.stream_frames_pushed as usize == n);
        assert_eq!(stats.streams_active, 1);
        // Both feeds delivered every frame before the merge forwarded
        // one copy.
        assert_eq!(stats.stream_worker_frames as usize, 2 * n);
        assert_eq!(stats.stream_worker_losses, 0);
        assert!(stats.stream_appends_forwarded > 0);
        assert!(stats.requests_binary > 0, "binary is the default transport");
    }
    drop(sub);
    router.stop();
    w0.stop();
    w1.stop();
    frames
}

fn assert_fanout_identity(kind: Disarray) {
    for planner in [PlannerKind::Legacy, PlannerKind::Constraint] {
        let reference = single_node_frames(kind, planner);
        assert!(
            reference.len() >= 3,
            "[{} {planner:?}] schedule too quiet: {} frames",
            kind.name(),
            reference.len()
        );
        let routed = routed_frames(kind, planner, kind == Disarray::InOrder);
        assert_eq!(
            routed,
            reference,
            "[{} {planner:?}] routed subscriber diverged from single-node",
            kind.name()
        );
    }
}

#[test]
fn fanout_matches_single_node_in_order() {
    assert_fanout_identity(Disarray::InOrder);
}

#[test]
fn fanout_matches_single_node_clock_skew() {
    assert_fanout_identity(Disarray::ClockSkew);
}

#[test]
fn fanout_matches_single_node_late_duplicates() {
    assert_fanout_identity(Disarray::LateDuplicates);
}

#[test]
fn fanout_matches_single_node_counter_wrap() {
    assert_fanout_identity(Disarray::CounterWrap);
}

#[test]
fn fanout_matches_single_node_rack_skew() {
    assert_fanout_identity(Disarray::RackSkew);
}

/// Kill one replica mid-subscription: the merge re-forms over the
/// survivor and the client's frame sequence is *still* byte-identical
/// to single-node. Kill the survivor too: the next append is refused
/// with a structured error and the subscriber gets one
/// `worker_unavailable` teardown frame — degraded, never a hang.
#[test]
fn worker_kill_fails_over_then_degrades_structurally() {
    let planner = PlannerKind::Constraint;
    let kind = Disarray::InOrder;
    let reference = single_node_frames(kind, planner);

    let w0 = spawn_worker(planner);
    let w1 = spawn_worker(planner);
    let router = spawn_router(vec![w0.addr.to_string(), w1.addr.to_string()], planner);
    let mut sub = subscriber(router.addr);
    let mut appender = Client::connect_as(router.addr, "ingest").unwrap();

    let schedule = disarray_schedule(kind, SEED, STEPS);
    let half = schedule.len() / 2;
    let mut total = 0usize;
    for batch in &schedule[..half] {
        total += appender
            .append(batch.clone())
            .unwrap()
            .append
            .unwrap()
            .windows_emitted;
    }
    w1.stop();
    for batch in &schedule[half..] {
        // Forwarding to the dead replica fails; the live one still acks.
        total += appender
            .append(batch.clone())
            .unwrap()
            .append
            .unwrap()
            .windows_emitted;
    }
    let frames: Vec<String> = (0..total)
        .map(|_| norm_frame(&sub.next_frame().unwrap()))
        .collect();
    assert_eq!(frames, reference, "failover changed the frame stream");

    let stats = wait_for_router_stats(&mut appender, |s| s.stream_worker_losses >= 1);
    assert_eq!(stats.streams_active, 1, "{stats:?}");

    // Now lose the whole fleet.
    w0.stop();
    let err = appender.append(schedule[0].clone()).unwrap_err();
    let body = match err {
        ClientError::Server(body) => body,
        other => panic!("expected a structured refusal, got {other:?}"),
    };
    assert_eq!(body.code, codes::WORKER_UNAVAILABLE, "{body:?}");

    let teardown = sub.next_frame().unwrap();
    assert_eq!(teardown.status, "error");
    assert!(teardown.window.is_none());
    assert_eq!(
        teardown.error.as_ref().map(|e| e.code.as_str()),
        Some(codes::WORKER_UNAVAILABLE),
        "{teardown:?}"
    );
    wait_for_router_stats(&mut appender, |s| s.streams_active == 0);

    router.stop();
}

/// Bulk backfill: `bulk: true` appends ingest without sweeping, and the
/// closing flush runs one sweep. The final per-window frames must match
/// row-at-a-time ingestion byte-for-byte (watermark and re-emission
/// flags normalized — bulk legitimately emits each window exactly once,
/// at the final watermark).
#[test]
fn bulk_backfill_matches_row_at_a_time() {
    let kind = Disarray::LateDuplicates; // exercises re-emissions rowwise
    let schedule = disarray_schedule(kind, SEED, STEPS);

    // Row-at-a-time reference: keep the LAST frame per window.
    let worker = spawn_worker(PlannerKind::Constraint);
    let mut sub = subscriber(worker.addr);
    let mut appender = Client::connect_as(worker.addr, "ingest").unwrap();
    let mut final_wm = 0i64;
    let mut total = 0usize;
    for batch in &schedule {
        let ack = appender.append(batch.clone()).unwrap().append.unwrap();
        total += ack.windows_emitted;
        final_wm = ack.watermark_us;
    }
    let mut reference = std::collections::BTreeMap::new();
    for _ in 0..total {
        let (wid, norm) = norm_frame_final(&sub.next_frame().unwrap());
        reference.insert(wid, norm); // later frames supersede earlier
    }
    assert!(!reference.is_empty());
    drop(sub);
    worker.stop();

    // Bulk: same schedule, no sweeps until the flush.
    let worker = spawn_worker(PlannerKind::Constraint);
    let mut sub = subscriber(worker.addr);
    let mut appender = Client::connect_as(worker.addr, "ingest").unwrap();
    for batch in &schedule {
        let ack = appender.append_bulk(batch.clone()).unwrap().append.unwrap();
        assert_eq!(ack.windows_emitted, 0, "bulk appends must not sweep");
    }
    let last = schedule.last().unwrap();
    let flush = appender
        .flush(&last.dataset, &last.source, last.source_clock_us)
        .unwrap()
        .append
        .unwrap();
    assert_eq!(flush.watermark_us, final_wm, "bulk watermark diverged");
    let mut bulk = std::collections::BTreeMap::new();
    for _ in 0..flush.windows_emitted {
        let frame = sub.next_frame().unwrap();
        let w = frame.window.as_ref().unwrap();
        assert!(!w.re_emission, "one sweep emits each window once");
        let (wid, norm) = norm_frame_final(&frame);
        bulk.insert(wid, norm);
    }
    assert_eq!(bulk, reference, "bulk backfill emission log diverged");
    drop(sub);
    worker.stop();
}

/// One source that reports a single early row and then goes silent must
/// not freeze window finality forever — `idle_source_timeout_secs`
/// parks its clock out of the watermark min once it lags the leader.
#[test]
fn idle_source_timeout_unpins_the_watermark() {
    fn run(idle_timeout_secs: f64) -> (i64, usize) {
        let ctx = ExecCtx::local();
        let catalog = stream_catalog(&ctx).unwrap();
        let config = StreamConfig {
            idle_source_timeout_secs: idle_timeout_secs,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(&ctx, catalog, config, EngineConfig::default());
        engine
            .subscribe(
                "q-idle",
                "tenant-a",
                &Query::new(
                    ["compute-node", "time"],
                    vec![
                        QueryValue::with_units("instructions", "instructions-per-ms"),
                        QueryValue::dim("temperature"),
                    ],
                ),
            )
            .unwrap();
        let schedule = disarray_schedule(Disarray::InOrder, SEED, STEPS);
        // The straggler: one row cloned from the first counter batch,
        // under its own source name, then silence.
        let first = schedule
            .iter()
            .find(|b| b.dataset == "papi_counters" && !b.rows.is_empty())
            .unwrap();
        let straggler = AppendBatch {
            dataset: first.dataset.clone(),
            source: "papi@straggler".into(),
            source_clock_us: first.source_clock_us,
            rows: vec![first.rows[0].clone()],
        };
        engine.append(&straggler).unwrap();
        let mut emissions = 0usize;
        for batch in &schedule {
            emissions += engine.append(batch).unwrap().emissions.len();
        }
        (engine.watermark_us(), emissions)
    }

    let (wm_pinned, emitted_pinned) = run(0.0);
    let (wm_free, emitted_free) = run(30.0);
    assert_eq!(
        emitted_pinned, 0,
        "a silent one-row source should pin finality when the timeout is off"
    );
    assert!(
        wm_free > wm_pinned,
        "timeout must let the watermark pass the idle source ({wm_free} vs {wm_pinned})"
    );
    assert!(emitted_free > 0, "watermark advanced but nothing ripened");
}

/// The daemon defaults to the binary transport, but a byte-one sniff
/// keeps JSON-lines clients working on the same port: both kinds of
/// subscriber see the same frames, and both report their negotiated
/// wire info.
#[test]
fn json_lines_client_against_binary_default_daemon() {
    let worker = spawn_worker(PlannerKind::Constraint);

    let mut json_sub = Client::connect_json_as(worker.addr, "tenant-a").unwrap();
    json_sub
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(json_sub.wire_info().wire_version, PROTO_VERSION);
    assert_eq!(json_sub.wire_info().codec, sjwire::CODEC_JSON_LINES);
    json_sub.subscribe(joined_spec()).unwrap();

    let mut bin_sub = subscriber(worker.addr);
    assert_eq!(bin_sub.wire_info().wire_version, sjwire::WIRE_VERSION);
    assert_eq!(bin_sub.wire_info().codec, sjwire::CODEC_COLUMNAR);

    let mut appender = Client::connect_as(worker.addr, "ingest").unwrap();
    let mut total = 0usize;
    for batch in disarray_schedule(Disarray::ClockSkew, SEED, STEPS) {
        total += appender
            .append(batch)
            .unwrap()
            .append
            .unwrap()
            .windows_emitted;
    }
    // `windows_emitted` counts frames across *both* registrations; the
    // identical standing queries emit in lockstep, so each subscriber
    // gets exactly half — and they must agree byte-for-byte.
    assert!(total > 0);
    assert_eq!(total % 2, 0, "two identical subscriptions emit in pairs");
    let per_sub = total / 2;
    let json_frames: Vec<String> = (0..per_sub)
        .map(|_| norm_frame(&json_sub.next_frame().unwrap()))
        .collect();
    let bin_frames: Vec<String> = (0..per_sub)
        .map(|_| norm_frame(&bin_sub.next_frame().unwrap()))
        .collect();
    assert_eq!(json_frames, bin_frames);

    // Both transports stamp their negotiated wire info on responses,
    // and the service counts requests per protocol.
    let resp = Client::connect_json(worker.addr).unwrap().stats().unwrap();
    let wire = resp.wire.clone().expect("json responses carry wire info");
    assert_eq!(wire.wire_version, PROTO_VERSION);
    assert_eq!(wire.codec, sjwire::CODEC_JSON_LINES);
    let stats = resp.stats.unwrap();
    assert!(stats.requests_json > 0, "{stats:?}");
    assert!(stats.requests_binary > 0, "{stats:?}");

    let resp = Client::connect(worker.addr).unwrap().stats().unwrap();
    let wire = resp.wire.expect("binary responses carry wire info");
    assert_eq!(wire.wire_version, sjwire::WIRE_VERSION);
    assert_eq!(wire.codec, sjwire::CODEC_COLUMNAR);

    worker.stop();
}
