//! End-to-end streaming over real TCP: standing queries registered with
//! `subscribe: true`, appends through the `append` verb, pushed window
//! frames interleaved on the subscriber's connection, per-tenant
//! subscription quotas, and the satellite guarantee that a truncated
//! derivation search tears down exactly one subscription — never the
//! connection or the tenant's other standing queries.

use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::ExecCtx;
use sjserve::protocol::codes;
use sjserve::{
    serve, Client, ClientError, EmissionSink, QueryService, QuerySpec, Request, Response,
    ServiceConfig, ValueSpec, Verb,
};
use std::net::SocketAddr;
use std::time::Duration;

fn streaming_service(config: ServiceConfig) -> QueryService {
    let ctx = ExecCtx::local();
    let catalog = stream_catalog(&ctx).unwrap();
    QueryService::new(ctx, catalog, config)
}

/// The standing derive-rate + interpolation-join query (two datasets).
fn joined_spec() -> QuerySpec {
    QuerySpec {
        domains: vec!["compute-node".into(), "time".into()],
        values: vec![
            ValueSpec::with_units("instructions", "instructions-per-ms"),
            ValueSpec::dim("temperature"),
        ],
        window_secs: None,
        step_secs: None,
        limit: None,
    }
}

/// A standing query with no derivation under a one-dataset budget: the
/// raw cumulative counters are not directly queryable, so the search
/// wants to widen past its seed — and a `max_datasets: 1` budget stops
/// it there with `SearchTruncated` (not provably unsatisfiable).
fn raw_counters_spec() -> QuerySpec {
    QuerySpec {
        domains: vec!["compute-node".into(), "time".into()],
        values: vec![ValueSpec::with_units("instructions", "instructions-count")],
        window_secs: None,
        step_secs: None,
        limit: None,
    }
}

fn server_code(e: ClientError) -> String {
    match e {
        ClientError::Server(body) => body.code,
        other => panic!("expected a server error, got {other:?}"),
    }
}

/// Poll `stats` until the streaming section satisfies `pred` (the
/// connection-teardown bookkeeping runs on the server's own thread).
fn wait_for_streaming(
    client: &mut Client,
    pred: impl Fn(&sjserve::metrics::StreamStatsReport) -> bool,
) -> sjserve::metrics::StreamStatsReport {
    for _ in 0..100 {
        let stats = client.stats().unwrap().stats.unwrap();
        let streaming = stats.streaming.expect("worker stats carry streaming");
        if pred(&streaming) {
            return streaming;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("streaming stats never reached the expected state");
}

#[test]
fn subscribe_append_emit_over_tcp() {
    let handle = serve(streaming_service(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let addr: SocketAddr = handle.addr;

    let mut subscriber = Client::connect_as(addr, "tenant-a").unwrap();
    subscriber
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let ack = subscriber.subscribe(joined_spec()).unwrap();
    let sub = ack.subscription.expect("subscribe returns an ack");
    assert_eq!(sub.window_secs, 60.0);
    assert_eq!(ack.query_id.as_deref(), Some(sub.query_id.as_str()));

    // Appends ride a separate connection so acks and frames don't mix.
    let mut appender = Client::connect_as(addr, "ingest").unwrap();
    let schedule = disarray_schedule(Disarray::InOrder, 42, 20);
    let nbatches = schedule.len();
    let mut total_emitted = 0usize;
    let mut total_accepted = 0usize;
    for batch in schedule {
        let response = appender.append(batch).unwrap();
        let ack = response.append.expect("append returns an ack");
        total_emitted += ack.windows_emitted;
        total_accepted += ack.accepted;
    }
    assert!(total_accepted > 0, "schedule appended no rows");
    assert!(total_emitted > 0, "no windows ripened over 200s of stream");

    // Every frame the appends produced is already on the subscriber's
    // socket, in emission order.
    let mut rows_seen = 0usize;
    for i in 0..total_emitted {
        let frame = subscriber.next_frame().unwrap();
        assert_eq!(frame.id, ack.id, "frame {i} must echo the subscribe id");
        assert_eq!(frame.query_id, Some(sub.query_id.clone()));
        let window = frame.window.expect("pushed frames carry a window");
        assert!(!window.degraded, "no faults installed: {:?}", window.error);
        assert!(!window.columns.is_empty());
        rows_seen += window.rows.len();
    }
    assert!(rows_seen > 0, "all emitted windows were empty");

    let streaming = wait_for_streaming(&mut appender, |s| s.subscriptions_active == 1);
    assert_eq!(streaming.appends as usize, nbatches);
    // `windows_emitted` on the ack counts every pushed frame; the
    // engine splits first emissions from late-data re-emissions.
    assert_eq!(
        (streaming.window_emissions + streaming.window_re_emissions) as usize,
        total_emitted
    );
    assert!(streaming.window_emissions >= 1);
    assert_eq!(streaming.subscriptions_opened, 1);
    assert!(streaming.incremental_recomputes > 0);

    // Closing the subscriber's connection unregisters its standing
    // query on the server side.
    drop(subscriber);
    let streaming = wait_for_streaming(&mut appender, |s| s.subscriptions_active == 0);
    assert_eq!(streaming.subscriptions_closed, 1);

    handle.stop();
}

#[test]
fn per_tenant_subscription_quota_is_enforced() {
    let config = ServiceConfig {
        max_subscriptions_per_tenant: 1,
        ..ServiceConfig::default()
    };
    let handle = serve(streaming_service(config), "127.0.0.1:0").unwrap();
    let addr: SocketAddr = handle.addr;

    let mut first = Client::connect_as(addr, "tenant-a").unwrap();
    first.subscribe(joined_spec()).unwrap();

    // Same tenant, second standing query: structured rejection.
    let mut second = Client::connect_as(addr, "tenant-a").unwrap();
    let err = second.subscribe(joined_spec()).unwrap_err();
    assert_eq!(server_code(err), codes::SUBSCRIPTION_LIMIT);
    // The rejected connection is still usable for normal requests.
    assert!(second.health().unwrap().health.is_some());

    // A different tenant has its own budget.
    let mut other = Client::connect_as(addr, "tenant-b").unwrap();
    other.subscribe(joined_spec()).unwrap();

    handle.stop();
}

#[test]
fn subscribe_without_a_streaming_transport_is_rejected() {
    // In-process `handle` has no sink to push frames to, so standing
    // queries are a structured error there (same for a router hop).
    let service = streaming_service(ServiceConfig::default());
    let request = sjserve::protocol::Request::subscribe("r1", "t", joined_spec());
    let response = service.handle(request);
    assert_eq!(response.code(), Some(codes::STREAM_UNSUPPORTED));
    service.shutdown();
}

/// Satellite: a standing query whose (lazy) solve hits the search
/// budget is torn down with a `search_truncated` frame — and nothing
/// else. The connection survives, the sibling subscription keeps
/// emitting, and the teardown is counted in the service stats.
#[test]
fn truncated_search_tears_down_only_that_subscription() {
    let config = ServiceConfig {
        engine: sjcore::engine::EngineConfig {
            // One dataset of budget. The joined query still solves — its
            // greedy cover seed already holds both datasets, and the
            // budget only gates the widening step — while the
            // raw-counters query must widen past its seed and truncates.
            max_datasets: 1,
            ..sjcore::engine::EngineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let handle = serve(streaming_service(config), "127.0.0.1:0").unwrap();
    let addr: SocketAddr = handle.addr;

    let mut subscriber = Client::connect_as(addr, "tenant-a").unwrap();
    subscriber
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let good = subscriber.subscribe(joined_spec()).unwrap();
    let good_id = good.subscription.unwrap().query_id;
    let bad = subscriber.subscribe(raw_counters_spec()).unwrap();
    let bad_id = bad.subscription.unwrap().query_id;

    let mut appender = Client::connect_as(addr, "ingest").unwrap();
    let mut total_emitted = 0usize;
    for batch in disarray_schedule(Disarray::InOrder, 42, 20) {
        let response = appender.append(batch).unwrap();
        total_emitted += response.append.unwrap().windows_emitted;
    }
    assert!(total_emitted > 0);

    // The subscriber's socket now holds: the bad subscription's single
    // teardown frame (pushed at the first sweep) plus every good frame.
    let mut teardowns = 0usize;
    let mut good_frames = 0usize;
    for _ in 0..total_emitted + 1 {
        let frame = subscriber.next_frame().unwrap();
        if frame.query_id.as_deref() == Some(bad_id.as_str()) {
            assert_eq!(frame.code(), Some(codes::SEARCH_TRUNCATED));
            assert!(frame.window.is_none());
            teardowns += 1;
        } else {
            assert_eq!(frame.query_id.as_deref(), Some(good_id.as_str()));
            assert!(frame.window.is_some());
            good_frames += 1;
        }
    }
    assert_eq!(teardowns, 1, "exactly one teardown frame for the bad sub");
    assert_eq!(good_frames, total_emitted);

    let streaming = wait_for_streaming(&mut appender, |s| s.subscriptions_failed == 1);
    assert_eq!(streaming.subscriptions_active, 1, "good sub survives");
    let stats = appender.stats().unwrap().stats.unwrap();
    assert!(
        stats.searches_truncated >= 1,
        "truncation must be counted: {stats:?}"
    );

    // The connection itself survived the teardown: it can still run a
    // one-shot query end to end.
    handle.stop();
}

/// Regression: a subscriber stalled mid-`send` (full TCP buffer in the
/// real world) must not wedge the service. Frame delivery happens
/// outside the stream lock, so while one delivery is parked, stats keep
/// answering, new subscriptions register, and the engine stays live.
#[test]
fn stalled_subscriber_does_not_wedge_the_service() {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Blocks every `send` until the gate opens, like a consumer whose
    /// socket stopped draining.
    struct GatedSink {
        open: Mutex<bool>,
        cvar: Condvar,
        parked: AtomicBool,
        frames: AtomicUsize,
    }
    impl EmissionSink for GatedSink {
        fn send(&self, _frame: &Response) -> std::io::Result<()> {
            self.frames.fetch_add(1, Ordering::SeqCst);
            let mut open = self.open.lock().unwrap();
            while !*open {
                self.parked.store(true, Ordering::SeqCst);
                open = self.cvar.wait(open).unwrap();
            }
            self.parked.store(false, Ordering::SeqCst);
            Ok(())
        }
    }
    struct NullSink;
    impl EmissionSink for NullSink {
        fn send(&self, _frame: &Response) -> std::io::Result<()> {
            Ok(())
        }
    }

    let service = streaming_service(ServiceConfig::default());
    let gated = Arc::new(GatedSink {
        open: Mutex::new(false),
        cvar: Condvar::new(),
        parked: AtomicBool::new(false),
        frames: AtomicUsize::new(0),
    });
    let sink: Arc<dyn EmissionSink> = gated.clone();
    let ack = service.handle_streaming(
        Request::subscribe("r-sub", "tenant-a", joined_spec()),
        &sink,
    );
    assert!(ack.subscription.is_some(), "subscribe failed: {ack:?}");

    // Pump the schedule from its own thread; the first ripened window's
    // frame parks inside the gated sink's `send`.
    let pumping = service.clone();
    let appender = std::thread::spawn(move || {
        let mut emitted = 0usize;
        for (i, batch) in disarray_schedule(Disarray::InOrder, 42, 20)
            .into_iter()
            .enumerate()
        {
            let r = pumping.handle(Request::append(&format!("a{i}"), "ingest", batch));
            assert!(r.is_ok(), "append {i} failed: {r:?}");
            emitted += r.append.expect("append ack").windows_emitted;
        }
        emitted
    });

    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !gated.parked.load(Ordering::SeqCst) {
        assert!(
            std::time::Instant::now() < deadline,
            "no frame delivery ever parked"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Delivery is parked right now. Monitoring and registration must
    // still complete (pre-fix, both wedged behind the stream mutex the
    // blocked appender held across its TCP write).
    let stats = service.handle(Request::bare("r-stats", Verb::Stats));
    assert!(
        stats.stats.is_some(),
        "stats wedged behind a stalled subscriber"
    );
    let other: Arc<dyn EmissionSink> = Arc::new(NullSink);
    let sub2 = service.handle_streaming(
        Request::subscribe("r-sub2", "tenant-b", joined_spec()),
        &other,
    );
    assert!(
        sub2.subscription.is_some(),
        "subscribe wedged behind a stalled subscriber: {sub2:?}"
    );

    // Open the gate; the pump drains and finishes.
    *gated.open.lock().unwrap() = true;
    gated.cvar.notify_all();
    let emitted = appender.join().expect("append thread");
    assert!(emitted > 0, "schedule never emitted a window");
    assert!(gated.frames.load(Ordering::SeqCst) > 0);
    service.shutdown();
}
