//! Integration test pinning the Figure 3 reproduction: the simulated
//! series produced by (real local execution → metric scaling → cost
//! model) must keep the paper's shapes and approximate magnitudes.

use sjcore::derivations::combine::{InterpolationJoin, NaturalJoin};
use sjcore::derivations::Combination;
use sjcore::SemanticDictionary;
use sjdata::synth::{interp_join_inputs, natural_join_inputs, JoinWorkload};
use sjdf::metrics::MetricsReport;
use sjdf::simtime::{estimate, scale_report, CostParams};
use sjdf::{ClusterSpec, ExecCtx};

const CALIB_ROWS: usize = 20_000;

fn measure(natural: bool) -> MetricsReport {
    // Calibrate against the rowwise reference kernels: Figure 3 models
    // the paper's row-based Spark implementation, and the cost model
    // charges per shuffle record — the columnar kernels ship whole
    // blocks through the shuffle, which is precisely the overhead the
    // paper's system pays and ours avoids.
    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap()).with_rowwise();
    let dict = SemanticDictionary::default_hpc();
    if natural {
        let w = JoinWorkload {
            rows: CALIB_ROWS,
            nodes: 500,
            time_range_secs: ((CALIB_ROWS as f64 * 0.36) as i64).max(600),
            partitions: 8,
            seed: 42,
        };
        let (l, r) = natural_join_inputs(&ctx, &w);
        NaturalJoin.apply(&l, &r, &dict).unwrap().count().unwrap();
    } else {
        let w = JoinWorkload {
            rows: CALIB_ROWS,
            nodes: 100,
            time_range_secs: ((CALIB_ROWS as f64 * 0.18) as i64).max(600),
            partitions: 8,
            seed: 42,
        };
        let (l, r) = interp_join_inputs(&ctx, &w);
        InterpolationJoin::new(60.0)
            .apply(&l, &r, &dict)
            .unwrap()
            .count()
            .unwrap();
    }
    ctx.metrics.report()
}

fn sim(report: &MetricsReport, rows: usize, nodes: usize) -> f64 {
    let scaled = scale_report(report, rows as f64 / CALIB_ROWS as f64);
    estimate(
        &scaled,
        &ClusterSpec::paper_cluster().with_nodes(nodes),
        &CostParams::paper(),
    )
    .total()
}

#[test]
fn fig3a_natural_join_row_sweep_matches_paper_shape() {
    let report = measure(true);
    // Paper: ~2 s at 2 M rows, ~8 s at 40 M rows, linear.
    let t2m = sim(&report, 2_000_000, 10);
    let t40m = sim(&report, 40_000_000, 10);
    assert!((1.0..4.0).contains(&t2m), "t(2M)={t2m}");
    assert!((6.0..11.0).contains(&t40m), "t(40M)={t40m}");
    // Linearity: the midpoint lies on the chord within 5%.
    let t21m = sim(&report, 21_000_000, 10);
    let chord = (t2m + t40m) / 2.0;
    assert!((t21m - chord).abs() / chord < 0.05, "mid {t21m} vs {chord}");
}

#[test]
fn fig3b_natural_join_strong_scaling_saturates() {
    let report = measure(true);
    // Paper: ~13 s at 1 node -> ~8.5 s at 10 nodes (factor ~1.5).
    let t1 = sim(&report, 40_000_000, 1);
    let t10 = sim(&report, 40_000_000, 10);
    assert!((10.0..17.0).contains(&t1), "t(1)={t1}");
    assert!((6.5..11.0).contains(&t10), "t(10)={t10}");
    let speedup = t1 / t10;
    assert!((1.2..2.2).contains(&speedup), "speedup {speedup}");
    // Monotone decrease.
    let mut last = f64::INFINITY;
    for n in 1..=10 {
        let t = sim(&report, 40_000_000, n);
        assert!(t < last, "n={n}");
        last = t;
    }
}

#[test]
fn fig3c_interp_join_costs_an_order_more_than_natural() {
    let nj = measure(true);
    let ij = measure(false);
    // Paper: ~10 s vs ~2 s at 2M; ~120 s vs ~8 s at 40 M (about 15x).
    let ratio = sim(&ij, 40_000_000, 10) / sim(&nj, 40_000_000, 10);
    assert!((5.0..25.0).contains(&ratio), "interp/natural ratio {ratio}");
    let t40m = sim(&ij, 40_000_000, 10);
    assert!((60.0..160.0).contains(&t40m), "t(40M)={t40m}");
}

#[test]
fn fig3d_interp_join_strong_scaling_keeps_scaling() {
    let report = measure(false);
    // Paper: ~240 s at 1 node -> ~45 s at 10 nodes (factor ~5.3).
    let t1 = sim(&report, 16_000_000, 1);
    let t10 = sim(&report, 16_000_000, 10);
    assert!((170.0..320.0).contains(&t1), "t(1)={t1}");
    assert!((25.0..70.0).contains(&t10), "t(10)={t10}");
    let speedup = t1 / t10;
    assert!((4.0..8.5).contains(&speedup), "speedup {speedup}");
}

#[test]
fn the_two_joins_strong_scale_differently() {
    // The structural claim behind 3b vs 3d: natural join is bound by the
    // non-scaling serialization path, interpolation join by compute.
    let nj = measure(true);
    let ij = measure(false);
    let nj_speedup = sim(&nj, 40_000_000, 1) / sim(&nj, 40_000_000, 10);
    let ij_speedup = sim(&ij, 16_000_000, 1) / sim(&ij, 16_000_000, 10);
    assert!(
        ij_speedup > 2.5 * nj_speedup,
        "interp should scale much better: {ij_speedup} vs {nj_speedup}"
    );
}
