//! End-to-end integration test of the first case study (§7.2):
//! application impact on rack heat generation, Figures 4 and 5.
//!
//! Raw generated tables go in; the derivation engine must find the
//! Figure 5 plan, and executing it must expose the paper's finding — the
//! AMG job's rack is the heat outlier, with a steadily rising profile.

use scrubjay::prelude::*;
use sjdata::{dat1, Dat1Config};
use std::collections::HashMap;

fn small_cfg() -> Dat1Config {
    Dat1Config {
        racks: 6,
        nodes_per_rack: 6,
        amg_rack_index: 4,
        amg_nodes: 5,
        background_jobs: 5,
        duration_secs: 3600,
        sensor_interval_secs: 120.0,
        seed: 0x5C8B,
        partitions: 3,
    }
}

fn rack_heat_query() -> Query {
    Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    )
}

#[test]
fn engine_finds_the_figure5_sequence() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&rack_heat_query()).unwrap();

    // All three datasets participate, connected by two combinations.
    let mut loads = plan.loads();
    loads.sort();
    assert_eq!(loads, vec!["job_queue_log", "node_layout", "rack_temps"]);
    assert_eq!(plan.num_combines(), 2);

    // The Figure 5 operations all appear, and the top combination is the
    // interpolation join over time.
    let ops: Vec<&str> = plan.ops().iter().map(|s| s.op_name()).collect();
    for expected in [
        "explode_discrete",
        "explode_continuous",
        "derive_heat",
        "natural_join",
        "interpolation_join",
    ] {
        assert!(ops.contains(&expected), "missing {expected} in {ops:?}");
    }
    assert_eq!(*ops.last().unwrap(), "interpolation_join");
}

#[test]
fn amg_rack_is_the_heat_outlier_with_rising_profile() {
    let ctx = ExecCtx::local();
    let (catalog, truth) = dat1(&ctx, &small_cfg()).unwrap();
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&rack_heat_query()).unwrap();
    let result = plan.execute(&catalog, None).unwrap();
    let schema = result.schema().clone();
    let rows = result.collect().unwrap();
    assert!(!rows.is_empty());

    let app_i = schema.index_of("job_name").unwrap();
    let rack_i = schema.index_of("rack").unwrap();
    let heat_i = schema.index_of("heat").unwrap();
    let time_col = schema.domain_field_on("time").unwrap().name.clone();
    let time_i = schema.index_of(&time_col).unwrap();

    // Mean heat per (app, rack): the AMG pair must rank first.
    let mut agg: HashMap<(String, String), (f64, usize)> = HashMap::new();
    for r in &rows {
        if let (Some(app), Some(rack), Some(h)) = (
            r.get(app_i).as_str(),
            r.get(rack_i).as_str(),
            r.get(heat_i).as_f64(),
        ) {
            let e = agg.entry((app.into(), rack.into())).or_insert((0.0, 0));
            e.0 += h;
            e.1 += 1;
        }
    }
    let mut ranked: Vec<((String, String), f64)> = agg
        .into_iter()
        .map(|(k, (s, n))| (k, s / n as f64))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let ((top_app, top_rack), top_heat) = &ranked[0];
    assert_eq!(top_app, "AMG");
    assert_eq!(top_rack, &truth.amg_rack);
    assert!(*top_heat > 5.0, "AMG mean heat too low: {top_heat}");

    // AMG's signature: heat rises over the run (Figure 4).
    let mut amg_series: Vec<(i64, f64)> = rows
        .iter()
        .filter(|r| r.get(app_i).as_str() == Some("AMG"))
        .filter_map(|r| Some((r.get(time_i).as_time()?.as_secs(), r.get(heat_i).as_f64()?)))
        .collect();
    amg_series.sort_by_key(|(t, _)| *t);
    assert!(amg_series.len() > 10);
    let half = amg_series.len() / 2;
    let mean = |s: &[(i64, f64)]| s.iter().map(|(_, h)| h).sum::<f64>() / s.len() as f64;
    let early = mean(&amg_series[..half]);
    let late = mean(&amg_series[half..]);
    assert!(
        late > early + 1.0,
        "AMG heat should rise: early={early:.2} late={late:.2}"
    );
}

#[test]
fn derived_rows_respect_the_node_rack_containment() {
    // Every derived (node, rack) pair must agree with the ground-truth
    // layout — the engine may not relate a job to a rack it did not run
    // on (this is why the anchored layout join matters).
    let ctx = ExecCtx::local();
    let (catalog, truth) = dat1(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog)
        .solve(&rack_heat_query())
        .unwrap();
    let result = plan.execute(&catalog, None).unwrap();
    let schema = result.schema().clone();
    let rack_i = schema.index_of("rack").unwrap();
    let node_col = schema.domain_field_on("compute-node").unwrap().name.clone();
    let node_i = schema.index_of(&node_col).unwrap();
    for r in result.collect().unwrap() {
        let node = r.get(node_i).as_str().unwrap();
        let rack = r.get(rack_i).as_str().unwrap();
        assert_eq!(
            truth.facility.layout().rack_of(node),
            Some(rack),
            "derived row places {node} on {rack}"
        );
    }
}

#[test]
fn the_figure5_plan_round_trips_through_json() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat1(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog)
        .solve(&rack_heat_query())
        .unwrap();
    let json = plan.to_json();
    let back = Plan::from_json(&json).unwrap();
    assert_eq!(plan, back);
    // The reloaded plan executes to the same number of rows.
    let a = plan.execute(&catalog, None).unwrap().count().unwrap();
    let b = back.execute(&catalog, None).unwrap().count().unwrap();
    assert_eq!(a, b);
}
