//! End-to-end integration test of the second case study (§7.3):
//! CPU frequency throttling impact on node power, Figures 6 and 7.
//!
//! Raw counters (with resets) go in; the engine must chain the
//! count-rate derivation, the CPU-spec join, and the active-frequency
//! derivation (Figure 7), and the derived series must show the Figure 6
//! signatures: mg.C at full frequency / low instruction rate / heavy
//! memory traffic; prime95 throttled / high instruction rate.

use scrubjay::prelude::*;
use sjdata::{dat2, Dat2Config};

fn small_cfg() -> Dat2Config {
    Dat2Config {
        nodes: 1,
        cpus_per_node: 2,
        sockets_per_node: 1,
        run_secs: 240,
        gap_secs: 30,
        sample_interval_secs: 3.0,
        ..Dat2Config::default()
    }
}

fn throttle_query() -> Query {
    Query::new(
        ["cpu", "node", "socket"],
        vec![
            QueryValue::dim("frequency"),
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::with_units("memory-reads", "memory-reads-per-ms"),
            QueryValue::dim("power"),
            QueryValue::dim("thermal-margin"),
        ],
    )
}

#[test]
fn engine_finds_the_figure7_sequence() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat2(&ctx, &small_cfg()).unwrap();
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&throttle_query()).unwrap();

    let mut loads = plan.loads();
    loads.sort();
    assert_eq!(loads, vec!["cpu_specs", "ipmi", "papi"]);

    let ops: Vec<&str> = plan.ops().iter().map(|s| s.op_name()).collect();
    // Two rate derivations (PAPI and IPMI), the natural join with the
    // static CPU specs, and the active-frequency derivation.
    assert_eq!(
        ops.iter().filter(|o| **o == "derive_rate").count(),
        2,
        "{ops:?}"
    );
    assert!(ops.contains(&"natural_join"), "{ops:?}");
    assert!(ops.contains(&"derive_active_frequency"), "{ops:?}");
    // Active frequency can only be derived after the rates and the base
    // frequency are present.
    let rate_pos = ops.iter().position(|o| *o == "derive_rate").unwrap();
    let freq_pos = ops
        .iter()
        .position(|o| *o == "derive_active_frequency")
        .unwrap();
    assert!(freq_pos > rate_pos);
}

#[test]
fn derived_series_shows_the_figure6_signatures() {
    let ctx = ExecCtx::local();
    let (catalog, truth) = dat2(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog).solve(&throttle_query()).unwrap();
    let result = plan.execute(&catalog, None).unwrap();
    let schema = result.schema().clone();
    let rows = result.collect().unwrap();
    assert!(rows.len() > 100);

    let time_col = schema.domain_field_on("time").unwrap().name.clone();
    let time_i = schema.index_of(&time_col).unwrap();
    let freq_i = schema.index_of("active_frequency").unwrap();
    let instr_i = schema.index_of("instructions_rate").unwrap();
    let reads_i = schema.index_of("mem_reads_rate").unwrap();
    let margin_i = schema.index_of("thermal_margin").unwrap();

    // Mean of a column over one run window.
    let run_mean = |run: usize, col: usize| -> f64 {
        let span = truth.runs[run];
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.get(time_i).as_time().is_some_and(|t| span.contains(t)))
            .filter_map(|r| r.get(col).as_f64())
            .collect();
        assert!(!vals.is_empty(), "no samples in run {run}");
        vals.iter().sum::<f64>() / vals.len() as f64
    };

    let base = small_cfg().base_mhz;
    for run in 0..3 {
        let f = run_mean(run, freq_i);
        assert!(f > 0.95 * base, "mg.C run {run} should not throttle: {f}");
    }
    for run in 3..6 {
        let f = run_mean(run, freq_i);
        assert!(
            f < 0.75 * base,
            "prime95 run {run} should throttle aggressively: {f}"
        );
    }
    // prime95 retires instructions much faster despite throttling.
    assert!(run_mean(3, instr_i) > 2.0 * run_mean(0, instr_i));
    // mg.C dominates memory traffic.
    assert!(run_mean(0, reads_i) > 3.0 * run_mean(3, reads_i));
    // prime95 runs much hotter (smaller thermal margin).
    assert!(run_mean(3, margin_i) < run_mean(0, margin_i) - 10.0);
}

#[test]
fn counter_resets_do_not_leak_into_rates() {
    // The generators inject counter resets; no derived rate may be
    // negative (the rate derivation must drop reset windows).
    let ctx = ExecCtx::local();
    let (catalog, _) = dat2(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog).solve(&throttle_query()).unwrap();
    let result = plan.execute(&catalog, None).unwrap();
    let schema = result.schema().clone();
    let instr_i = schema.index_of("instructions_rate").unwrap();
    let reads_i = schema.index_of("mem_reads_rate").unwrap();
    for r in result.collect().unwrap() {
        for col in [instr_i, reads_i] {
            if let Some(v) = r.get(col).as_f64() {
                assert!(v >= 0.0, "negative rate {v}");
            }
        }
    }
}

#[test]
fn units_constrained_queries_deliver_the_requested_units() {
    let ctx = ExecCtx::local();
    let (catalog, _) = dat2(&ctx, &small_cfg()).unwrap();
    let plan = QueryEngine::new(&catalog).solve(&throttle_query()).unwrap();
    let result = plan.execute(&catalog, None).unwrap();
    let f = result.schema().field("instructions_rate").unwrap();
    assert_eq!(f.semantics.units, "instructions-per-ms");
    let f = result.schema().field("mem_reads_rate").unwrap();
    assert_eq!(f.semantics.units, "memory-reads-per-ms");
}
