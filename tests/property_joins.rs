//! Property tests: the data-parallel combinations agree with naive
//! reference implementations on arbitrary inputs.
//!
//! The interpolation join's 2W-binning scheme (§5.3) guarantees that any
//! pair within W shares a bin on at least one grid — the central
//! correctness claim — so we check the set of (left, matched-right-set)
//! correspondences against an O(n²) pairwise scan, plus natural join
//! against a nested loop.

use proptest::prelude::*;
use scrubjay::prelude::*;
use sjcore::derivations::combine::{InterpolationJoin, NaturalJoin};
use sjcore::derivations::Combination;
use std::collections::{BTreeMap, BTreeSet};

fn dict() -> SemanticDictionary {
    SemanticDictionary::default_hpc()
}

fn event_schema(time_name: &str, value_name: &str, value_dim: &str, units: &str) -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new(time_name, FieldSemantics::domain("time", "datetime")),
        FieldDef::new(value_name, FieldSemantics::value(value_dim, units)),
    ])
    .unwrap()
}

fn rows_from(samples: &[(u8, i64, i64)]) -> Vec<Row> {
    samples
        .iter()
        .map(|&(node, secs, v)| {
            Row::new(vec![
                Value::str(format!("n{node}")),
                Value::Time(Timestamp::from_secs(secs)),
                Value::Int(v),
            ])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interpolation join finds exactly the pairs a naive O(n^2) scan
    /// finds: same matched left rows, same per-left match candidates.
    #[test]
    fn interp_join_matches_naive_pairwise(
        left in prop::collection::vec((0u8..3, 0i64..400, 0i64..100), 1..40),
        right in prop::collection::vec((0u8..3, 0i64..400, 0i64..100), 1..40),
        w in 1i64..120,
        parts in 1usize..5,
    ) {
        let ctx = ExecCtx::local();
        let d = dict();
        let lds = SjDataset::from_rows(
            &ctx, rows_from(&left),
            event_schema("time", "power", "power", "watts"), "l", parts);
        let rds = SjDataset::from_rows(
            &ctx, rows_from(&right),
            event_schema("t", "temp", "temperature", "celsius"), "r", parts);
        let out = InterpolationJoin::new(w as f64).apply(&lds, &rds, &d).unwrap();
        let got_rows = out.collect().unwrap();

        // Naive reference: a left row is matched iff some right row with
        // the same node is within w seconds.
        let mut expected_matched: BTreeSet<(u8, i64, i64)> = BTreeSet::new();
        for &(ln, lt, lv) in &left {
            let any = right.iter().any(|&(rn, rt, _)| rn == ln && (rt - lt).abs() <= w);
            if any {
                expected_matched.insert((ln, lt, lv));
            }
        }

        // Every expected-matched left row appears at least once, and no
        // unexpected left rows appear. (Duplicates in the input may
        // produce fewer output rows than input duplicates because equal
        // left rows share matches; compare as sets.)
        let got_matched: BTreeSet<(u8, i64, i64)> = got_rows.iter().map(|r| {
            let node: u8 = r.get(0).as_str().unwrap()[1..].parse().unwrap();
            (node, r.get(1).as_time().unwrap().as_secs(), r.get(2).as_i64().unwrap())
        }).collect();
        prop_assert_eq!(&got_matched, &expected_matched);

        // Interpolated values stay within the envelope of the matched
        // right values per node (linear interpolation cannot overshoot).
        for row in &got_rows {
            let node = row.get(0).as_str().unwrap().to_string();
            let lt = row.get(1).as_time().unwrap().as_secs();
            let interp = row.get(3).as_f64();
            let candidates: Vec<f64> = right.iter()
                .filter(|&&(rn, rt, _)| format!("n{rn}") == node && (rt - lt).abs() <= w)
                .map(|&(_, _, rv)| rv as f64)
                .collect();
            if let Some(v) = interp {
                let lo = candidates.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9,
                    "interpolated {v} outside [{lo}, {hi}]");
            }
        }
    }

    /// Natural join equals the nested-loop join on (node, time) keys,
    /// including multiplicities.
    #[test]
    fn natural_join_matches_nested_loop(
        left in prop::collection::vec((0u8..3, 0i64..20, 0i64..100), 0..30),
        right in prop::collection::vec((0u8..3, 0i64..20, 0i64..100), 0..30),
        parts in 1usize..5,
    ) {
        let ctx = ExecCtx::local();
        let d = dict();
        let lds = SjDataset::from_rows(
            &ctx, rows_from(&left),
            event_schema("time", "power", "power", "watts"), "l", parts);
        let rds = SjDataset::from_rows(
            &ctx, rows_from(&right),
            event_schema("t", "temp", "temperature", "celsius"), "r", parts);
        let out = NaturalJoin.apply(&lds, &rds, &d).unwrap();

        let mut expected: BTreeMap<(u8, i64, i64, i64), usize> = BTreeMap::new();
        for &(ln, lt, lv) in &left {
            for &(rn, rt, rv) in &right {
                if ln == rn && lt == rt {
                    *expected.entry((ln, lt, lv, rv)).or_default() += 1;
                }
            }
        }
        let mut got: BTreeMap<(u8, i64, i64, i64), usize> = BTreeMap::new();
        for r in out.collect().unwrap() {
            let node: u8 = r.get(0).as_str().unwrap()[1..].parse().unwrap();
            *got.entry((
                node,
                r.get(1).as_time().unwrap().as_secs(),
                r.get(2).as_i64().unwrap(),
                r.get(3).as_i64().unwrap(),
            )).or_default() += 1;
        }
        prop_assert_eq!(got, expected);
    }

    /// Partition count never changes join results.
    #[test]
    fn interp_join_is_partition_invariant(
        left in prop::collection::vec((0u8..2, 0i64..200, 0i64..50), 1..25),
        right in prop::collection::vec((0u8..2, 0i64..200, 0i64..50), 1..25),
    ) {
        let ctx = ExecCtx::local();
        let d = dict();
        let run = |parts: usize| -> Vec<Vec<String>> {
            let lds = SjDataset::from_rows(
                &ctx, rows_from(&left),
                event_schema("time", "power", "power", "watts"), "l", parts);
            let rds = SjDataset::from_rows(
                &ctx, rows_from(&right),
                event_schema("t", "temp", "temperature", "celsius"), "r", parts);
            let out = InterpolationJoin::new(30.0).apply(&lds, &rds, &d).unwrap();
            let mut rows: Vec<Vec<String>> = out.collect().unwrap().iter()
                .map(|r| r.values().iter().map(|v| v.to_string()).collect())
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(run(1), run(4));
    }
}
