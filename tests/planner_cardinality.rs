//! Domain-cardinality statistics behind `use_domain_cardinality`: the
//! flag may sharpen how the constraint planner *orders* its variable
//! bindings, but it must never change *which* plan is constructed —
//! estimates are tie-breakers, not semantics. This suite pins that
//! contract on an analyzed catalog: flag on and flag off produce
//! fingerprint-identical plans and byte-identical rows on every query,
//! and the engine's `cardinality_estimates` counter proves the
//! statistics were genuinely consulted (not silently skipped) exactly
//! when the flag is on and the catalog has been analyzed.

use scrubjay::prelude::*;
use sjcore::engine::PlannerKind;
use sjdf::ExecCtx as Ctx;

/// A three-dataset corpus with enough shape for multi-dataset covers:
/// node→rack layout, rack temperatures over time, per-node cumulative
/// counters. Row counts are deliberately skewed so row-count costs and
/// domain cardinalities disagree — the interesting case for the flag.
fn analyzed_corpus(ctx: &Ctx) -> Catalog {
    let mut catalog = Catalog::default_hpc();

    let layout_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let layout_rows: Vec<Row> = (0..8)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("cab{k}")),
                Value::str(format!("rack{}", k / 4)),
            ])
        })
        .collect();
    catalog
        .register_dataset(
            "node_layout",
            SjDataset::from_rows(ctx, layout_rows, layout_schema, "node_layout", 1),
        )
        .unwrap();

    let temps_schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    // 120 rows but only 2 distinct racks: raw row count says expensive,
    // domain cardinality says cheap.
    let mut temps_rows = Vec::new();
    for k in 0..120i64 {
        temps_rows.push(Row::new(vec![
            Value::str(format!("rack{}", k % 2)),
            Value::Time(Timestamp::from_secs(30 * k)),
            Value::Float(20.0 + (k % 9) as f64),
        ]));
    }
    catalog
        .register_dataset(
            "rack_temps",
            SjDataset::from_rows(ctx, temps_rows, temps_schema, "rack_temps", 1),
        )
        .unwrap();

    let counters_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        ),
    ])
    .unwrap();
    let counters_rows: Vec<Row> = (0..64)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("cab{}", k % 8)),
                Value::Time(Timestamp::from_secs(60 * (k as i64 / 8))),
                Value::Float(1_000_000.0 * k as f64),
            ])
        })
        .collect();
    catalog
        .register_dataset(
            "papi_counters",
            SjDataset::from_rows(ctx, counters_rows, counters_schema, "papi_counters", 1),
        )
        .unwrap();
    catalog
}

fn query_corpus() -> Vec<Query> {
    vec![
        Query::new(["rack"], vec![QueryValue::dim("temperature")]),
        Query::new(["node"], vec![QueryValue::dim("temperature")]),
        Query::new(
            ["rack", "time"],
            vec![QueryValue::with_units("temperature", "fahrenheit")],
        ),
        Query::new(
            ["node", "rack"],
            vec![
                QueryValue::dim("temperature"),
                QueryValue::dim("instructions"),
            ],
        ),
    ]
}

fn engine(catalog: &Catalog, planner: PlannerKind, use_cardinality: bool) -> QueryEngine<'_> {
    QueryEngine::with_config(
        catalog,
        EngineConfig {
            planner,
            use_domain_cardinality: use_cardinality,
            ..EngineConfig::default()
        },
    )
}

/// Flag on vs flag off over an analyzed catalog: identical fingerprints,
/// identical plan trees, identical executed rows, on both planners.
#[test]
fn cardinality_estimates_never_change_the_plan() {
    let ctx = ExecCtx::local();
    let mut catalog = analyzed_corpus(&ctx);
    let analyzed = catalog.analyze().unwrap();
    assert_eq!(analyzed, 3, "every dataset gains statistics");
    assert_eq!(
        catalog
            .stats("rack_temps")
            .unwrap()
            .domain_cardinality
            .get("rack"),
        Some(&2),
        "analyze measured the skewed rack cardinality"
    );

    for planner in [PlannerKind::Legacy, PlannerKind::Constraint] {
        for query in query_corpus() {
            let off = engine(&catalog, planner, false).solve(&query).unwrap();
            let on = engine(&catalog, planner, true).solve(&query).unwrap();
            assert_eq!(
                off.fingerprint(),
                on.fingerprint(),
                "[{planner:?}] cardinality flag changed the plan for {}:\noff: {}\non: {}",
                query.describe(),
                off.describe(),
                on.describe()
            );
            assert_eq!(off.to_json(), on.to_json(), "plan trees diverged");
            let rows_of = |plan: &Plan| -> Vec<String> {
                plan.execute(&catalog, None)
                    .unwrap()
                    .collect()
                    .unwrap()
                    .iter()
                    .map(|r| format!("{r:?}"))
                    .collect()
            };
            assert_eq!(
                rows_of(&off),
                rows_of(&on),
                "[{planner:?}] rows diverged for {}",
                query.describe()
            );
        }
    }
}

/// The counter proves the estimates were consulted: positive exactly
/// when the flag is on *and* the catalog carries statistics.
#[test]
fn cardinality_counter_tracks_flag_and_statistics() {
    let ctx = ExecCtx::local();
    let query = Query::new(
        ["node", "rack"],
        vec![
            QueryValue::dim("temperature"),
            QueryValue::dim("instructions"),
        ],
    );

    // Unanalyzed catalog: flag on, but no statistics to consult.
    let bare = analyzed_corpus(&ctx);
    let e = engine(&bare, PlannerKind::Constraint, true);
    e.solve(&query).unwrap();
    assert_eq!(
        e.stats().cardinality_estimates,
        0,
        "no statistics collected, nothing to consult"
    );

    let mut catalog = analyzed_corpus(&ctx);
    catalog.analyze().unwrap();

    // Flag off: statistics exist but must stay untouched.
    let e = engine(&catalog, PlannerKind::Constraint, false);
    e.solve(&query).unwrap();
    assert_eq!(e.stats().cardinality_estimates, 0, "flag off means off");

    // Flag on over the analyzed catalog: the estimates are consulted.
    let e = engine(&catalog, PlannerKind::Constraint, true);
    e.solve(&query).unwrap();
    assert!(
        e.stats().cardinality_estimates > 0,
        "analyzed + flag on must consult domain cardinalities: {:?}",
        e.stats()
    );
}
