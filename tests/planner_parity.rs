//! Planner parity: the constraint-guided planner must be
//! plan-for-plan identical to the legacy widening search.
//!
//! The legacy planner is the reference semantics — every plan it finds
//! is correct by the existing test corpus — so the constraint planner
//! ships under one obligation: *byte-identical results and equal plan
//! fingerprints on every query the legacy planner answers, and the
//! same structured error on every query it cannot*. Fingerprints key
//! the result caches in sjserve and the routing tables in sjroute, so
//! "mostly the same plan" would silently split caches and misroute
//! scatter-gather covers; this harness is what makes the planner swap
//! a no-op for every layer above the engine.
//!
//! The fixtures double as the golden robustness corpus: synonym and
//! homonym near-misses (datasets that *look* relevant but must not be
//! planned in) and heavy row skew (plans are schema-only, so data
//! distribution — with or without collected statistics — must never
//! change a plan).

use scrubjay::prelude::*;
use sjcore::engine::PlannerKind;
use sjcore::SjError;
use sjdf::ExecCtx as Ctx;

fn engine(catalog: &Catalog, planner: PlannerKind) -> QueryEngine<'_> {
    QueryEngine::with_config(
        catalog,
        EngineConfig {
            planner,
            ..EngineConfig::default()
        },
    )
}

/// Solve with both planners and require identical outcomes: equal plan
/// fingerprint, JSON tree, and executed rows on success, or the same
/// error rendering on failure. Returns the shared plan when one exists.
fn assert_parity(catalog: &Catalog, query: &Query) -> Option<Plan> {
    let legacy = engine(catalog, PlannerKind::Legacy).solve(query);
    let constraint = engine(catalog, PlannerKind::Constraint).solve(query);
    match (legacy, constraint) {
        (Ok(l), Ok(c)) => {
            assert_eq!(
                l.fingerprint(),
                c.fingerprint(),
                "plan fingerprints diverged for {}:\nlegacy: {}\nconstraint: {}",
                query.describe(),
                l.describe(),
                c.describe()
            );
            assert_eq!(l.to_json(), c.to_json(), "plan trees diverged");
            let lhs: Vec<String> = l
                .execute(catalog, None)
                .unwrap()
                .collect()
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            let rhs: Vec<String> = c
                .execute(catalog, None)
                .unwrap()
                .collect()
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            assert_eq!(lhs, rhs, "executed rows diverged for {}", query.describe());
            Some(l)
        }
        (Err(le), Err(ce)) => {
            assert_eq!(
                le.to_string(),
                ce.to_string(),
                "error renderings diverged for {}",
                query.describe()
            );
            None
        }
        (l, c) => panic!(
            "planners disagree on solvability of {}:\nlegacy: {:?}\nconstraint: {:?}",
            query.describe(),
            l.map(|p| p.describe()),
            c.map(|p| p.describe())
        ),
    }
}

fn node_temp_dataset(ctx: &Ctx, field: &str, units: &str, rows: usize, base: f64) -> SjDataset {
    let schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(field, FieldSemantics::value("temperature", units)),
    ])
    .unwrap();
    let rows: Vec<Row> = (0..rows)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("cab{}", k % 4)),
                Value::Time(Timestamp::from_secs(60 * k as i64)),
                Value::Float(base + k as f64),
            ])
        })
        .collect();
    SjDataset::from_rows(ctx, rows, schema, "temps", 1)
}

/// DAT-1-shaped corpus: job log (compound node list + timespan), rack
/// layout, rack temperatures.
fn dat1_catalog(ctx: &Ctx) -> Catalog {
    let mut catalog = Catalog::default_hpc();
    let joblog_schema = Schema::new(vec![
        FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
        FieldDef::new("job_name", FieldSemantics::value("application", "app-name")),
        FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        ),
        FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
        FieldDef::new("timespan", FieldSemantics::domain("time", "timespan")),
    ])
    .unwrap();
    let joblog_rows = vec![
        Row::new(vec![
            Value::str("1001"),
            Value::str("AMG"),
            Value::list([Value::str("cab0"), Value::str("cab1")]),
            Value::Float(240.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(240),
            )),
        ]),
        Row::new(vec![
            Value::str("1002"),
            Value::str("LULESH"),
            Value::list([Value::str("cab2")]),
            Value::Float(240.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(120),
                Timestamp::from_secs(360),
            )),
        ]),
    ];
    catalog
        .register_dataset(
            "job_queue_log",
            SjDataset::from_rows(ctx, joblog_rows, joblog_schema, "job_queue_log", 1),
        )
        .unwrap();

    let layout_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let layout_rows: Vec<Row> = (0..4)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("cab{k}")),
                Value::str(format!("rack{}", 17 + k / 2)),
            ])
        })
        .collect();
    catalog
        .register_dataset(
            "node_layout",
            SjDataset::from_rows(ctx, layout_rows, layout_schema, "node_layout", 1),
        )
        .unwrap();

    let temps_schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new(
            "location",
            FieldSemantics::domain("rack-location", "location-name"),
        ),
        FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    let mut temps_rows = Vec::new();
    for t in [0i64, 120, 240, 360] {
        for rack in ["rack17", "rack18"] {
            for (aisle, base) in [("hot", 35.0), ("cold", 18.0)] {
                temps_rows.push(Row::new(vec![
                    Value::str(rack),
                    Value::str("top"),
                    Value::str(aisle),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(base + t as f64 / 100.0),
                ]));
            }
        }
    }
    catalog
        .register_dataset(
            "rack_temps",
            SjDataset::from_rows(ctx, temps_rows, temps_schema, "rack_temps", 1),
        )
        .unwrap();
    catalog
}

/// The whole DAT-1-style query corpus agrees across planners: direct
/// hits, multi-join covers, rule-derived values, and both flavors of
/// unsatisfiable query (with byte-identical error messages).
#[test]
fn dat1_corpus_plans_and_rows_agree() {
    let ctx = ExecCtx::local();
    let catalog = dat1_catalog(&ctx);
    let queries = [
        Query::new(["rack"], vec![QueryValue::dim("temperature")]),
        Query::new(["node"], vec![QueryValue::dim("temperature")]),
        Query::new(
            ["job", "rack"],
            vec![QueryValue::dim("application"), QueryValue::dim("heat")],
        ),
        Query::new(["job", "time"], vec![QueryValue::dim("heat")]),
        Query::new(
            ["rack", "time"],
            vec![QueryValue::with_units("temperature", "fahrenheit")],
        ),
        // Domain nobody records: both planners refuse pre-search, with
        // the same message.
        Query::new(["socket"], vec![QueryValue::dim("temperature")]),
        // Value nobody records or derives.
        Query::new(["rack"], vec![QueryValue::dim("humidity")]),
    ];
    let solved: Vec<usize> = queries
        .iter()
        .enumerate()
        .filter_map(|(i, query)| assert_parity(&catalog, query).map(|_| i))
        .collect();
    assert_eq!(
        solved,
        vec![0, 1, 2, 3, 4],
        "corpus should split 5 solvable / 2 not"
    );
}

/// Long dependency chains: every link must be planned in, in the same
/// order, by both planners.
/// Identifier chain node -> rack -> cpu -> socket with a power sensor
/// on the far end; relating `node` to `power` needs every link.
fn chain_catalog(ctx: &Ctx) -> Catalog {
    let mut catalog = Catalog::default_hpc();
    let dims = [
        ("compute-node", "node-id"),
        ("rack", "rack-id"),
        ("cpu", "cpu-id"),
        ("socket", "socket-id"),
    ];
    for i in 0..3 {
        let (d1, u1) = dims[i];
        let (d2, u2) = dims[i + 1];
        let schema = Schema::new(vec![
            FieldDef::new("a", FieldSemantics::domain(d1, u1)),
            FieldDef::new("b", FieldSemantics::domain(d2, u2)),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..4)
            .map(|k| {
                Row::new(vec![
                    Value::str(format!("{d1}-{k}")),
                    Value::str(format!("{d2}-{k}")),
                ])
            })
            .collect();
        catalog
            .register_dataset(
                &format!("link{i}"),
                SjDataset::from_rows(ctx, rows, schema, format!("link{i}"), 1),
            )
            .unwrap();
    }
    let sensor_schema = Schema::new(vec![
        FieldDef::new("x", FieldSemantics::domain("socket", "socket-id")),
        FieldDef::new("watts", FieldSemantics::value("power", "watts")),
    ])
    .unwrap();
    let sensor_rows: Vec<Row> = (0..4)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("socket-{k}")),
                Value::Float(100.0 + k as f64),
            ])
        })
        .collect();
    catalog
        .register_dataset(
            "power_meter",
            SjDataset::from_rows(ctx, sensor_rows, sensor_schema, "power_meter", 1),
        )
        .unwrap();
    catalog
}

/// Long dependency chains: every link must be planned in, in the same
/// order, by both planners.
#[test]
fn chain_covers_agree_across_planners() {
    let ctx = ExecCtx::local();
    let catalog = chain_catalog(&ctx);
    for domain in ["node", "rack", "cpu", "socket"] {
        let query = Query::new(
            match domain {
                "node" => ["node"],
                "rack" => ["rack"],
                "cpu" => ["cpu"],
                _ => ["socket"],
            },
            vec![QueryValue::dim("power")],
        );
        assert_parity(&catalog, &query);
    }
    // The far end needs the whole chain.
    let plan = assert_parity(
        &catalog,
        &Query::new(["node"], vec![QueryValue::dim("power")]),
    )
    .unwrap();
    assert_eq!(plan.loads().len(), 4);
}

/// Golden near-miss: `degrees-celsius` is a dictionary synonym for
/// `celsius`, and a second dataset records temperature in `fahrenheit`.
/// A units-constrained query through the synonym must plan in only the
/// celsius dataset — on both planners — while the unconstrained query
/// deterministically picks the same supplier on both.
#[test]
fn synonym_near_miss_picks_the_matching_units() {
    let ctx = ExecCtx::local();
    let mut catalog = Catalog::default_hpc();
    catalog
        .register_dataset(
            "temps_celsius",
            node_temp_dataset(&ctx, "temp_c", "celsius", 8, 20.0),
        )
        .unwrap();
    catalog
        .register_dataset(
            "temps_fahrenheit",
            node_temp_dataset(&ctx, "temp_f", "fahrenheit", 8, 68.0),
        )
        .unwrap();

    // `node` and `degrees-celsius` are both aliases; canonicalization
    // must land both planners on the same celsius supplier.
    let via_synonym = Query::new(
        ["node"],
        vec![QueryValue::with_units("temperature", "degrees-celsius")],
    );
    let plan = assert_parity(&catalog, &via_synonym).unwrap();
    assert_eq!(plan.loads(), vec!["temps_celsius"]);

    // Without units the query is a genuine tie between two suppliers —
    // exactly where a planner rewrite would silently flip the choice.
    let unconstrained = Query::new(["node"], vec![QueryValue::dim("temperature")]);
    let plan = assert_parity(&catalog, &unconstrained).unwrap();
    assert_eq!(plan.loads().len(), 1);
}

/// Golden near-miss: two datasets share the column *name* `temp` but on
/// different dimensions (`temperature` vs `thermal-margin`). Planning
/// is semantic, not lexical — the homonym must never be planned in.
#[test]
fn homonym_near_miss_is_never_planned_in() {
    let ctx = ExecCtx::local();
    let mut catalog = Catalog::default_hpc();
    catalog
        .register_dataset(
            "node_temps",
            node_temp_dataset(&ctx, "temp", "celsius", 8, 20.0),
        )
        .unwrap();
    let margin_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "temp",
            FieldSemantics::value("thermal-margin", "margin-celsius"),
        ),
    ])
    .unwrap();
    let margin_rows: Vec<Row> = (0..8)
        .map(|k| {
            Row::new(vec![
                Value::str(format!("cab{}", k % 4)),
                Value::Time(Timestamp::from_secs(60 * k as i64)),
                Value::Float(10.0 - k as f64 / 2.0),
            ])
        })
        .collect();
    catalog
        .register_dataset(
            "node_margins",
            SjDataset::from_rows(&ctx, margin_rows, margin_schema, "node_margins", 1),
        )
        .unwrap();

    let temp_plan = assert_parity(
        &catalog,
        &Query::new(["node"], vec![QueryValue::dim("temperature")]),
    )
    .unwrap();
    assert_eq!(temp_plan.loads(), vec!["node_temps"]);
    let margin_plan = assert_parity(
        &catalog,
        &Query::new(["node"], vec![QueryValue::dim("thermal-margin")]),
    )
    .unwrap();
    assert_eq!(margin_plan.loads(), vec!["node_margins"]);
}

/// Golden skew: one rack holds 80% of the temperature rows. Plans are
/// schema-only, so the skew must change neither planner's plan — and
/// collecting statistics (which the constraint planner's estimates
/// consume) must sharpen costs without ever changing the plan.
#[test]
fn row_skew_and_statistics_never_change_the_plan() {
    let ctx = ExecCtx::local();
    let mut catalog = dat1_catalog(&ctx);
    let temps_schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    // 80 of 100 rows on rack17, the rest spread thin.
    let mut rows = Vec::new();
    for k in 0..100i64 {
        let rack = if k < 80 {
            "rack17".to_string()
        } else {
            format!("rack{}", 18 + k % 4)
        };
        rows.push(Row::new(vec![
            Value::str(rack),
            Value::Time(Timestamp::from_secs(30 * k)),
            Value::Float(20.0 + (k % 7) as f64),
        ]));
    }
    // Replace the balanced fixture with the skewed one under a fresh
    // name so the catalog keeps exactly one temperature supplier per
    // units.
    let mut skewed = Catalog::default_hpc();
    for (name, ds) in catalog.datasets() {
        if name != "rack_temps" {
            skewed.register_dataset(name, ds.clone()).unwrap();
        }
    }
    skewed
        .register_dataset(
            "rack_temps",
            SjDataset::from_rows(&ctx, rows, temps_schema, "rack_temps", 1),
        )
        .unwrap();
    catalog = skewed;

    let query = Query::new(["job", "rack"], vec![QueryValue::dim("temperature")]);
    let before = assert_parity(&catalog, &query).unwrap();

    // Statistics sharpen the constraint planner's estimates; they must
    // never alter the chosen plan.
    let analyzed = catalog.analyze().unwrap();
    assert!(analyzed >= 3, "all datasets should gain statistics");
    let stats = catalog.stats("rack_temps").unwrap();
    assert_eq!(stats.rows, 100);
    assert_eq!(stats.domain_cardinality.get("rack"), Some(&5));
    let after = assert_parity(&catalog, &query).unwrap();
    assert_eq!(before.fingerprint(), after.fingerprint());
    assert_eq!(before.to_json(), after.to_json());
}

/// Budget truncation renders identically through both planners. The
/// chain needs four datasets; a budget of two stops the widening with
/// links still untried, so both planners must answer with the
/// structured truncation error (not a claim of unsatisfiability).
#[test]
fn truncation_errors_agree_across_planners() {
    let ctx = ExecCtx::local();
    let catalog = chain_catalog(&ctx);
    let query = Query::new(["node"], vec![QueryValue::dim("power")]);
    let config = EngineConfig {
        max_datasets: 2,
        ..EngineConfig::default()
    };
    let run = |planner| {
        QueryEngine::with_config(
            &catalog,
            EngineConfig {
                planner,
                ..config.clone()
            },
        )
        .solve(&query)
        .unwrap_err()
    };
    let legacy = run(PlannerKind::Legacy);
    let constraint = run(PlannerKind::Constraint);
    assert!(matches!(
        legacy,
        SjError::SearchTruncated {
            max_datasets: 2,
            ..
        }
    ));
    assert_eq!(legacy.to_string(), constraint.to_string());
}
