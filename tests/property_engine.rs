//! Property tests on the derivation engine and the data model.
//!
//! Invariants: every plan the engine returns produces (semantics-only) a
//! schema satisfying the query; executing a plan yields rows matching the
//! predicted schema; plans round-trip through JSON; explode round-trips;
//! unit conversions round-trip.

use proptest::prelude::*;
use scrubjay::prelude::*;
use sjcore::derivations::transform::{ConvertUnits, ExplodeDiscrete};
use sjcore::derivations::Transformation;
use sjcore::units::{convert_scalar, UnitKind, UnitsDef};

fn dict() -> SemanticDictionary {
    SemanticDictionary::default_hpc()
}

/// Layout rows: (node, rack) pairs.
type LayoutSpec = Vec<(u8, u8)>;
/// Sensor datasets: (kind, samples of (node, time, value)).
type SensorSpec = Vec<(u8, Vec<(u8, i64, i64)>)>;

/// A random mini-catalog: a layout dataset plus N sensor datasets over
/// random subsets of domains.
fn catalog_strategy() -> impl Strategy<Value = (LayoutSpec, SensorSpec)> {
    (
        prop::collection::vec((0u8..6, 0u8..3), 1..12), // (node, rack) layout
        prop::collection::vec(
            (
                0u8..2,
                prop::collection::vec((0u8..6, 0i64..600, 0i64..100), 1..20),
            ),
            1..4,
        ),
    )
}

fn build_catalog(ctx: &ExecCtx, layout: &LayoutSpec, sensors: &SensorSpec) -> Catalog {
    let mut c = Catalog::default_hpc();
    let layout_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let mut seen = std::collections::BTreeSet::new();
    let rows: Vec<Row> = layout
        .iter()
        .filter(|(n, _)| seen.insert(*n))
        .map(|(n, r)| {
            Row::new(vec![
                Value::str(format!("n{n}")),
                Value::str(format!("r{r}")),
            ])
        })
        .collect();
    c.register_dataset(
        "layout",
        SjDataset::from_rows(ctx, rows, layout_schema, "layout", 2),
    )
    .unwrap();

    for (i, (kind, samples)) in sensors.iter().enumerate() {
        let (vname, vdim, vunits) = if *kind == 0 {
            ("temp", "temperature", "celsius")
        } else {
            ("power", "power", "watts")
        };
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(vname, FieldSemantics::value(vdim, vunits)),
        ])
        .unwrap();
        let rows: Vec<Row> = samples
            .iter()
            .map(|(n, t, v)| {
                Row::new(vec![
                    Value::str(format!("n{n}")),
                    Value::Time(Timestamp::from_secs(*t)),
                    Value::Int(*v),
                ])
            })
            .collect();
        c.register_dataset(
            &format!("sensor{i}"),
            SjDataset::from_rows(ctx, rows, schema, format!("sensor{i}"), 2),
        )
        .unwrap();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whenever the engine returns a plan, the plan's predicted schema
    /// satisfies the query, and executing the plan produces rows whose
    /// width matches that schema.
    #[test]
    fn solutions_always_satisfy_their_query(
        (layout, sensors) in catalog_strategy(),
        want_power in prop::bool::ANY,
    ) {
        let ctx = ExecCtx::local();
        let catalog = build_catalog(&ctx, &layout, &sensors);
        let value = if want_power { "power" } else { "temperature" };
        let query = Query::new(["rack"], vec![QueryValue::dim(value)]);
        let engine = QueryEngine::new(&catalog);
        match engine.solve(&query) {
            Ok(plan) => {
                let schema = engine.solution_schema(&query).unwrap();
                let canon = query.canonicalize(catalog.dict()).unwrap();
                prop_assert!(canon.satisfied_by(&schema, catalog.dict()));
                let ds = plan.execute(&catalog, None).unwrap();
                prop_assert_eq!(ds.schema(), &schema);
                for row in ds.collect().unwrap() {
                    prop_assert_eq!(row.len(), schema.len());
                }
            }
            Err(sjcore::SjError::NoSolution(_)) => {
                // Acceptable: the random sensors may not provide the value.
                prop_assert!(
                    !sensors.iter().any(|(k, _)|
                        (*k == 1) == want_power
                    ),
                    "engine said no-solution but a sensor provides `{}`",
                    value
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    /// Plans returned by the engine always round-trip through JSON.
    #[test]
    fn plans_round_trip_through_json(
        (layout, sensors) in catalog_strategy(),
    ) {
        let ctx = ExecCtx::local();
        let catalog = build_catalog(&ctx, &layout, &sensors);
        let query = Query::new(["rack"], vec![QueryValue::dim("temperature")]);
        if let Ok(plan) = QueryEngine::new(&catalog).solve(&query) {
            let back = Plan::from_json(&plan.to_json()).unwrap();
            prop_assert_eq!(plan, back);
        }
    }

    /// Exploding a list column yields exactly the flattened elements, in
    /// order, with all other cells replicated.
    #[test]
    fn explode_discrete_flattens_exactly(
        lists in prop::collection::vec(
            prop::collection::vec(0u8..10, 0..6), 1..10),
    ) {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![
            FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
            FieldDef::new("nodelist", FieldSemantics::domain("compute-node", "node-list")),
        ]).unwrap();
        let rows: Vec<Row> = lists.iter().enumerate().map(|(i, l)| Row::new(vec![
            Value::str(format!("j{i}")),
            Value::list(l.iter().map(|n| Value::str(format!("n{n}")))),
        ])).collect();
        let ds = SjDataset::from_rows(&ctx, rows, schema, "jobs", 3);
        let out = ExplodeDiscrete::new("nodelist").apply(&ds, &dict()).unwrap();
        let got = out.collect().unwrap();
        let expected: Vec<(String, String)> = lists.iter().enumerate()
            .flat_map(|(i, l)| l.iter().map(move |n| (format!("j{i}"), format!("n{n}"))))
            .collect();
        let got_pairs: Vec<(String, String)> = got.iter().map(|r| (
            r.get(0).as_str().unwrap().to_string(),
            r.get(1).as_str().unwrap().to_string(),
        )).collect();
        prop_assert_eq!(got_pairs, expected);
    }

    /// Scalar unit conversions round-trip within float tolerance.
    #[test]
    fn unit_conversions_round_trip(v in -1000.0f64..1000.0) {
        let d = dict();
        let c = d.units("celsius").unwrap();
        let f = d.units("fahrenheit").unwrap();
        let there = convert_scalar(v, c, f).unwrap();
        let back = convert_scalar(there, f, c).unwrap();
        prop_assert!((back - v).abs() < 1e-9);

        let s = d.units("t-seconds").unwrap();
        let m = d.units("t-minutes").unwrap();
        let there = convert_scalar(v, s, m).unwrap();
        let back = convert_scalar(there, m, s).unwrap();
        prop_assert!((back - v).abs() < 1e-9);
    }

    /// A conversion through a third scalar unit equals the direct
    /// conversion (conversions compose).
    #[test]
    fn unit_conversions_compose(v in -1000.0f64..1000.0) {
        let w = UnitsDef::new("w", "power", UnitKind::Scalar { factor: 1.0, offset: 0.0 });
        let kw = UnitsDef::new("kw", "power", UnitKind::Scalar { factor: 1000.0, offset: 0.0 });
        let mw = UnitsDef::new("mw", "power", UnitKind::Scalar { factor: 1e6, offset: 0.0 });
        let direct = convert_scalar(v, &w, &mw).unwrap();
        let via = convert_scalar(convert_scalar(v, &w, &kw).unwrap(), &kw, &mw).unwrap();
        prop_assert!((direct - via).abs() < 1e-12 * v.abs().max(1.0));
    }

    /// ConvertUnits on a dataset applies the same function as the scalar
    /// conversion, cell by cell.
    #[test]
    fn convert_units_transformation_is_cellwise(
        temps in prop::collection::vec(-50.0f64..150.0, 1..20),
    ) {
        let ctx = ExecCtx::local();
        let d = dict();
        let schema = Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ]).unwrap();
        let rows: Vec<Row> = temps.iter().enumerate().map(|(i, t)| Row::new(vec![
            Value::str(format!("r{i}")), Value::Float(*t),
        ])).collect();
        let ds = SjDataset::from_rows(&ctx, rows, schema, "t", 2);
        let out = ConvertUnits::new("temp", "fahrenheit").apply(&ds, &d).unwrap();
        let got = out.collect_column("temp").unwrap();
        let c = d.units("celsius").unwrap();
        let f = d.units("fahrenheit").unwrap();
        for (orig, conv) in temps.iter().zip(&got) {
            let expected = convert_scalar(*orig, c, f).unwrap();
            prop_assert!((conv.as_f64().unwrap() - expected).abs() < 1e-9);
        }
    }
}
