//! Chaos × streaming: fault injection during incremental window
//! recomputation. The contract under faults is the streaming analogue of
//! the batch chaos suite's "exact result or typed error": every window a
//! standing query emits is either **byte-identical** to the fault-free
//! run (retries rescued the evaluation) or a **structured degraded
//! emission** carrying the failure — never a torn-down subscription,
//! never a wrong-but-ok-looking window, never a dead engine.

use sjcore::engine::{EngineConfig, Query, QueryValue};
use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::{ExecCtx, FaultPlan, RetryPolicy};
use sjstream::{StreamConfig, StreamEngine};
use std::time::Duration;

fn standing_query() -> Query {
    Query::new(
        ["compute-node", "time"],
        vec![
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::dim("temperature"),
        ],
    )
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_secs: 60.0,
        allowed_lateness_secs: 120.0,
        horizon_secs: 300.0,
        eval_parts: 1,
        ..StreamConfig::default()
    }
}

/// A context with `plan` installed and a tight retry budget (near-zero
/// backoff so the sweep stays fast).
fn chaos_ctx(plan: FaultPlan, attempts: u32) -> ExecCtx {
    ExecCtx::local()
        .with_retry(RetryPolicy::retries(attempts).with_backoff(
            Duration::from_micros(50),
            2.0,
            Duration::from_millis(2),
        ))
        .with_faults(plan)
}

/// One emission flattened to comparable bytes (identity + payload).
type FlatEmission = (i64, i64, bool, Vec<String>, Vec<Vec<String>>, bool);

/// Replay `schedule` through an engine on `ctx`; return every emission
/// as (window_id, watermark, re_emission, columns, rows, degraded).
fn replay(ctx: &ExecCtx, steps: usize) -> Vec<FlatEmission> {
    let catalog = stream_catalog(ctx).expect("stream catalog");
    let mut engine = StreamEngine::new(ctx, catalog, stream_config(), EngineConfig::default());
    engine
        .subscribe("q-chaos", "tenant-a", &standing_query())
        .expect("subscribe");
    let mut out = Vec::new();
    for (i, batch) in disarray_schedule(Disarray::LateDuplicates, 42, steps)
        .iter()
        .enumerate()
    {
        let outcome = engine.append(batch).expect("append must survive faults");
        assert!(
            outcome.failures.is_empty(),
            "append {i}: eval faults must degrade windows, not tear down \
             the subscription: {:?}",
            outcome.failures
        );
        for e in outcome.emissions {
            if e.degraded {
                let msg = e.error.clone().unwrap_or_default();
                assert!(
                    !msg.is_empty(),
                    "append {i}: degraded window {} carries no error",
                    e.window_id
                );
            }
            out.push((
                e.window_id,
                e.watermark_us,
                e.re_emission,
                e.columns,
                e.rows,
                e.degraded,
            ));
        }
    }
    out
}

/// The subscription entry in the chaos sweep: many seeded fault plans,
/// each replayed against the fault-free reference. Window identity
/// (id, watermark, re-emission flag) must match the reference exactly —
/// fault handling may never change *which* windows fire — and every
/// non-degraded payload must be byte-identical to the reference's.
#[test]
fn seeded_fault_sweep_emits_exact_or_degraded_windows() {
    const STEPS: usize = 8;
    let reference = replay(&ExecCtx::local(), STEPS);
    assert!(
        reference.iter().all(|(.., degraded)| !degraded),
        "fault-free reference degraded a window"
    );
    assert!(!reference.is_empty(), "reference run emitted nothing");

    let mut exact = 0usize;
    let mut degraded = 0usize;
    let mut injected_total = 0u64;
    for seed in 0..100u64 {
        let plan = FaultPlan::seeded(seed)
            .with_task_fail_rate(0.15)
            .with_shuffle_fail_rate(0.05);
        let ctx = chaos_ctx(plan, 3);
        let got = replay(&ctx, STEPS);
        assert_eq!(
            got.len(),
            reference.len(),
            "seed {seed}: emission schedule diverged from reference"
        );
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(
                (g.0, g.1, g.2),
                (r.0, r.1, r.2),
                "seed {seed}: window identity diverged"
            );
            if g.5 {
                degraded += 1;
            } else {
                assert_eq!(g.3, r.3, "seed {seed}: window {} columns diverged", g.0);
                assert_eq!(g.4, r.4, "seed {seed}: window {} rows diverged", g.0);
                exact += 1;
            }
        }
        let report = ctx.failure_report();
        injected_total += report.injected_task_faults + report.injected_shuffle_faults;
    }
    assert!(
        injected_total > 0,
        "the sweep's fault plans never fired — rates too low to test anything"
    );
    assert!(exact > 0, "no faulted run ever recovered a window exactly");
    // Degraded windows are permitted but not required at these rates
    // (the poisoned-partition test below forces that path).
    let _ = degraded;
}

/// Faults installed *mid-stream* (after the prefix is seeded) poison
/// every evaluation: windows degrade with a structured error, the
/// subscription survives, and once the faults are lifted the engine
/// emits clean windows that match its own cold batch solve again.
#[test]
fn poisoned_evaluation_degrades_windows_and_recovers() {
    let ctx = ExecCtx::local().with_retry(RetryPolicy::retries(1).with_backoff(
        Duration::from_micros(50),
        2.0,
        Duration::from_millis(1),
    ));
    let catalog = stream_catalog(&ctx).unwrap();
    let mut engine = StreamEngine::new(&ctx, catalog, stream_config(), EngineConfig::default());
    engine
        .subscribe("q-poison", "tenant-a", &standing_query())
        .unwrap();

    let schedule = disarray_schedule(Disarray::InOrder, 7, 16);
    let mid = schedule.len() / 2;
    let mut saw_degraded = 0usize;
    let mut clean_after_recovery = 0usize;
    for (i, batch) in schedule.iter().enumerate() {
        if i == 3 {
            // Both datasets have seen their seeding append (one full
            // step); from here every task attempt for partition 0 (the
            // only eval partition) fails.
            ctx.set_faults(Some(FaultPlan::seeded(1).poison_partition(0)));
        }
        if i == mid {
            ctx.set_faults(None);
        }
        let out = engine.append(batch).expect("append survives poisoning");
        assert!(
            out.failures.is_empty(),
            "append {i}: subscription torn down"
        );
        for e in out.emissions {
            if i < mid {
                assert!(
                    e.degraded,
                    "append {i}: window {} evaluated despite a poisoned executor",
                    e.window_id
                );
                let msg = e.error.unwrap_or_default();
                assert!(
                    msg.contains("exhausted") || msg.contains("injected"),
                    "append {i}: degraded error lost the failure cause: {msg}"
                );
                saw_degraded += 1;
            } else if !e.degraded {
                let (cold_cols, cold_rows) = engine
                    .cold_window("q-poison", e.window_id)
                    .expect("cold solve after recovery");
                assert_eq!(e.columns, cold_cols);
                assert_eq!(
                    e.rows, cold_rows,
                    "post-recovery window {} diverged",
                    e.window_id
                );
                clean_after_recovery += 1;
            }
        }
    }
    assert!(saw_degraded > 0, "poisoned phase never emitted a window");
    assert!(
        clean_after_recovery > 0,
        "no clean window after the faults were lifted"
    );
    let counters = engine.counters();
    assert!(counters.degraded_windows >= saw_degraded as u64);
    assert_eq!(engine.subscriptions().len(), 1, "subscription must survive");
}

/// CI artifact hook (streaming flavour): when `CHAOS_SEED` is set,
/// replay the chaos schedule under that seed and (when `CHAOS_REPORT`
/// is also set) append a JSON line with the emission accounting for
/// upload next to the batch chaos artifact.
#[test]
fn streaming_chaos_artifact_round_trips() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64);
    let plan = FaultPlan::seeded(seed)
        .with_task_fail_rate(0.15)
        .with_shuffle_fail_rate(0.05);
    let ctx = chaos_ctx(plan, 3);
    let emissions = replay(&ctx, 8);
    let degraded = emissions.iter().filter(|e| e.5).count();
    let report = ctx.failure_report();
    let json = serde_json::to_string(&report).expect("FailureReport serializes");
    if let Ok(path) = std::env::var("CHAOS_REPORT") {
        let artifact = format!(
            "{{\"kind\":\"streaming\",\"seed\":{seed},\"emissions\":{},\"degraded\":{degraded},\"report\":{json}}}\n",
            emissions.len()
        );
        std::fs::write(&path, artifact).expect("write streaming chaos artifact");
    }
}
