//! Regression tests for streaming-ingestion review findings:
//!
//! 1. An append batch commits atomically — a validation failure on any
//!    row leaves the accepted prefix, the epoch, the clocks, and the
//!    counters untouched, so cached window emissions can never diverge
//!    from what the client was told was rejected.
//! 2. The watermark is monotone — a source that first reports after the
//!    watermark has advanced cannot drag it backwards and reopen
//!    windows the sweep already passed as final.
//! 3. Re-emission is driven by data, not by cache pressure — evicting a
//!    cached window evaluation under byte-budget pressure must not
//!    produce spurious `re_emission` frames.

use sjcore::engine::{EngineConfig, Query, QueryValue};
use sjcore::{Row, Timestamp, Value};
use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::ExecCtx;
use sjstream::{AppendBatch, StreamConfig, StreamEngine};

/// The standing derive-rate + interpolation-join query used by the
/// equivalence suite.
fn standing_query() -> Query {
    Query::new(
        ["compute-node", "time"],
        vec![
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::dim("temperature"),
        ],
    )
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_secs: 60.0,
        allowed_lateness_secs: 120.0,
        horizon_secs: 300.0,
        eval_parts: 1,
        ..StreamConfig::default()
    }
}

fn fresh_engine(ctx: &ExecCtx) -> StreamEngine {
    let catalog = stream_catalog(ctx).expect("stream catalog");
    let mut engine = StreamEngine::new(ctx, catalog, stream_config(), EngineConfig::default());
    engine
        .subscribe("q-regress", "tenant-a", &standing_query())
        .expect("subscribe");
    engine
}

/// A well-formed `papi_counters` row (node, time, four counters).
fn counter_row(t_us: i64, base: i64) -> Row {
    Row::new(vec![
        Value::str("cab0"),
        Value::Time(Timestamp::from_micros(t_us)),
        Value::Int(base),
        Value::Int(base + 1),
        Value::Int(base + 2),
        Value::Int(base + 3),
    ])
}

#[test]
fn rejected_batch_mutates_nothing() {
    let ctx = ExecCtx::local();
    let mut engine = fresh_engine(&ctx);
    for batch in disarray_schedule(Disarray::InOrder, 42, 20) {
        engine.append(&batch).expect("append");
    }
    let watermark = engine.watermark_us();
    let epoch = engine.epoch("papi_counters");
    let rows = engine.accepted_rows("papi_counters").unwrap().len();
    let counters = engine.counters();

    let t = watermark + 1_000_000;
    // Two acceptable rows followed by an arity-mismatched one: the good
    // prefix must NOT be committed when the batch is rejected.
    let short_row = Row::new(vec![
        Value::str("cab0"),
        Value::Time(Timestamp::from_micros(t)),
        Value::Int(7),
    ]);
    let bad_arity = AppendBatch {
        dataset: "papi_counters".into(),
        source: "papi@rack0".into(),
        source_clock_us: watermark + 2_000_000,
        rows: vec![counter_row(t, 1), counter_row(t + 500_000, 2), short_row],
    };
    assert!(engine.append(&bad_arity).is_err());

    // Same with a non-time value in the time column.
    let wrong_time = Row::new(vec![
        Value::str("cab0"),
        Value::Int(12345), // not a Time
        Value::Int(1),
        Value::Int(2),
        Value::Int(3),
        Value::Int(4),
    ]);
    let bad_time = AppendBatch {
        dataset: "papi_counters".into(),
        source: "papi@rack0".into(),
        source_clock_us: watermark + 2_000_000,
        rows: vec![counter_row(t, 4), wrong_time],
    };
    assert!(engine.append(&bad_time).is_err());

    assert_eq!(
        engine.accepted_rows("papi_counters").unwrap().len(),
        rows,
        "a rejected batch must not commit any prefix of its rows"
    );
    assert_eq!(engine.epoch("papi_counters"), epoch, "epoch must not bump");
    assert_eq!(
        engine.watermark_us(),
        watermark,
        "a rejected batch must not advance its source's clock"
    );
    let after = engine.counters();
    assert_eq!(after.rows_accepted, counters.rows_accepted);
    assert_eq!(after.rows_late_dropped, counters.rows_late_dropped);
    assert_eq!(after.window_re_emissions, counters.window_re_emissions);

    // The same rows, resubmitted without the bad one, commit normally —
    // and the emissions they trigger still match the cold oracle.
    let good = AppendBatch {
        dataset: "papi_counters".into(),
        source: "papi@rack0".into(),
        source_clock_us: watermark + 2_000_000,
        rows: vec![counter_row(t, 1), counter_row(t + 500_000, 2)],
    };
    let out = engine.append(&good).expect("clean batch");
    assert_eq!(out.accepted, 2);
    for e in &out.emissions {
        let (cold_cols, cold_rows) = engine.cold_window("q-regress", e.window_id).unwrap();
        assert_eq!(e.columns, cold_cols);
        assert_eq!(e.rows, cold_rows, "window {} diverged", e.window_id);
    }
}

#[test]
fn late_joining_source_cannot_regress_the_watermark() {
    let ctx = ExecCtx::local();
    let mut engine = fresh_engine(&ctx);
    for batch in disarray_schedule(Disarray::InOrder, 42, 30) {
        engine.append(&batch).expect("append");
    }
    let watermark = engine.watermark_us();
    assert!(watermark > 0, "schedule advanced no clocks");

    // A brand-new source reports with an ancient clock and an ancient
    // row. Before the monotone watermark, min-over-clocks dropped to 0,
    // late_cut regressed with it, and the row was accepted into a
    // window the sweep had already passed as final-and-emitted — which
    // was then never re-evaluated.
    let ancient = AppendBatch {
        dataset: "papi_counters".into(),
        source: "papi@late-joiner".into(),
        source_clock_us: 0,
        rows: vec![counter_row(0, 1)],
    };
    let out = engine.append(&ancient).expect("append");
    assert_eq!(
        out.watermark_us, watermark,
        "a new source's old clock must not regress the watermark"
    );
    assert_eq!(engine.watermark_us(), watermark);
    assert_eq!(
        out.accepted, 0,
        "rows older than the frozen cut are rejected"
    );
    assert_eq!(out.late_dropped, 1);
    assert!(
        out.emissions.is_empty(),
        "nothing changed, nothing re-emits: {:?}",
        out.emissions
    );

    // The late joiner participates normally from the established cut
    // onward: recent rows are accepted.
    let t = watermark - 1_000_000;
    let recent = AppendBatch {
        dataset: "papi_counters".into(),
        source: "papi@late-joiner".into(),
        source_clock_us: watermark,
        rows: vec![counter_row(t, 9)],
    };
    let out = engine.append(&recent).expect("append");
    assert_eq!(out.accepted, 1);
    for e in &out.emissions {
        let (cold_cols, cold_rows) = engine.cold_window("q-regress", e.window_id).unwrap();
        assert_eq!(e.columns, cold_cols);
        assert_eq!(e.rows, cold_rows, "window {} diverged", e.window_id);
    }
}

/// Replay one schedule and log every emission as (window id,
/// re_emission), byte-checking each against the cold oracle.
fn emission_log(stage_cache_budget: Option<u64>) -> Vec<(i64, bool)> {
    let ctx = ExecCtx::local();
    if let Some(bytes) = stage_cache_budget {
        ctx.set_cache_budget(bytes);
    }
    let mut engine = fresh_engine(&ctx);
    let mut log = Vec::new();
    for batch in disarray_schedule(Disarray::InOrder, 42, 30) {
        let out = engine.append(&batch).expect("append");
        for e in &out.emissions {
            assert!(!e.degraded, "no faults installed: {:?}", e.error);
            let (cold_cols, cold_rows) = engine.cold_window("q-regress", e.window_id).unwrap();
            assert_eq!(e.columns, cold_cols);
            assert_eq!(
                e.rows, cold_rows,
                "window {} diverged under budget {stage_cache_budget:?}",
                e.window_id
            );
            log.push((e.window_id, e.re_emission));
        }
    }
    log
}

#[test]
fn cache_pressure_does_not_change_the_emission_schedule() {
    // Unlimited budget vs. a budget so tight every cached window
    // evaluation is evicted immediately after insertion. Eviction alone
    // must never push frames: subscribers only see re-emissions when
    // late data actually dirtied a window, so the two logs are
    // identical.
    let unlimited = emission_log(None);
    let starved = emission_log(Some(1));
    assert!(!unlimited.is_empty(), "schedule emitted nothing");
    assert_eq!(
        unlimited, starved,
        "byte-budget pressure changed what subscribers were sent"
    );
}
