//! `sjrouted` — the ScrubJay shard router daemon.
//!
//! Two modes:
//!
//! - **Serve** (`--workers`): front a fleet of `sjserved` workers, each
//!   holding a catalog shard, behind one address speaking the same
//!   JSON-lines protocol. Queries whose dataset cover lives on one shard
//!   are proxied (with single-retry failover to a replica); covers that
//!   span shards are scatter-gathered and merged by the query's shared
//!   domain columns. Worker health is heartbeated, dead workers are
//!   marked down, and catalog-epoch changes flush the router's merged
//!   result cache.
//! - **Partition** (`--partition`): split a catalog directory into
//!   per-shard directories using the same consistent-hash ring the
//!   router routes with, so `sjserved --data shard-K/` workers hold
//!   exactly what the router expects.
//!
//! ```text
//! sjrouted --workers H1:P1,H2:P2,... [--addr HOST:PORT] [--threads N]
//!          [--queue N] [--timeout-ms MS] [--heartbeat-ms MS]
//!          [--probe-timeout-ms MS] [--markdown-after N] [--limit N]
//!          [--window SECS] [--step SECS]
//! sjrouted --partition OUT_DIR --data SRC_DIR --shards N [--replicas R]
//! ```

use sjcore::engine::{EngineConfig, PlannerKind};
use sjroute::{partition_dir, Router, RouterConfig};
use sjserve::scheduler::SchedulerConfig;
use sjserve::server::serve;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    workers: Vec<String>,
    addr: String,
    threads: usize,
    queue: usize,
    timeout_ms: u64,
    heartbeat_ms: u64,
    probe_timeout_ms: u64,
    markdown_after: u64,
    limit: usize,
    window_secs: f64,
    step_secs: f64,
    planner: PlannerKind,
    partition: Option<String>,
    data: String,
    shards: usize,
    replicas: usize,
}

const USAGE: &str = "\
sjrouted — ScrubJay shard router

USAGE:
  sjrouted --workers H1:P1,H2:P2,... [OPTIONS]
  sjrouted --partition OUT_DIR --data SRC_DIR --shards N [--replicas R]

SERVE OPTIONS:
  --workers LIST    comma-separated worker addresses, one per shard, in
                    shard order (shard 0 first — the order the
                    partitioner used)
  --addr HOST:PORT  listen address (default 127.0.0.1:7228; use port 0
                    to pick a free port, printed on startup)
  --threads N       concurrent route executions (default 4)
  --queue N         admission queue capacity across tenants (default 32)
  --timeout-ms MS   default per-request deadline (default 30000)
  --heartbeat-ms MS worker health-probe period (default 2000)
  --probe-timeout-ms MS
                    per-probe read timeout (default 500)
  --markdown-after N
                    consecutive failed probes/calls before a worker is
                    marked down (default 2)
  --limit N         default rows per response (default 1000)
  --window SECS     interpolation-join window W for routing-level plans;
                    must match the workers' --window (default 120)
  --step SECS       explode-continuous step; must match the workers'
                    --step (default 60)
  --planner KIND    derivation planner for routing-level plans:
                    constraint (default) or legacy; must match the
                    workers' --planner so plan fingerprints agree

PARTITION OPTIONS:
  --partition DIR   write per-shard catalog directories DIR/shard-K/
  --data DIR        source directory of <name>.csv + <name>.schema.json
  --shards N        number of shards to split into
  --replicas R      extra copies of each dataset on the next R shards in
                    ring order (default 1; 0 disables failover)

PROTOCOL:
  identical to sjserved — clients cannot tell a router from a worker
  (verbs: query | explain | stats | health | catalog | shutdown).
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workers: Vec::new(),
        addr: "127.0.0.1:7228".into(),
        threads: 4,
        queue: 32,
        timeout_ms: 30_000,
        heartbeat_ms: 2000,
        probe_timeout_ms: 500,
        markdown_after: 2,
        limit: 1000,
        window_secs: 120.0,
        step_secs: 60.0,
        planner: PlannerKind::default(),
        partition: None,
        data: String::new(),
        shards: 0,
        replicas: 1,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("bad {name}: {e}"))
        }
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--addr" => args.addr = value("--addr")?,
            "--threads" => args.threads = num("--threads", value("--threads")?)?,
            "--queue" => args.queue = num("--queue", value("--queue")?)?,
            "--timeout-ms" => args.timeout_ms = num("--timeout-ms", value("--timeout-ms")?)?,
            "--heartbeat-ms" => {
                args.heartbeat_ms = num("--heartbeat-ms", value("--heartbeat-ms")?)?
            }
            "--probe-timeout-ms" => {
                args.probe_timeout_ms = num("--probe-timeout-ms", value("--probe-timeout-ms")?)?
            }
            "--markdown-after" => {
                args.markdown_after = num("--markdown-after", value("--markdown-after")?)?
            }
            "--limit" => args.limit = num("--limit", value("--limit")?)?,
            "--window" => args.window_secs = num("--window", value("--window")?)?,
            "--step" => args.step_secs = num("--step", value("--step")?)?,
            "--planner" => {
                args.planner = match value("--planner")?.as_str() {
                    "constraint" => PlannerKind::Constraint,
                    "legacy" => PlannerKind::Legacy,
                    other => return Err(format!("bad --planner: `{other}` (constraint|legacy)")),
                }
            }
            "--partition" => args.partition = Some(value("--partition")?),
            "--data" => args.data = value("--data")?,
            "--shards" => args.shards = num("--shards", value("--shards")?)?,
            "--replicas" => args.replicas = num("--replicas", value("--replicas")?)?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if let Some(_out) = &args.partition {
        if args.data.is_empty() {
            return Err("--partition requires --data SRC_DIR".into());
        }
        if args.shards == 0 {
            return Err("--partition requires --shards N (at least 1)".into());
        }
        return Ok(args);
    }
    if args.workers.is_empty() {
        return Err("--workers (or --partition) is required".into());
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if args.heartbeat_ms == 0 {
        return Err("--heartbeat-ms must be at least 1".into());
    }
    Ok(args)
}

fn run_partition(args: &Args, out: &str) -> Result<(), String> {
    let dirs = partition_dir(&args.data, out, args.shards, args.replicas)
        .map_err(|e| format!("partition {}: {e}", args.data))?;
    for (i, dir) in dirs.iter().enumerate() {
        eprintln!(
            "shard-{i}: {} dataset(s) -> {}",
            dir.datasets.len(),
            dir.path.display()
        );
        for name in &dir.datasets {
            eprintln!("  {name}");
        }
    }
    println!("{out}");
    Ok(())
}

fn run_serve(args: &Args) -> Result<(), String> {
    let config = RouterConfig {
        scheduler: SchedulerConfig {
            workers: args.threads,
            max_queue: args.queue,
            default_timeout: Duration::from_millis(args.timeout_ms),
        },
        engine: EngineConfig {
            interp_window_secs: args.window_secs,
            explode_step_secs: args.step_secs,
            planner: args.planner,
            ..EngineConfig::default()
        },
        default_limit: args.limit,
        heartbeat: Duration::from_millis(args.heartbeat_ms),
        probe_timeout: Duration::from_millis(args.probe_timeout_ms),
        markdown_after: args.markdown_after,
        ..RouterConfig::default()
    };
    let router = Router::new(args.workers.clone(), config)?;
    eprintln!(
        "Fronting {} worker(s); {} dataset(s) plannable",
        args.workers.len(),
        router.topology().all_datasets().len()
    );
    let handle = serve(router, &args.addr).map_err(|e| e.to_string())?;
    eprintln!("sjrouted listening on {}", handle.addr);
    let report = handle.wait();
    eprintln!("--- final router metrics ---\n{}", report.render());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => {
            let result = match args.partition.clone() {
                Some(out) => run_partition(&args, &out),
                None => run_serve(&args),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_serve_command_line() {
        let args = parse_args(&argv(
            "--workers 127.0.0.1:7227,127.0.0.1:7229 --addr 0.0.0.0:9000 \
             --threads 8 --queue 64 --timeout-ms 5000 --heartbeat-ms 500 \
             --probe-timeout-ms 200 --markdown-after 3 --limit 50",
        ))
        .unwrap();
        assert_eq!(args.workers, vec!["127.0.0.1:7227", "127.0.0.1:7229"]);
        assert_eq!(args.addr, "0.0.0.0:9000");
        assert_eq!(args.threads, 8);
        assert_eq!(args.queue, 64);
        assert_eq!(args.timeout_ms, 5000);
        assert_eq!(args.heartbeat_ms, 500);
        assert_eq!(args.probe_timeout_ms, 200);
        assert_eq!(args.markdown_after, 3);
        assert_eq!(args.limit, 50);
        assert!(args.partition.is_none());
    }

    #[test]
    fn parses_a_partition_command_line() {
        let args = parse_args(&argv(
            "--partition /tmp/shards --data /tmp/catalog --shards 3 --replicas 2",
        ))
        .unwrap();
        assert_eq!(args.partition.as_deref(), Some("/tmp/shards"));
        assert_eq!(args.data, "/tmp/catalog");
        assert_eq!(args.shards, 3);
        assert_eq!(args.replicas, 2);
    }

    #[test]
    fn partition_requires_source_and_shard_count() {
        assert!(parse_args(&argv("--partition /tmp/out")).is_err());
        assert!(parse_args(&argv("--partition /tmp/out --data d")).is_err());
        assert!(parse_args(&argv("--partition /tmp/out --data d --shards 0")).is_err());
        assert!(parse_args(&argv("--partition /tmp/out --data d --shards 2")).is_ok());
    }

    #[test]
    fn parses_planner_selection() {
        assert_eq!(
            parse_args(&argv("--workers a:1")).unwrap().planner,
            PlannerKind::Constraint
        );
        assert_eq!(
            parse_args(&argv("--workers a:1 --planner legacy"))
                .unwrap()
                .planner,
            PlannerKind::Legacy
        );
        assert!(parse_args(&argv("--workers a:1 --planner greedy")).is_err());
    }

    #[test]
    fn serve_requires_workers_and_sane_knobs() {
        assert!(parse_args(&argv("--addr :0")).is_err());
        assert!(parse_args(&argv("--workers a:1 --threads 0")).is_err());
        assert!(parse_args(&argv("--workers a:1 --heartbeat-ms 0")).is_err());
        assert!(parse_args(&argv("--workers a:1,b:2")).is_ok());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_numbers() {
        assert!(parse_args(&argv("--workers a:1 --frobnicate")).is_err());
        assert!(parse_args(&argv("--workers a:1 --threads many")).is_err());
        assert!(parse_args(&argv("--workers")).is_err());
    }
}
