//! `sjserved` — the ScrubJay query service daemon.
//!
//! Loads a catalog directory once at startup, then serves the JSON-lines
//! protocol over TCP until a `shutdown` request (or SIGINT via process
//! kill) arrives. See `crates/sjserve` for the protocol and the
//! scheduling model.
//!
//! ```text
//! sjserved --data DIR [--addr HOST:PORT] [--workers N] [--queue N]
//!          [--timeout-ms MS] [--window SECS] [--step SECS]
//!          [--cache-mb MB] [--limit N] [--retries N]
//!          [--chaos-seed SEED] [--chaos-fail-rate P]
//!          [--trace-dir DIR] [--trace-slow-ms MS]
//! ```

use scrubjay::catalog_io::load_catalog_dir;
use scrubjay::prelude::*;
use sjcore::engine::{EngineConfig, PlannerKind};
use sjserve::{serve_until_shutdown, QueryService, SchedulerConfig, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    data: String,
    addr: String,
    workers: usize,
    queue: usize,
    timeout_ms: u64,
    window_secs: f64,
    step_secs: f64,
    cache_mb: usize,
    stage_cache_mb: u64,
    limit: usize,
    retries: u32,
    chaos_seed: Option<u64>,
    chaos_fail_rate: f64,
    trace_dir: Option<String>,
    trace_slow_ms: u64,
    shard_id: Option<String>,
    planner: PlannerKind,
    stream_window_secs: f64,
    allowed_lateness_secs: f64,
    stream_horizon_secs: f64,
    idle_source_timeout_secs: f64,
    max_subscriptions: usize,
}

const USAGE: &str = "\
sjserved — ScrubJay query service

USAGE:
  sjserved --data DIR [OPTIONS]

OPTIONS:
  --data DIR        directory of <name>.csv + <name>.schema.json pairs
  --addr HOST:PORT  listen address (default 127.0.0.1:7227; use port 0
                    to pick a free port, printed on startup)
  --workers N       concurrent query executions (default 4)
  --queue N         admission queue capacity; requests beyond it are
                    rejected with a structured error (default 32)
  --timeout-ms MS   default per-request deadline (default 30000)
  --window SECS     interpolation-join window W (default 120)
  --step SECS       explode-continuous step (default 60)
  --cache-mb MB     result-cache byte budget (default 64)
  --stage-cache-mb MB
                    persisted-partition stage-cache budget (default 256)
  --limit N         default rows per response (default 1000)
  --retries N       task attempts before a query degrades (default 3;
                    1 restores fail-fast execution)
  --chaos-seed SEED install a deterministic fault-injection plan seeded
                    with SEED (testing only): task attempts fail at
                    --chaos-fail-rate and are retried per --retries;
                    queries that exhaust the budget answer `degraded`
                    while the daemon stays up
  --chaos-fail-rate P
                    probability an attempt is killed under --chaos-seed
                    (default 0.2)
  --trace-dir DIR   enable span tracing and persist a Chrome trace
                    (<query_id>.trace.json, loadable in Perfetto or
                    chrome://tracing) for every degraded/failed or slow
                    query
  --trace-slow-ms MS
                    latency at which a query counts as slow for
                    --trace-dir persistence (default 1000)
  --shard-id NAME   label this worker's catalog shard; reported in
                    health responses so a router (sjrouted) and humans
                    can tell shards apart
  --planner KIND    derivation planner: constraint (default) or legacy;
                    both produce identical plans — legacy exists as an
                    escape hatch and parity reference
  --stream-window SECS
                    tumbling-window width for standing queries
                    (default 60)
  --allowed-lateness SECS
                    how far behind the watermark appended rows may
                    arrive and still be accepted; bounds window
                    re-emission (default 120)
  --stream-horizon SECS
                    event-time slack evaluated around each window so
                    rate lookback and interpolation see their
                    neighbors; must cover --window plus the slowest
                    source cadence (default 300)
  --idle-source-timeout SECS
                    a source whose clock lags the leading source by
                    more than this stops pinning the watermark until
                    it catches up, so one silent source cannot freeze
                    window finality (default 0 = disabled)
  --max-subscriptions N
                    standing queries one tenant may hold at once
                    (default 8)

PROTOCOL:
  newline-delimited JSON requests, one response line per request:
    {\"id\":\"1\",\"verb\":\"query\",\"query\":{\"domains\":[\"job\",\"time\"],
     \"values\":[{\"dimension\":\"heat\"}]}}
  verbs: query | explain | append | stats | health | shutdown
  a `query` with \"subscribe\":true registers a standing query: window
  frames are pushed on the same connection as `append` batches arrive
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        data: String::new(),
        addr: "127.0.0.1:7227".into(),
        workers: 4,
        queue: 32,
        timeout_ms: 30_000,
        window_secs: 120.0,
        step_secs: 60.0,
        cache_mb: 64,
        stage_cache_mb: 256,
        limit: 1000,
        retries: 3,
        chaos_seed: None,
        chaos_fail_rate: 0.2,
        trace_dir: None,
        trace_slow_ms: 1000,
        shard_id: None,
        planner: PlannerKind::default(),
        stream_window_secs: 60.0,
        allowed_lateness_secs: 120.0,
        stream_horizon_secs: 300.0,
        idle_source_timeout_secs: 0.0,
        max_subscriptions: 8,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("bad {name}: {e}"))
        }
        match flag.as_str() {
            "--data" => args.data = value("--data")?,
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = num("--workers", value("--workers")?)?,
            "--queue" => args.queue = num("--queue", value("--queue")?)?,
            "--timeout-ms" => args.timeout_ms = num("--timeout-ms", value("--timeout-ms")?)?,
            "--window" => args.window_secs = num("--window", value("--window")?)?,
            "--step" => args.step_secs = num("--step", value("--step")?)?,
            "--cache-mb" => args.cache_mb = num("--cache-mb", value("--cache-mb")?)?,
            "--stage-cache-mb" => {
                args.stage_cache_mb = num("--stage-cache-mb", value("--stage-cache-mb")?)?
            }
            "--limit" => args.limit = num("--limit", value("--limit")?)?,
            "--retries" => args.retries = num("--retries", value("--retries")?)?,
            "--chaos-seed" => args.chaos_seed = Some(num("--chaos-seed", value("--chaos-seed")?)?),
            "--chaos-fail-rate" => {
                args.chaos_fail_rate = num("--chaos-fail-rate", value("--chaos-fail-rate")?)?
            }
            "--trace-dir" => args.trace_dir = Some(value("--trace-dir")?),
            "--trace-slow-ms" => {
                args.trace_slow_ms = num("--trace-slow-ms", value("--trace-slow-ms")?)?
            }
            "--shard-id" => args.shard_id = Some(value("--shard-id")?),
            "--planner" => {
                args.planner = match value("--planner")?.as_str() {
                    "constraint" => PlannerKind::Constraint,
                    "legacy" => PlannerKind::Legacy,
                    other => return Err(format!("bad --planner: `{other}` (constraint|legacy)")),
                }
            }
            "--stream-window" => {
                args.stream_window_secs = num("--stream-window", value("--stream-window")?)?
            }
            "--allowed-lateness" => {
                args.allowed_lateness_secs =
                    num("--allowed-lateness", value("--allowed-lateness")?)?
            }
            "--stream-horizon" => {
                args.stream_horizon_secs = num("--stream-horizon", value("--stream-horizon")?)?
            }
            "--idle-source-timeout" => {
                args.idle_source_timeout_secs =
                    num("--idle-source-timeout", value("--idle-source-timeout")?)?
            }
            "--max-subscriptions" => {
                args.max_subscriptions = num("--max-subscriptions", value("--max-subscriptions")?)?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.data.is_empty() {
        return Err("--data is required".into());
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.retries == 0 {
        return Err("--retries must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&args.chaos_fail_rate) {
        return Err("--chaos-fail-rate must be within [0, 1]".into());
    }
    // `contains` keeps NaN rejected (a bare `<=` would wave it through).
    if !(f64::MIN_POSITIVE..).contains(&args.stream_window_secs)
        || args.allowed_lateness_secs < 0.0
        || args.stream_horizon_secs < 0.0
        || !(0.0..).contains(&args.idle_source_timeout_secs)
    {
        return Err(
            "--stream-window must be positive; lateness/horizon/idle-timeout non-negative".into(),
        );
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let ctx = ExecCtx::local();
    let catalog = load_catalog_dir(&ctx, &args.data).map_err(|e| e.to_string())?;
    eprintln!("Loaded datasets: {:?}", catalog.dataset_names());

    let config = ServiceConfig {
        scheduler: SchedulerConfig {
            workers: args.workers,
            max_queue: args.queue,
            default_timeout: Duration::from_millis(args.timeout_ms),
        },
        result_cache_bytes: args.cache_mb << 20,
        stage_cache_bytes: args.stage_cache_mb << 20,
        default_limit: args.limit,
        engine: EngineConfig {
            interp_window_secs: args.window_secs,
            explode_step_secs: args.step_secs,
            planner: args.planner,
            ..EngineConfig::default()
        },
        retry: Some(sjdf::RetryPolicy::retries(args.retries)),
        faults: args.chaos_seed.map(|seed| {
            eprintln!(
                "CHAOS: injecting task faults (seed {seed}, rate {}, {} attempts)",
                args.chaos_fail_rate, args.retries
            );
            sjdf::FaultPlan::seeded(seed).with_task_fail_rate(args.chaos_fail_rate)
        }),
        trace_dir: args.trace_dir.as_ref().map(|d| {
            eprintln!(
                "TRACE: persisting degraded/slow (>={}ms) query traces to {d}",
                args.trace_slow_ms
            );
            std::path::PathBuf::from(d)
        }),
        trace_slow_ms: args.trace_slow_ms,
        shard_id: args.shard_id.clone(),
        stream: sjstream::StreamConfig {
            window_secs: args.stream_window_secs,
            allowed_lateness_secs: args.allowed_lateness_secs,
            horizon_secs: args.stream_horizon_secs,
            eval_parts: 1,
            idle_source_timeout_secs: args.idle_source_timeout_secs,
        },
        max_subscriptions_per_tenant: args.max_subscriptions,
    };
    let service = QueryService::new(ctx, catalog, config);
    serve_until_shutdown(service, &args.addr).map_err(|e| e.to_string())?;
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let args = parse_args(&argv(
            "--data /tmp/x --addr 0.0.0.0:9000 --workers 8 --queue 64 \
             --timeout-ms 5000 --window 300 --step 30 --cache-mb 128 --limit 50",
        ))
        .unwrap();
        assert_eq!(args.data, "/tmp/x");
        assert_eq!(args.addr, "0.0.0.0:9000");
        assert_eq!(args.workers, 8);
        assert_eq!(args.queue, 64);
        assert_eq!(args.timeout_ms, 5000);
        assert_eq!(args.window_secs, 300.0);
        assert_eq!(args.step_secs, 30.0);
        assert_eq!(args.cache_mb, 128);
        assert_eq!(args.limit, 50);
        assert_eq!(args.retries, 3);
        assert_eq!(args.chaos_seed, None);
    }

    #[test]
    fn parses_chaos_flags() {
        let args = parse_args(&argv(
            "--data d --retries 5 --chaos-seed 42 --chaos-fail-rate 0.3",
        ))
        .unwrap();
        assert_eq!(args.retries, 5);
        assert_eq!(args.chaos_seed, Some(42));
        assert_eq!(args.chaos_fail_rate, 0.3);
    }

    #[test]
    fn parses_trace_flags() {
        let args = parse_args(&argv(
            "--data d --trace-dir /tmp/traces --trace-slow-ms 250",
        ))
        .unwrap();
        assert_eq!(args.trace_dir.as_deref(), Some("/tmp/traces"));
        assert_eq!(args.trace_slow_ms, 250);
        let defaults = parse_args(&argv("--data d")).unwrap();
        assert_eq!(defaults.trace_dir, None);
        assert_eq!(defaults.trace_slow_ms, 1000);
        assert!(parse_args(&argv("--data d --trace-slow-ms fast")).is_err());
    }

    #[test]
    fn parses_shard_id() {
        let args = parse_args(&argv("--data d --shard-id shard-a")).unwrap();
        assert_eq!(args.shard_id.as_deref(), Some("shard-a"));
        assert_eq!(parse_args(&argv("--data d")).unwrap().shard_id, None);
        assert!(parse_args(&argv("--data d --shard-id")).is_err());
    }

    #[test]
    fn parses_planner_selection() {
        assert_eq!(
            parse_args(&argv("--data d")).unwrap().planner,
            PlannerKind::Constraint
        );
        assert_eq!(
            parse_args(&argv("--data d --planner legacy"))
                .unwrap()
                .planner,
            PlannerKind::Legacy
        );
        assert_eq!(
            parse_args(&argv("--data d --planner constraint"))
                .unwrap()
                .planner,
            PlannerKind::Constraint
        );
        assert!(parse_args(&argv("--data d --planner greedy")).is_err());
        assert!(parse_args(&argv("--data d --planner")).is_err());
    }

    #[test]
    fn parses_stream_flags() {
        let args = parse_args(&argv(
            "--data d --stream-window 30 --allowed-lateness 90 \
             --stream-horizon 240 --max-subscriptions 2",
        ))
        .unwrap();
        assert_eq!(args.stream_window_secs, 30.0);
        assert_eq!(args.allowed_lateness_secs, 90.0);
        assert_eq!(args.stream_horizon_secs, 240.0);
        assert_eq!(args.max_subscriptions, 2);
        let idle = parse_args(&argv("--data d --idle-source-timeout 45")).unwrap();
        assert_eq!(idle.idle_source_timeout_secs, 45.0);
        assert!(parse_args(&argv("--data d --idle-source-timeout -1")).is_err());
        assert!(parse_args(&argv("--data d --idle-source-timeout nan")).is_err());
        let defaults = parse_args(&argv("--data d")).unwrap();
        assert_eq!(defaults.stream_window_secs, 60.0);
        assert_eq!(defaults.max_subscriptions, 8);
        assert!(parse_args(&argv("--data d --stream-window 0")).is_err());
        assert!(parse_args(&argv("--data d --allowed-lateness -1")).is_err());
    }

    #[test]
    fn rejects_bad_chaos_flags() {
        assert!(parse_args(&argv("--data d --retries 0")).is_err());
        assert!(parse_args(&argv("--data d --chaos-fail-rate 1.5")).is_err());
        assert!(parse_args(&argv("--data d --chaos-seed nope")).is_err());
    }

    #[test]
    fn requires_data_and_sane_workers() {
        assert!(parse_args(&argv("--addr :0")).is_err());
        assert!(parse_args(&argv("--data d --workers 0")).is_err());
        assert!(parse_args(&argv("--data d")).is_ok());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_numbers() {
        assert!(parse_args(&argv("--data d --frobnicate")).is_err());
        assert!(parse_args(&argv("--data d --workers many")).is_err());
        assert!(parse_args(&argv("--data d --timeout-ms -5")).is_err());
    }
}
