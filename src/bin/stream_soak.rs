//! `stream_soak`: end-to-end streaming soak harness against a real
//! `sjserved` process.
//!
//! The harness stands up a worker over a header-only CSV catalog (the
//! stream *is* the data), registers the standing derive-rate +
//! interpolation-join query from several subscriber connections, and
//! replays a seeded disarray schedule through the `append` verb for a
//! bounded wall-clock duration. Every pushed window frame is checked
//! against a **shadow** [`sjstream::StreamEngine`] fed the exact same
//! batches in-process:
//!
//! * frame schedules must agree — same window ids, watermarks, and
//!   re-emission flags, in the same order, on every subscriber;
//! * every non-degraded frame must be **byte-identical** to the shadow
//!   emission (the tentpole equivalence guarantee, measured over TCP);
//! * a frame that fails to arrive within the read timeout is a hang —
//!   the soak exits nonzero rather than waiting forever.
//!
//! With `--chaos-seed` the spawned worker runs under its deterministic
//! fault plan: frames may arrive degraded (structured error, no
//! payload comparison) but the schedule invariants still hold.
//!
//! A machine-readable report lands in `--artifacts DIR/soak-report.json`
//! for CI upload. Exit code 0 = clean soak, 1 = invariant violation or
//! hang, 2 = usage error.

use scrubjay::catalog_io::write_schema_sidecar;
use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::ExecCtx;
use sjserve::{Client, QuerySpec, ValueSpec};
use sjstream::{StreamConfig, StreamEngine};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "\
stream_soak: streaming soak harness against a spawned sjserved

USAGE:
  stream_soak --serverd PATH [OPTIONS]

OPTIONS:
  --serverd PATH    path to the sjserved binary to spawn (required)
  --duration SECS   wall-clock soak bound (default 60)
  --subscribers N   standing-query connections (default 3)
  --seed N          disarray schedule seed (default 42)
  --disarray KIND   in_order | clock_skew | late_duplicates |
                    counter_wrap | rack_skew (default late_duplicates)
  --steps N         schedule length in 10s event-time steps (default 4000)
  --chaos-seed N    run the worker under its deterministic fault plan
  --chaos-fail-rate P  attempt kill probability under --chaos-seed (default 0.1)
  --artifacts DIR   where soak-report.json and the worker log land
                    (default: the temp catalog dir)
";

struct Args {
    serverd: String,
    duration_secs: u64,
    subscribers: usize,
    seed: u64,
    disarray: Disarray,
    steps: usize,
    chaos_seed: Option<u64>,
    chaos_fail_rate: f64,
    artifacts: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        serverd: String::new(),
        duration_secs: 60,
        subscribers: 3,
        seed: 42,
        disarray: Disarray::LateDuplicates,
        steps: 4000,
        chaos_seed: None,
        chaos_fail_rate: 0.1,
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--serverd" => args.serverd = value("--serverd")?,
            "--duration" => {
                args.duration_secs = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--subscribers" => {
                args.subscribers = value("--subscribers")?
                    .parse()
                    .map_err(|e| format!("--subscribers: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--disarray" => {
                let kind = value("--disarray")?;
                args.disarray = *Disarray::ALL
                    .iter()
                    .find(|k| k.name() == kind)
                    .ok_or(format!("unknown disarray kind `{kind}`"))?;
            }
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    value("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                )
            }
            "--chaos-fail-rate" => {
                args.chaos_fail_rate = value("--chaos-fail-rate")?
                    .parse()
                    .map_err(|e| format!("--chaos-fail-rate: {e}"))?
            }
            "--artifacts" => args.artifacts = Some(value("--artifacts")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.serverd.is_empty() {
        return Err("--serverd is required".into());
    }
    if args.subscribers == 0 {
        return Err("--subscribers must be positive".into());
    }
    Ok(args)
}

fn joined_spec() -> QuerySpec {
    QuerySpec {
        domains: vec!["compute-node".into(), "time".into()],
        values: vec![
            ValueSpec::with_units("instructions", "instructions-per-ms"),
            ValueSpec::dim("temperature"),
        ],
        window_secs: None,
        step_secs: None,
        limit: None,
    }
}

/// Write the stream catalog as header-only CSVs + schema sidecars: the
/// datasets the worker registers are empty, and the soak's appends are
/// the only data.
fn write_catalog_dir(dir: &std::path::Path) -> Result<(), String> {
    let ctx = ExecCtx::local();
    let catalog = stream_catalog(&ctx).map_err(|e| e.to_string())?;
    for name in ["papi_counters", "coolant"] {
        let ds = catalog.dataset(name).map_err(|e| e.to_string())?;
        let schema = ds.schema();
        let header: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
        let csv_path = dir.join(format!("{name}.csv"));
        std::fs::write(&csv_path, format!("{}\n", header.join(",")))
            .map_err(|e| format!("{}: {e}", csv_path.display()))?;
        write_schema_sidecar(schema, &csv_path).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Spawn the worker and block until its stderr banner reveals the bound
/// address (it binds port 0). The log keeps streaming into `log_path`;
/// slow or degraded request traces land under `trace_dir` for upload.
fn spawn_worker(
    args: &Args,
    data_dir: &str,
    log_path: &str,
    trace_dir: &str,
) -> Result<(Child, String), String> {
    let mut cmd = Command::new(&args.serverd);
    cmd.arg("--data")
        .arg(data_dir)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--trace-dir")
        .arg(trace_dir)
        .arg("--trace-slow-ms")
        .arg("250")
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if let Some(seed) = args.chaos_seed {
        cmd.arg("--chaos-seed")
            .arg(seed.to_string())
            .arg("--chaos-fail-rate")
            .arg(args.chaos_fail_rate.to_string());
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", args.serverd))?;
    let stderr = child.stderr.take().expect("piped stderr");
    let log = std::fs::File::create(log_path).map_err(|e| format!("{log_path}: {e}"))?;
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::Write;
        let mut log = log;
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            let _ = writeln!(log, "{line}");
            if let Some(addr) = line.strip_prefix("sjserved listening on ") {
                let _ = tx.send(addr.trim().to_string());
            }
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .map_err(|_| "worker never announced its address (see worker log)".to_string())?;
    Ok((child, addr))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let dir = std::env::temp_dir().join(format!("sj-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let artifacts = args
        .artifacts
        .clone()
        .unwrap_or_else(|| dir.display().to_string());
    std::fs::create_dir_all(&artifacts).map_err(|e| e.to_string())?;
    write_catalog_dir(&dir)?;

    let log_path = format!("{artifacts}/soak-worker.log");
    let trace_dir = format!("{artifacts}/traces");
    std::fs::create_dir_all(&trace_dir).map_err(|e| e.to_string())?;
    let (mut child, addr) = spawn_worker(&args, &dir.display().to_string(), &log_path, &trace_dir)?;
    let result = soak(&args, &addr, &artifacts);
    let _ = child.kill();
    let _ = child.wait();
    result
}

fn soak(args: &Args, addr: &str, artifacts: &str) -> Result<(), String> {
    let read_timeout = Duration::from_secs(30);
    let mut subscribers = Vec::new();
    for i in 0..args.subscribers {
        let mut sub = Client::connect_as(addr, &format!("soak-sub-{i}"))
            .map_err(|e| format!("connect subscriber {i}: {e}"))?;
        sub.set_read_timeout(Some(read_timeout))
            .map_err(|e| e.to_string())?;
        let ack = sub
            .subscribe(joined_spec())
            .map_err(|e| format!("subscribe {i}: {e}"))?;
        let sub_id = ack
            .subscription
            .ok_or("subscribe ack without subscription body")?
            .query_id;
        subscribers.push((sub, sub_id));
    }
    let mut appender =
        Client::connect_as(addr, "soak-ingest").map_err(|e| format!("connect appender: {e}"))?;
    appender
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| e.to_string())?;

    // The shadow engine: same catalog, same stream policy, same standing
    // query, fed the same batches in-process. Its emissions are the
    // reference every subscriber's frames are checked against.
    let ctx = ExecCtx::local();
    let catalog = stream_catalog(&ctx).map_err(|e| e.to_string())?;
    let mut shadow = StreamEngine::new(
        &ctx,
        catalog,
        StreamConfig::default(),
        sjcore::engine::EngineConfig::default(),
    );
    let shadow_query = {
        let spec = joined_spec();
        sjcore::engine::Query {
            domains: spec.domains.clone(),
            values: spec
                .values
                .iter()
                .map(|v| match &v.units {
                    Some(u) => sjcore::engine::QueryValue::with_units(&v.dimension, u),
                    None => sjcore::engine::QueryValue::dim(&v.dimension),
                })
                .collect(),
        }
    };
    shadow
        .subscribe("q-shadow", "soak", &shadow_query)
        .map_err(|e| e.to_string())?;

    let schedule = disarray_schedule(args.disarray, args.seed, args.steps);
    let deadline = Instant::now() + Duration::from_secs(args.duration_secs);
    let started = Instant::now();
    let mut appended = 0usize;
    let mut frames_checked = 0usize;
    let mut degraded_frames = 0usize;
    let nbatches = schedule.len();

    for batch in &schedule {
        if Instant::now() >= deadline {
            break;
        }
        let response = appender
            .append(batch.clone())
            .map_err(|e| format!("append {appended}: {e}"))?;
        let ack = response.append.ok_or("append ack without body")?;
        let expected = shadow.append(batch).map_err(|e| e.to_string())?;
        if !expected.failures.is_empty() {
            return Err(format!(
                "shadow tore down its subscription: {:?}",
                expected.failures
            ));
        }
        let per_sub = expected.emissions.len();
        if ack.windows_emitted != per_sub * args.subscribers {
            return Err(format!(
                "append {appended}: worker emitted {} frames, shadow expects {} per \
                 subscriber x {}",
                ack.windows_emitted, per_sub, args.subscribers
            ));
        }
        for (sub, sub_id) in subscribers.iter_mut() {
            for (j, want) in expected.emissions.iter().enumerate() {
                let frame = sub.next_frame().map_err(|e| {
                    format!("append {appended}: subscriber {sub_id} frame {j}: hang or error: {e}")
                })?;
                if frame.query_id.as_deref() != Some(sub_id.as_str()) {
                    return Err(format!(
                        "append {appended}: frame for {:?} arrived on {sub_id}",
                        frame.query_id
                    ));
                }
                let got = frame
                    .window
                    .ok_or_else(|| format!("append {appended}: frame without window"))?;
                if (got.window_id, got.watermark_us, got.re_emission)
                    != (want.window_id, want.watermark_us, want.re_emission)
                {
                    return Err(format!(
                        "append {appended}: {sub_id} window identity diverged: got \
                         w{} wm={} re={}, want w{} wm={} re={}",
                        got.window_id,
                        got.watermark_us,
                        got.re_emission,
                        want.window_id,
                        want.watermark_us,
                        want.re_emission
                    ));
                }
                if got.degraded {
                    degraded_frames += 1;
                    if args.chaos_seed.is_none() {
                        return Err(format!(
                            "append {appended}: degraded frame without chaos: {:?}",
                            got.error
                        ));
                    }
                } else if got.columns != want.columns || got.rows != want.rows {
                    return Err(format!(
                        "append {appended}: {sub_id} window {} bytes diverged from shadow",
                        got.window_id
                    ));
                }
                frames_checked += 1;
            }
        }
        appended += 1;
    }

    let stats = appender
        .stats()
        .map_err(|e| format!("final stats: {e}"))?
        .stats
        .ok_or("stats response without body")?;
    let streaming = stats
        .streaming
        .as_ref()
        .ok_or("worker stats carry no streaming section")?;
    if streaming.subscriptions_active != args.subscribers as u64 {
        return Err(format!(
            "worker reports {} active subscriptions, soak holds {}",
            streaming.subscriptions_active, args.subscribers
        ));
    }

    let elapsed = started.elapsed().as_secs_f64();
    let report = format!(
        "{{\n  \"harness\": \"stream_soak\",\n  \"disarray\": \"{}\",\n  \"seed\": {},\n  \
         \"chaos_seed\": {},\n  \"subscribers\": {},\n  \"appends\": {appended},\n  \
         \"schedule_batches\": {nbatches},\n  \"frames_checked\": {frames_checked},\n  \
         \"degraded_frames\": {degraded_frames},\n  \"elapsed_secs\": {elapsed:.1},\n  \
         \"worker_appends\": {},\n  \"worker_rows_accepted\": {},\n  \
         \"worker_window_emissions\": {},\n  \"worker_window_re_emissions\": {},\n  \
         \"worker_incremental_recomputes\": {},\n  \"verdict\": \"pass\"\n}}\n",
        args.disarray.name(),
        args.seed,
        args.chaos_seed
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".into()),
        args.subscribers,
        streaming.appends,
        streaming.rows_accepted,
        streaming.window_emissions,
        streaming.window_re_emissions,
        streaming.incremental_recomputes,
    );
    let report_path = format!("{artifacts}/soak-report.json");
    std::fs::write(&report_path, &report).map_err(|e| format!("{report_path}: {e}"))?;
    println!(
        "stream_soak: {appended}/{nbatches} appends, {frames_checked} frames checked \
         ({degraded_frames} degraded) across {} subscribers in {elapsed:.1}s -> {report_path}",
        args.subscribers
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stream_soak: {e}");
            if e.contains("needs a value") || e.contains("unknown flag") || e.contains("required") {
                eprint!("{USAGE}");
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
