//! `sjq` — the ScrubJay query command-line tool.
//!
//! Loads a directory of annotated CSV datasets (see
//! [`scrubjay::catalog_io`]), solves a dimension-level query with the
//! derivation engine, and prints the plan and/or the derived dataset.
//!
//! ```text
//! sjq --data DIR --domains job,rack --values application,heat
//!     [--units heat=delta-celsius] [--plan-only] [--window SECS]
//!     [--step SECS] [--out FILE.csv] [--limit N]
//! ```

use scrubjay::catalog_io::load_catalog_dir;
use scrubjay::prelude::*;
use sjcore::engine::EngineConfig;
use sjcore::wrappers::{unwrap_csv, write_csv_file};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    data: String,
    domains: Vec<String>,
    values: Vec<String>,
    units: HashMap<String, String>,
    plan_only: bool,
    window_secs: f64,
    step_secs: f64,
    out: Option<String>,
    limit: usize,
}

const USAGE: &str = "\
sjq — ScrubJay query tool

USAGE:
  sjq --data DIR --domains D1,D2 --values V1,V2 [OPTIONS]

OPTIONS:
  --data DIR        directory of <name>.csv + <name>.schema.json pairs
  --domains LIST    comma-separated domain dimensions of interest
  --values LIST     comma-separated value dimensions of interest
  --units V=U,...   units constraints for value dimensions
  --plan-only       print the derivation sequence without executing it
  --window SECS     interpolation-join window W (default 120)
  --step SECS       explode-continuous step (default 60)
  --out FILE        write the derived dataset to FILE as CSV
  --limit N         rows to print when no --out is given (default 20)
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        data: String::new(),
        domains: Vec::new(),
        values: Vec::new(),
        units: HashMap::new(),
        plan_only: false,
        window_secs: 120.0,
        step_secs: 60.0,
        out: None,
        limit: 20,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--data" => args.data = value("--data")?,
            "--domains" => {
                args.domains = value("--domains")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--values" => {
                args.values = value("--values")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--units" => {
                for pair in value("--units")?.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad --units entry `{pair}` (want dim=units)"))?;
                    args.units.insert(k.trim().to_string(), v.trim().to_string());
                }
            }
            "--plan-only" => args.plan_only = true,
            "--window" => {
                args.window_secs = value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?
            }
            "--step" => {
                args.step_secs = value("--step")?
                    .parse()
                    .map_err(|e| format!("bad --step: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--limit" => {
                args.limit = value("--limit")?
                    .parse()
                    .map_err(|e| format!("bad --limit: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.data.is_empty() {
        return Err("--data is required".into());
    }
    if args.domains.is_empty() || args.values.is_empty() {
        return Err("--domains and --values are required".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let ctx = ExecCtx::local();
    let catalog = load_catalog_dir(&ctx, &args.data).map_err(|e| e.to_string())?;
    eprintln!("Loaded datasets: {:?}", catalog.dataset_names());

    let values: Vec<QueryValue> = args
        .values
        .iter()
        .map(|v| match args.units.get(v) {
            Some(u) => QueryValue::with_units(v, u),
            None => QueryValue::dim(v),
        })
        .collect();
    let query = Query {
        domains: args.domains.clone(),
        values,
    };

    let engine = QueryEngine::with_config(
        &catalog,
        EngineConfig {
            interp_window_secs: args.window_secs,
            explode_step_secs: args.step_secs,
            ..EngineConfig::default()
        },
    );
    let plan = engine.solve(&query).map_err(|e| e.to_string())?;
    eprintln!("\nQuery: {}", query.describe());
    eprintln!("\nDerivation sequence:\n{}", plan.describe());
    eprintln!("Reproducible plan JSON follows on stdout when --plan-only.\n");
    if args.plan_only {
        println!("{}", plan.to_json());
        return Ok(());
    }

    let result = plan.execute(&catalog, None).map_err(|e| e.to_string())?;
    match &args.out {
        Some(path) => {
            write_csv_file(&result, path).map_err(|e| e.to_string())?;
            eprintln!(
                "Wrote {} rows to {path}",
                result.count().map_err(|e| e.to_string())?
            );
        }
        None => {
            let n = result.count().map_err(|e| e.to_string())?;
            if n <= args.limit {
                print!("{}", unwrap_csv(&result).map_err(|e| e.to_string())?);
            } else {
                print!(
                    "{}",
                    result.show(args.limit).map_err(|e| e.to_string())?
                );
                eprintln!("... {n} rows total (use --out to save all)");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let args = parse_args(&argv(
            "--data /tmp/x --domains job,rack --values application,heat \
             --units heat=delta-celsius --window 300 --step 30 --limit 5",
        ))
        .unwrap();
        assert_eq!(args.data, "/tmp/x");
        assert_eq!(args.domains, vec!["job", "rack"]);
        assert_eq!(args.values, vec!["application", "heat"]);
        assert_eq!(args.units.get("heat").map(String::as_str), Some("delta-celsius"));
        assert_eq!(args.window_secs, 300.0);
        assert_eq!(args.step_secs, 30.0);
        assert_eq!(args.limit, 5);
        assert!(!args.plan_only);
    }

    #[test]
    fn requires_data_domains_and_values() {
        assert!(parse_args(&argv("--domains a --values b")).is_err());
        assert!(parse_args(&argv("--data d --values b")).is_err());
        assert!(parse_args(&argv("--data d --domains a")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b")).is_ok());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&argv("--data d --domains a --values b --frobnicate")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b --window soon")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b --units heat")).is_err());
        assert!(parse_args(&argv("--data")).is_err());
    }

    #[test]
    fn plan_only_and_out_flags() {
        let args = parse_args(&argv(
            "--data d --domains a --values b --plan-only --out f.csv",
        ))
        .unwrap();
        assert!(args.plan_only);
        assert_eq!(args.out.as_deref(), Some("f.csv"));
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
