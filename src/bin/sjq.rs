//! `sjq` — the ScrubJay query command-line tool.
//!
//! Loads a directory of annotated CSV datasets (see
//! [`scrubjay::catalog_io`]), solves a dimension-level query with the
//! derivation engine, and prints the plan and/or the derived dataset.
//! With `--server ADDR` the query is sent to a running `sjserved`
//! instead of executing locally.
//!
//! ```text
//! sjq --data DIR --domains job,rack --values application,heat
//!     [--units heat=delta-celsius] [--plan-only] [--window SECS]
//!     [--step SECS] [--out FILE.csv] [--limit N] [--json]
//!     [--trace FILE.json]
//! sjq --server HOST:PORT --domains ... --values ... [--tenant NAME]
//!     [--timeout-ms MS] [--json] [--trace FILE.json]
//! sjq --router HOST:PORT ...          # same wire protocol; --router is
//!                                     # an alias for --server against a
//!                                     # sharded sjrouted deployment
//! sjq --server HOST:PORT --health     # fleet/shard health, no query
//! sjq --server HOST:PORT --stats      # service or router counters
//! ```
//!
//! Exit codes: 0 success, 1 execution failure, 2 usage error,
//! 3 no derivation exists, 4 service unavailable (queue full, timeout,
//! connection refused). Errors print one structured line on stderr:
//! `error: code=<code> <message>`.

use scrubjay::catalog_io::load_catalog_dir;
use scrubjay::prelude::*;
use sjcore::engine::EngineConfig;
use sjcore::wrappers::{unwrap_csv, write_csv_file};
use sjcore::SjError;
use sjserve::protocol::QueryResult;
use sjserve::{Client, ClientError, QuerySpec, ValueSpec};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    data: String,
    server: Option<String>,
    tenant: String,
    timeout_ms: Option<u64>,
    json: bool,
    domains: Vec<String>,
    values: Vec<String>,
    units: HashMap<String, String>,
    plan_only: bool,
    window_secs: Option<f64>,
    step_secs: Option<f64>,
    out: Option<String>,
    limit: usize,
    trace: Option<String>,
    health: bool,
    stats: bool,
    follow: bool,
    max_frames: usize,
    json_wire: bool,
}

/// A failure with a stable machine-readable code (mirrors the service's
/// [`sjserve::protocol::codes`]) that maps onto the process exit code.
struct CliError {
    code: String,
    message: String,
}

impl CliError {
    fn new(code: &str, message: impl Into<String>) -> Self {
        CliError {
            code: code.into(),
            message: message.into(),
        }
    }

    fn failed(message: impl Into<String>) -> Self {
        Self::new("failed", message)
    }

    fn exit_code(&self) -> u8 {
        match self.code.as_str() {
            "usage" | "bad_request" => 2,
            "no_solution" => 3,
            "queue_full" | "timeout" | "shutdown" | "unavailable" => 4,
            _ => 1,
        }
    }
}

impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Server(body) => CliError {
                code: body.code,
                message: body.message,
            },
            ClientError::Io(e) => Self::new("unavailable", format!("server unreachable: {e}")),
            ClientError::Protocol(m) => Self::failed(format!("protocol error: {m}")),
        }
    }
}

const USAGE: &str = "\
sjq — ScrubJay query tool

USAGE:
  sjq --data DIR --domains D1,D2 --values V1,V2 [OPTIONS]
  sjq --server HOST:PORT --domains D1,D2 --values V1,V2 [OPTIONS]
  sjq --server HOST:PORT --health | --stats

OPTIONS:
  --data DIR        directory of <name>.csv + <name>.schema.json pairs
  --server ADDR     send the query to a running sjserved instead of
                    executing locally
  --router ADDR     alias for --server: a sharded sjrouted deployment
                    speaks the same protocol
  --health          print the service's (or fleet's) health report:
                    status, datasets, shard id, catalog epoch, stage
                    cache occupancy
  --stats           print the service's (or router's) metrics snapshot;
                    both modes lead with the negotiated wire version
                    and payload codec
  --wire PROTO      transport for --server mode: binary (framed sjwire,
                    the default) or json (JSON-lines)
  --tenant NAME     fair-queueing bucket for --server mode
  --timeout-ms MS   per-request deadline for --server mode
  --domains LIST    comma-separated domain dimensions of interest
  --values LIST     comma-separated value dimensions of interest
  --units V=U,...   units constraints for value dimensions
  --plan-only       print the derivation sequence without executing it
  --window SECS     interpolation-join window W (default 120)
  --step SECS       explode-continuous step (default 60)
  --out FILE        write the derived dataset to FILE as CSV
  --limit N         rows to print when no --out is given (default 20)
  --json            print the result as one JSON object on stdout
  --trace FILE      trace the query: write Chrome trace-event JSON to
                    FILE (load in Perfetto or chrome://tracing) and
                    print the span timeline on stderr; in --server mode
                    the trace is recorded server-side and returned with
                    the response
  --follow          --server mode only: register the query as a
                    *standing* query and stream its window results as
                    appends arrive, instead of answering once. Each
                    frame prints as CSV (or one JSON line with --json)
                    until the server closes the connection
  --max-frames N    with --follow, exit successfully after N frames
                    (default 0 = follow until the connection ends)

EXIT CODES:
  0 ok   1 execution failed   2 usage   3 no solution   4 unavailable
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        data: String::new(),
        server: None,
        tenant: String::new(),
        timeout_ms: None,
        json: false,
        domains: Vec::new(),
        values: Vec::new(),
        units: HashMap::new(),
        plan_only: false,
        window_secs: None,
        step_secs: None,
        out: None,
        limit: 20,
        trace: None,
        health: false,
        stats: false,
        follow: false,
        max_frames: 0,
        json_wire: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--data" => args.data = value("--data")?,
            "--server" => args.server = Some(value("--server")?),
            "--router" => args.server = Some(value("--router")?),
            "--health" => args.health = true,
            "--stats" => args.stats = true,
            "--wire" => match value("--wire")?.as_str() {
                "binary" => args.json_wire = false,
                "json" => args.json_wire = true,
                other => return Err(format!("bad --wire {other:?}: binary or json")),
            },
            "--tenant" => args.tenant = value("--tenant")?,
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                )
            }
            "--json" => args.json = true,
            "--domains" => {
                args.domains = value("--domains")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--values" => {
                args.values = value("--values")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--units" => {
                for pair in value("--units")?.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad --units entry `{pair}` (want dim=units)"))?;
                    args.units
                        .insert(k.trim().to_string(), v.trim().to_string());
                }
            }
            "--plan-only" => args.plan_only = true,
            "--window" => {
                args.window_secs = Some(
                    value("--window")?
                        .parse()
                        .map_err(|e| format!("bad --window: {e}"))?,
                )
            }
            "--step" => {
                args.step_secs = Some(
                    value("--step")?
                        .parse()
                        .map_err(|e| format!("bad --step: {e}"))?,
                )
            }
            "--out" => args.out = Some(value("--out")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--follow" => args.follow = true,
            "--max-frames" => {
                args.max_frames = value("--max-frames")?
                    .parse()
                    .map_err(|e| format!("bad --max-frames: {e}"))?
            }
            "--limit" => {
                args.limit = value("--limit")?
                    .parse()
                    .map_err(|e| format!("bad --limit: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.health && args.stats {
        return Err("--health and --stats are mutually exclusive".into());
    }
    if args.health || args.stats {
        if args.server.is_none() {
            return Err("--health/--stats need --server or --router".into());
        }
        return Ok(args);
    }
    if args.data.is_empty() && args.server.is_none() {
        return Err("--data or --server is required".into());
    }
    if args.domains.is_empty() || args.values.is_empty() {
        return Err("--domains and --values are required".into());
    }
    if args.follow && args.server.is_none() {
        return Err("--follow needs --server (standing queries live on a service)".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), CliError> {
    match &args.server {
        Some(addr) => run_remote(args, addr),
        None => run_local(args),
    }
}

/// Execute against a running `sjserved` over the framed binary wire
/// protocol (sjwire; the server still accepts JSON-lines peers).
fn run_remote(args: &Args, addr: &str) -> Result<(), CliError> {
    let spec = QuerySpec {
        domains: args.domains.clone(),
        values: args
            .values
            .iter()
            .map(|v| match args.units.get(v) {
                Some(u) => ValueSpec::with_units(v, u),
                None => ValueSpec::dim(v),
            })
            .collect(),
        window_secs: args.window_secs,
        step_secs: args.step_secs,
        limit: Some(args.limit),
    };
    let mut client = if args.json_wire {
        Client::connect_json_as(addr, &args.tenant)
    } else {
        Client::connect_as(addr, &args.tenant)
    }
    .map_err(|e| CliError::new("unavailable", format!("connect {addr}: {e}")))?;

    if args.health {
        let response = client.health()?;
        if args.json {
            println!("{}", encode(&response)?);
            return Ok(());
        }
        let report = response
            .health
            .ok_or_else(|| CliError::failed("ok response without a health payload"))?;
        if let Some(wire) = &response.wire {
            println!("wire: v{} ({})", wire.wire_version, wire.codec);
        }
        print!("{}", report.render());
        return Ok(());
    }
    if args.stats {
        let response = client.stats()?;
        if args.json {
            println!("{}", encode(&response)?);
            return Ok(());
        }
        if let Some(wire) = &response.wire {
            println!("wire: v{} ({})", wire.wire_version, wire.codec);
        }
        // Workers answer with a service report, routers with a router
        // report; render whichever came back.
        if let Some(report) = &response.router_stats {
            print!("{}", report.render());
        } else if let Some(report) = &response.stats {
            print!("{}", report.render());
        } else {
            return Err(CliError::failed("ok response without a stats payload"));
        }
        return Ok(());
    }

    if args.follow {
        return run_follow(args, client, spec);
    }

    if args.plan_only {
        let response = client.explain(spec)?;
        if args.json {
            println!("{}", encode(&response)?);
            return Ok(());
        }
        let plan = response
            .plan
            .ok_or_else(|| CliError::failed("ok response without a plan payload"))?;
        eprintln!(
            "Plan (fingerprint {:016x}, cache {}):\n{}",
            plan.fingerprint,
            if plan.plan_cache_hit { "hit" } else { "miss" },
            plan.plan_text
        );
        println!("{}", plan.plan_json);
        return Ok(());
    }

    let response = if args.trace.is_some() {
        client.query_traced(spec, args.timeout_ms)?
    } else {
        client.query(spec, args.timeout_ms)?
    };
    if let (Some(path), Some(trace)) = (&args.trace, &response.trace) {
        if let Some(json) = &trace.chrome_json {
            std::fs::write(path, json)
                .map_err(|e| CliError::failed(format!("write {path}: {e}")))?;
            eprintln!(
                "Trace {} ({} events) written to {path}",
                trace.query_id, trace.span_count
            );
        }
        eprint!("{}", trace.timeline);
    }
    if args.json {
        println!("{}", encode(&response)?);
        return Ok(());
    }
    let result = response
        .result
        .ok_or_else(|| CliError::failed("ok response without a result payload"))?;
    eprintln!(
        "{} rows in {:.1}ms (plan cache {}, result cache {})",
        result.row_count,
        result.elapsed_ms,
        if result.plan_cache_hit { "hit" } else { "miss" },
        if result.result_cache_hit {
            "hit"
        } else {
            "miss"
        },
    );
    let rendered = render_csv(&result.columns, &result.rows);
    match &args.out {
        Some(path) => {
            std::fs::write(path, rendered)
                .map_err(|e| CliError::failed(format!("write {path}: {e}")))?;
            eprintln!("Wrote {} rows to {path}", result.rows.len());
        }
        None => {
            print!("{rendered}");
            if result.truncated {
                eprintln!(
                    "... {} rows total (raise --limit or use --out to save all)",
                    result.row_count
                );
            }
        }
    }
    Ok(())
}

/// `--follow`: register the query as a standing query and print every
/// pushed window frame until the server hangs up (or `--max-frames`).
fn run_follow(args: &Args, mut client: Client, spec: QuerySpec) -> Result<(), CliError> {
    let ack = client.subscribe(spec)?;
    if let Some(sub) = &ack.subscription {
        eprintln!(
            "Subscribed {} ({}s windows, {}s allowed lateness); waiting for appends...",
            sub.query_id, sub.window_secs, sub.allowed_lateness_secs
        );
    }
    let mut frames = 0usize;
    loop {
        let frame = match client.next_frame() {
            Ok(frame) => frame,
            // A server shutdown closes the connection; that ends the
            // stream, it is not a client failure.
            Err(ClientError::Protocol(m)) if m.contains("closed the connection") => {
                eprintln!("stream ended: {m}");
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        };
        if let Some(error) = &frame.error {
            if !frame.is_degraded() {
                // The subscription was torn down (e.g. the derivation
                // search failed); surface the structured code.
                return Err(CliError::new(&error.code, error.message.clone()));
            }
        }
        let Some(window) = &frame.window else {
            continue;
        };
        if args.json {
            println!("{}", encode(&frame)?);
        } else {
            eprintln!(
                "window {} [{} .. {}) watermark={}{}{}",
                window.window_id,
                window.start_us,
                window.end_us,
                window.watermark_us,
                if window.re_emission {
                    " (re-emission)"
                } else {
                    ""
                },
                if window.degraded { " DEGRADED" } else { "" },
            );
            print!("{}", render_csv(&window.columns, &window.rows));
        }
        frames += 1;
        if args.max_frames > 0 && frames >= args.max_frames {
            return Ok(());
        }
    }
}

/// Drain the local context's span trace: Chrome trace-event JSON to
/// `path`, text timeline to stderr.
fn dump_local_trace(ctx: &ExecCtx, path: &str) -> Result<(), CliError> {
    let tracer = ctx.tracer();
    let events = tracer.drain();
    let json = sjdf::trace::export::chrome_trace_json(&events, &tracer.thread_names(), "sjq");
    std::fs::write(path, json).map_err(|e| CliError::failed(format!("write {path}: {e}")))?;
    eprintln!("Trace ({} events) written to {path}", events.len());
    eprint!("{}", sjdf::trace::timeline::render(&events));
    Ok(())
}

/// Execute in-process against a locally loaded catalog.
fn run_local(args: &Args) -> Result<(), CliError> {
    let started = std::time::Instant::now();
    let ctx = ExecCtx::local();
    if args.trace.is_some() {
        ctx.tracer().enable();
    }
    let catalog =
        load_catalog_dir(&ctx, &args.data).map_err(|e| CliError::failed(e.to_string()))?;
    eprintln!("Loaded datasets: {:?}", catalog.dataset_names());

    let values: Vec<QueryValue> = args
        .values
        .iter()
        .map(|v| match args.units.get(v) {
            Some(u) => QueryValue::with_units(v, u),
            None => QueryValue::dim(v),
        })
        .collect();
    let query = Query {
        domains: args.domains.clone(),
        values,
    };

    let engine = QueryEngine::with_config(
        &catalog,
        EngineConfig {
            interp_window_secs: args.window_secs.unwrap_or(120.0),
            explode_step_secs: args.step_secs.unwrap_or(60.0),
            ..EngineConfig::default()
        },
    );
    let plan = engine.solve(&query).map_err(|e| match e {
        SjError::NoSolution(msg) => CliError::new("no_solution", msg),
        other => CliError::failed(other.to_string()),
    })?;
    if args.plan_only {
        if !args.json {
            eprintln!("\nQuery: {}", query.describe());
            eprintln!("\nDerivation sequence:\n{}", plan.describe());
        }
        println!("{}", plan.to_json());
        return Ok(());
    }
    eprintln!("\nQuery: {}", query.describe());
    eprintln!("\nDerivation sequence:\n{}", plan.describe());

    let result = plan
        .execute(&catalog, None)
        .map_err(|e| CliError::new("exec_failed", e.to_string()))?;
    if args.json {
        let rows = result
            .collect()
            .map_err(|e| CliError::failed(e.to_string()))?;
        let schema = result.schema();
        let columns: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
        let ncols = schema.len();
        let row_count = rows.len();
        let truncated = row_count > args.limit;
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .take(args.limit)
            .map(|row| (0..ncols).map(|i| row.get(i).to_string()).collect())
            .collect();
        let payload = QueryResult {
            columns,
            rows: rendered,
            row_count,
            truncated,
            plan_cache_hit: false,
            result_cache_hit: false,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            engine_metrics: Some(ctx.metrics.report()),
        };
        if let Some(path) = &args.trace {
            dump_local_trace(&ctx, path)?;
        }
        println!("{}", encode(&payload)?);
        return Ok(());
    }
    match &args.out {
        Some(path) => {
            write_csv_file(&result, path).map_err(|e| CliError::failed(e.to_string()))?;
            eprintln!(
                "Wrote {} rows to {path}",
                result
                    .count()
                    .map_err(|e| CliError::failed(e.to_string()))?
            );
        }
        None => {
            let n = result
                .count()
                .map_err(|e| CliError::failed(e.to_string()))?;
            if n <= args.limit {
                print!(
                    "{}",
                    unwrap_csv(&result).map_err(|e| CliError::failed(e.to_string()))?
                );
            } else {
                print!(
                    "{}",
                    result
                        .show(args.limit)
                        .map_err(|e| CliError::failed(e.to_string()))?
                );
                eprintln!("... {n} rows total (use --out to save all)");
            }
        }
    }
    if let Some(path) = &args.trace {
        dump_local_trace(&ctx, path)?;
    }
    Ok(())
}

fn encode<T: serde::Serialize>(value: &T) -> Result<String, CliError> {
    serde_json::to_string(value).map_err(|e| CliError::failed(format!("encode: {e}")))
}

/// Minimal CSV rendering for server-mode results (cells are already
/// display strings; quote only when necessary).
fn render_csv(columns: &[String], rows: &[Vec<String>]) -> String {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &columns
            .iter()
            .map(|c| cell(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: code={} {}", e.code, e.message);
                ExitCode::from(e.exit_code())
            }
        },
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: code=usage {msg}\n");
            }
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let args = parse_args(&argv(
            "--data /tmp/x --domains job,rack --values application,heat \
             --units heat=delta-celsius --window 300 --step 30 --limit 5",
        ))
        .unwrap();
        assert_eq!(args.data, "/tmp/x");
        assert_eq!(args.domains, vec!["job", "rack"]);
        assert_eq!(args.values, vec!["application", "heat"]);
        assert_eq!(
            args.units.get("heat").map(String::as_str),
            Some("delta-celsius")
        );
        assert_eq!(args.window_secs, Some(300.0));
        assert_eq!(args.step_secs, Some(30.0));
        assert_eq!(args.limit, 5);
        assert!(!args.plan_only);
        assert!(!args.json);
        assert!(args.server.is_none());
    }

    #[test]
    fn requires_data_domains_and_values() {
        assert!(parse_args(&argv("--domains a --values b")).is_err());
        assert!(parse_args(&argv("--data d --values b")).is_err());
        assert!(parse_args(&argv("--data d --domains a")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b")).is_ok());
    }

    #[test]
    fn server_mode_replaces_data() {
        let args = parse_args(&argv(
            "--server 127.0.0.1:7227 --tenant teamA --timeout-ms 5000 \
             --domains a --values b --json",
        ))
        .unwrap();
        assert_eq!(args.server.as_deref(), Some("127.0.0.1:7227"));
        assert_eq!(args.tenant, "teamA");
        assert_eq!(args.timeout_ms, Some(5000));
        assert!(args.json);
        // --server without --data is valid; neither is not.
        assert!(parse_args(&argv("--domains a --values b")).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&argv("--data d --domains a --values b --frobnicate")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b --window soon")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b --units heat")).is_err());
        assert!(parse_args(&argv("--data d --domains a --values b --timeout-ms x")).is_err());
        assert!(parse_args(&argv("--data")).is_err());
    }

    #[test]
    fn plan_only_and_out_flags() {
        let args = parse_args(&argv(
            "--data d --domains a --values b --plan-only --out f.csv",
        ))
        .unwrap();
        assert!(args.plan_only);
        assert_eq!(args.out.as_deref(), Some("f.csv"));
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let args = parse_args(&argv(
            "--data d --domains a --values b --trace /tmp/q.trace.json",
        ))
        .unwrap();
        assert_eq!(args.trace.as_deref(), Some("/tmp/q.trace.json"));
        assert!(parse_args(&argv("--data d --domains a --values b"))
            .unwrap()
            .trace
            .is_none());
        assert!(parse_args(&argv("--data d --domains a --values b --trace")).is_err());
    }

    #[test]
    fn follow_needs_server_mode() {
        let args = parse_args(&argv(
            "--server h:1 --domains a --values b --follow --max-frames 3",
        ))
        .unwrap();
        assert!(args.follow);
        assert_eq!(args.max_frames, 3);
        assert!(parse_args(&argv("--data d --domains a --values b --follow")).is_err());
        assert!(parse_args(&argv("--server h:1 --domains a --values b --max-frames x")).is_err());
    }

    #[test]
    fn wire_flag_selects_the_transport() {
        let args = parse_args(&argv("--server h:1 --domains a --values b")).unwrap();
        assert!(!args.json_wire);
        let args = parse_args(&argv("--server h:1 --domains a --values b --wire json")).unwrap();
        assert!(args.json_wire);
        let args = parse_args(&argv("--server h:1 --domains a --values b --wire binary")).unwrap();
        assert!(!args.json_wire);
        assert!(parse_args(&argv("--server h:1 --domains a --values b --wire tcp")).is_err());
    }

    #[test]
    fn router_is_an_alias_for_server() {
        let args = parse_args(&argv("--router 127.0.0.1:7228 --domains a --values b")).unwrap();
        assert_eq!(args.server.as_deref(), Some("127.0.0.1:7228"));
    }

    #[test]
    fn health_and_stats_modes_skip_query_flags() {
        let args = parse_args(&argv("--server h:1 --health")).unwrap();
        assert!(args.health && !args.stats);
        let args = parse_args(&argv("--router h:1 --stats --json")).unwrap();
        assert!(args.stats && args.json);
        // Both need a server, and are mutually exclusive.
        assert!(parse_args(&argv("--health")).is_err());
        assert!(parse_args(&argv("--data d --stats")).is_err());
        assert!(parse_args(&argv("--server h:1 --health --stats")).is_err());
    }

    #[test]
    fn exit_codes_are_distinct_per_failure_class() {
        assert_eq!(CliError::new("usage", "").exit_code(), 2);
        assert_eq!(CliError::new("bad_request", "").exit_code(), 2);
        assert_eq!(CliError::new("no_solution", "").exit_code(), 3);
        assert_eq!(CliError::new("queue_full", "").exit_code(), 4);
        assert_eq!(CliError::new("timeout", "").exit_code(), 4);
        assert_eq!(CliError::new("unavailable", "").exit_code(), 4);
        assert_eq!(CliError::new("exec_failed", "").exit_code(), 1);
        assert_eq!(CliError::failed("").exit_code(), 1);
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let out = render_csv(
            &["a".into(), "b,c".into()],
            &[vec!["1".into(), "x\"y".into()]],
        );
        assert_eq!(out, "a,\"b,c\"\n1,\"x\"\"y\"\n");
    }
}
