//! Loading a ScrubJay catalog from a directory of CSV files with JSON
//! schema sidecars.
//!
//! Layout: every dataset is a pair `<name>.csv` + `<name>.schema.json`
//! (a serialized [`Schema`]). This is the on-disk knowledge-base format
//! the `sjq` command-line tool consumes, and a convenient way to share
//! annotated datasets between analysts.

use sjcore::catalog::Catalog;
use sjcore::wrappers::{wrap_csv, CsvOptions};
use sjcore::{Result, Schema, SjError};
use sjdf::ExecCtx;
use std::path::Path;

/// Load every `<name>.csv` + `<name>.schema.json` pair under `dir` into
/// a catalog over the default HPC dictionary (with the default rules).
pub fn load_catalog_dir(ctx: &ExecCtx, dir: impl AsRef<Path>) -> Result<Catalog> {
    let dir = dir.as_ref();
    let mut catalog = Catalog::default_hpc();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| SjError::Io(format!("{}: {e}", dir.display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(SjError::Io(format!(
            "no .csv datasets found under {}",
            dir.display()
        )));
    }
    for csv_path in entries {
        let name = csv_path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| SjError::Io(format!("bad file name {}", csv_path.display())))?
            .to_string();
        let schema_path = csv_path.with_extension("schema.json");
        let schema_text = std::fs::read_to_string(&schema_path).map_err(|e| {
            SjError::Io(format!(
                "dataset `{name}` needs a schema sidecar {}: {e}",
                schema_path.display()
            ))
        })?;
        let schema: Schema = serde_json::from_str(&schema_text)
            .map_err(|e| SjError::ParseError(format!("{}: {e}", schema_path.display())))?;
        let text = std::fs::read_to_string(&csv_path)
            .map_err(|e| SjError::Io(format!("{}: {e}", csv_path.display())))?;
        let ds = wrap_csv(
            ctx,
            &text,
            schema,
            catalog.dict(),
            &name,
            &CsvOptions::default(),
        )?;
        catalog.register_dataset(&name, ds)?;
    }
    Ok(catalog)
}

/// Write a dataset's schema sidecar next to a CSV (helper for exporting
/// shareable catalogs).
pub fn write_schema_sidecar(schema: &Schema, csv_path: impl AsRef<Path>) -> Result<()> {
    let path = csv_path.as_ref().with_extension("schema.json");
    let text = serde_json::to_string_pretty(schema).map_err(|e| SjError::Io(e.to_string()))?;
    std::fs::write(path, text).map_err(|e| SjError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcore::{FieldDef, FieldSemantics};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sj-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn temps_schema() -> Schema {
        Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap()
    }

    #[test]
    fn loads_csv_plus_sidecar_pairs() {
        let dir = tmp_dir("load");
        std::fs::write(dir.join("temps.csv"), "node,temp\nn1,61.5\nn2,64.0\n").unwrap();
        write_schema_sidecar(&temps_schema(), dir.join("temps.csv")).unwrap();
        let ctx = ExecCtx::local();
        let catalog = load_catalog_dir(&ctx, &dir).unwrap();
        assert_eq!(catalog.dataset_names(), vec!["temps"]);
        assert_eq!(catalog.dataset("temps").unwrap().count().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sidecar_is_a_clear_error() {
        let dir = tmp_dir("nosidecar");
        std::fs::write(dir.join("temps.csv"), "node,temp\nn1,61.5\n").unwrap();
        let ctx = ExecCtx::local();
        let e = load_catalog_dir(&ctx, &dir).unwrap_err();
        assert!(e.to_string().contains("schema sidecar"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = tmp_dir("empty");
        let ctx = ExecCtx::local();
        assert!(load_catalog_dir(&ctx, &dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
