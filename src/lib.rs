//! # ScrubJay — deriving knowledge from the disarray of HPC performance data
//!
//! A Rust reproduction of the SC '17 ScrubJay system (Giménez et al.):
//! a framework for automatic analysis of disparate HPC performance data
//! that decouples specifying data relationships from analyzing data.
//!
//! The workspace splits into three crates, re-exported here:
//!
//! * [`sjdf`] — the data-parallel substrate (a Spark-like lazy
//!   partitioned-dataset engine with a virtual-cluster cost model);
//! * [`sjcore`] — ScrubJay proper: semantic annotation, derivations
//!   (including the interpolation join), the derivation engine, and
//!   reproducible JSON plans;
//! * [`sjdata`] — a synthetic LLNL-style facility simulator generating
//!   the monitoring sources the paper's case studies analyze.
//!
//! ## Quickstart
//!
//! ```
//! use scrubjay::prelude::*;
//!
//! // A catalog shaped like the paper's first DAT session.
//! let ctx = ExecCtx::local();
//! let cfg = sjdata::Dat1Config {
//!     racks: 4, nodes_per_rack: 4, amg_rack_index: 2, amg_nodes: 3,
//!     background_jobs: 2, duration_secs: 1800,
//!     ..Default::default()
//! };
//! let (catalog, _truth) = sjdata::dat1(&ctx, &cfg).unwrap();
//!
//! // Ask for application names per job and heat per rack — no table or
//! // column names, just dimensions.
//! let query = Query::new(
//!     ["job", "rack"],
//!     vec![QueryValue::dim("application"), QueryValue::dim("heat")],
//! );
//! let engine = QueryEngine::new(&catalog);
//! let plan = engine.solve(&query).unwrap();
//! let result = plan.execute(&catalog, None).unwrap();
//! assert!(result.count().unwrap() > 0);
//! ```

#![forbid(unsafe_code)]

pub use sjcore;
pub use sjdata;
pub use sjdf;

pub mod catalog_io;
pub mod textplot;

/// The most common imports in one place.
pub mod prelude {
    pub use sjcore::cache::ResultCache;
    pub use sjcore::catalog::Catalog;
    pub use sjcore::engine::{EngineConfig, Plan, Query, QueryEngine, QueryValue};
    pub use sjcore::{
        FieldDef, FieldSemantics, RelationType, Row, Schema, SemanticDictionary, SjDataset,
        TimeSpan, Timestamp, Value,
    };
    pub use sjdata;
    pub use sjdf::{ClusterSpec, ExecCtx, Rdd};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ctx = ExecCtx::local();
        let _q = Query::new(["rack"], vec![QueryValue::dim("heat")]);
    }
}
