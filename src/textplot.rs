//! Minimal ASCII line charts for terminal output.
//!
//! The case-study examples regenerate the paper's figures as CSV series;
//! this module additionally renders them as quick terminal plots so the
//! shapes (AMG's rising heat curve, prime95's throttling steps) are
//! visible without leaving the shell.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; the first character is the plot glyph.
    pub label: String,
    /// Data points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Shorthand constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Render series into a `width` × `height` character grid with y-axis
/// labels and a legend line. Returns an empty string if no series has
/// points.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let pts = || series.iter().flat_map(|s| s.points.iter());
    if pts().next().is_none() {
        return String::new();
    }
    let (mut x0, mut x1, mut y0, mut y1) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in pts() {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:>9.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    let mut xlabel = format!("x: {x0:.0} .. {x1:.0}");
    xlabel.truncate(width);
    out.push_str(&format!("{:>10}{xlabel}\n", ""));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} = {}", s.label.chars().next().unwrap_or('*'), s.label))
        .collect();
    out.push_str(&format!("{:>10}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_render_empty() {
        assert!(render(&[], 40, 10).is_empty());
        assert!(render(&[Series::new("a", vec![])], 40, 10).is_empty());
    }

    #[test]
    fn rising_line_puts_last_point_top_right() {
        let s = Series::new("heat", (0..20).map(|i| (i as f64, i as f64)).collect());
        let out = render(&[s], 40, 8);
        let lines: Vec<&str> = out.lines().collect();
        // Top row (after the y label) contains the glyph near the right.
        let top = lines[0];
        assert!(top.trim_end().ends_with('h'), "{top:?}");
        // Bottom data row contains the glyph near the left.
        let bottom = lines[7];
        let data = &bottom[11..];
        assert!(data.trim_start().starts_with('h') || data.starts_with('h'));
        // Legend present.
        assert!(out.contains("h = heat"));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = Series::new("alpha", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("beta", vec![(0.0, 1.0), (1.0, 0.0)]);
        let out = render(&[a, b], 30, 6);
        assert!(out.contains('a'));
        assert!(out.contains('b'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series::new("flat", vec![(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        let out = render(&[s], 30, 5);
        assert!(out.contains('f'));
    }

    #[test]
    fn axis_labels_reflect_ranges() {
        let s = Series::new("x", vec![(100.0, 2.0), (200.0, 8.0)]);
        let out = render(&[s], 30, 5);
        assert!(out.contains("x: 100 .. 200"));
        assert!(out.contains("8.00"));
        assert!(out.contains("2.00"));
    }
}
