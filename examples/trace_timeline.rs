//! End-to-end span tracing over the §7.2 rack-heat pipeline.
//!
//! Runs the DAT-1 derivation (job queue log × node layout × rack temps)
//! with the tracer on, then shows both exporter formats: the Chrome
//! trace-event JSON (load `target/trace_timeline.json` in Perfetto or
//! chrome://tracing — one track per worker thread) and the per-query
//! text timeline on stdout.
//!
//! Run with: `cargo run --release --example trace_timeline`

use scrubjay::prelude::*;
use sjdata::{dat1, Dat1Config};
use sjdf::trace;

fn main() -> sjcore::Result<()> {
    let ctx = ExecCtx::local();
    // Tracing is off by default (one relaxed atomic load per site); flip
    // it on before building the catalog so dataset materialization is
    // captured too.
    ctx.tracer().enable();

    let cfg = Dat1Config::default();
    let (catalog, truth) = dat1(&ctx, &cfg)?;
    println!(
        "DAT 1 catalog: {} racks x {} nodes, AMG pinned to {}",
        cfg.racks, cfg.nodes_per_rack, truth.amg_rack
    );

    // The Figure 5 query, solved and executed under the tracer.
    let query = Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    );
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&query)?;
    println!("\nQuery: {}", query.describe());
    let result = plan.execute(&catalog, None)?;
    let rows = result.collect()?;
    println!("Derived dataset: {} rows", rows.len());

    // Drain the recorded spans and sanity-check the tree before export:
    // every child nests inside its parent, ends follow starts, ids are
    // unique.
    let tracer = ctx.tracer();
    let events = tracer.drain();
    trace::validate(&events).map_err(sjcore::SjError::Io)?;
    let spans = events
        .iter()
        .filter(|e| e.kind == trace::EventKind::Span)
        .count();
    println!(
        "\nTrace: {} events ({} spans, {} instants, {} dropped)",
        events.len(),
        spans,
        events.len() - spans,
        tracer.dropped()
    );

    // Exporter 1: Chrome trace-event JSON, one track per worker thread.
    let json = trace::export::chrome_trace_json(&events, &tracer.thread_names(), "trace_timeline");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/trace_timeline.json", &json)
        .map_err(|e| sjcore::SjError::Io(e.to_string()))?;
    println!(
        "Chrome trace ({} bytes) written to target/trace_timeline.json \
         — load it in Perfetto or chrome://tracing",
        json.len()
    );

    // Exporter 2: the text timeline, the same rendering `sjq --trace`
    // prints and the service returns for `trace: true` requests.
    println!("\n{}", trace::timeline::render(&events));
    Ok(())
}
