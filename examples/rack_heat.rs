//! Case study §7.2: application impact on rack heat generation
//! (reproduces Figures 4 and 5).
//!
//! Builds the first DAT's catalog (job queue log, node layout, rack
//! temperature sensors), queries "application names per job × heat per
//! rack", prints the derivation sequence the engine finds (Figure 5),
//! executes it, identifies the hottest (rack, application) pair — which
//! must be AMG on its pinned rack — and writes the rack's heat profile
//! over time (Figure 4) to `target/fig4_rack_heat.csv`.
//!
//! Run with: `cargo run --release --example rack_heat`

use scrubjay::prelude::*;
use sjdata::{dat1, Dat1Config};
use std::collections::HashMap;

fn main() -> sjcore::Result<()> {
    let ctx = ExecCtx::local();
    let cfg = Dat1Config::default();
    println!(
        "Simulating DAT 1: {} racks x {} nodes, AMG pinned to rack {}, {} background jobs",
        cfg.racks, cfg.nodes_per_rack, cfg.amg_rack_index, cfg.background_jobs
    );
    let (catalog, truth) = dat1(&ctx, &cfg)?;
    for name in catalog.dataset_names() {
        println!(
            "  dataset `{name}`: {} rows, schema {}",
            catalog.dataset(name)?.count()?,
            catalog.dataset(name)?.schema()
        );
    }

    // The Figure 5 query: application names for jobs, heat for racks.
    let query = Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    );
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&query)?;
    println!("\nQuery: {}", query.describe());
    println!("\nDerivation sequence (Figure 5):\n{}", plan.describe());

    let result = plan.execute(&catalog, None)?;
    let schema = result.schema().clone();
    let rows = result.collect()?;
    println!("Derived dataset: {} rows, schema {}", rows.len(), schema);

    let app_i = schema.index_of("job_name")?;
    let rack_i = schema.index_of("rack")?;
    let heat_i = schema.index_of("heat")?;
    let loc_i = schema.index_of("location")?;
    // The surviving time domain column (its name depends on which side of
    // the final join carried it).
    let time_col = schema
        .domain_field_on("time")
        .expect("result has a time domain")
        .name
        .clone();
    let time_i = schema.index_of(&time_col)?;

    // Mean heat per (application, rack) — sorted, the outlier is on top.
    let mut sums: HashMap<(String, String), (f64, usize)> = HashMap::new();
    for r in &rows {
        let key = (
            r.get(app_i).as_str().unwrap_or("?").to_string(),
            r.get(rack_i).as_str().unwrap_or("?").to_string(),
        );
        if let Some(h) = r.get(heat_i).as_f64() {
            let e = sums.entry(key).or_insert((0.0, 0));
            e.0 += h;
            e.1 += 1;
        }
    }
    let mut ranked: Vec<((String, String), f64)> = sums
        .into_iter()
        .map(|(k, (s, n))| (k, s / n as f64))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nMean heat by (application, rack):");
    for ((app, rack), heat) in &ranked {
        println!("  {app:10} {rack:8} {heat:6.2} dC");
    }
    let ((top_app, top_rack), _) = &ranked[0];
    println!(
        "\nHottest pair: {top_app} on {top_rack} (expected: AMG on {})",
        truth.amg_rack
    );
    assert_eq!(top_app, "AMG");
    assert_eq!(top_rack, &truth.amg_rack);

    // Figure 4: the AMG rack's heat profile over time at bottom/middle/top.
    let mut series: Vec<(i64, String, f64)> = rows
        .iter()
        .filter(|r| r.get(rack_i).as_str() == Some(top_rack.as_str()))
        .filter_map(|r| {
            Some((
                r.get(time_i).as_time()?.as_secs(),
                r.get(loc_i).as_str()?.to_string(),
                r.get(heat_i).as_f64()?,
            ))
        })
        .collect();
    series.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)).then(a.2.total_cmp(&b.2)));
    series.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1 && a.2 == b.2);
    let mut csv = String::from("time_secs,location,heat_delta_celsius\n");
    for (t, loc, h) in &series {
        csv.push_str(&format!("{t},{loc},{h:.3}\n"));
    }
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/fig4_rack_heat.csv", &csv)
        .map_err(|e| sjcore::SjError::Io(e.to_string()))?;
    println!(
        "Figure 4 series ({} points, 3 locations) written to target/fig4_rack_heat.csv",
        series.len()
    );

    // Terminal rendering of Figure 4 (bottom/middle/top heat over time).
    let plot_series: Vec<scrubjay::textplot::Series> = ["bottom", "middle", "top"]
        .iter()
        .map(|loc| {
            scrubjay::textplot::Series::new(
                *loc,
                series
                    .iter()
                    .filter(|(_, l, _)| l == loc)
                    .map(|(t, _, h)| (*t as f64, *h))
                    .collect(),
            )
        })
        .collect();
    println!(
        "\nFigure 4 — heat on {top_rack} over time:\n{}",
        scrubjay::textplot::render(&plot_series, 72, 14)
    );

    // The AMG signature: heat rises over the run (compare first and last
    // thirds of the job window).
    let window_secs = truth.window.duration_secs();
    let t0 = truth.window.start.as_secs();
    let third = |lo: f64, hi: f64| -> f64 {
        let vals: Vec<f64> = series
            .iter()
            .filter(|(t, _, _)| {
                let frac = (*t - t0) as f64 / window_secs;
                frac >= lo && frac < hi
            })
            .map(|(_, _, h)| *h)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let early = third(0.1, 0.35);
    let late = third(0.65, 0.9);
    println!(
        "AMG heat profile: early mean {early:.2} dC -> late mean {late:.2} dC (rising: {})",
        late > early
    );
    Ok(())
}
