//! The §5.2 worked example: "to satisfy a query for power consumption
//! and jobs, we may transform job queue datasets into a representation
//! describing all active jobs during the times that power measurements
//! were collected and combine that result with the power measurement
//! dataset."
//!
//! Uses the second DAT's catalog: the job queue log (compound node-list
//! and time-span cells) and the LDMS node metrics ingested through the
//! NoSQL store. Also demonstrates the interoperability layer (§5.1,
//! footnote 1): filtering and aggregating the derived relation.
//!
//! Run with: `cargo run --release --example power_jobs`

use scrubjay::prelude::*;
use sjcore::interop::{aggregate, filter_rows, AggFn, Aggregation, Predicate};
use sjdata::{dat2, Dat2Config};

fn main() -> sjcore::Result<()> {
    let ctx = ExecCtx::local();
    let cfg = Dat2Config::default();
    let (catalog, _truth) = dat2(&ctx, &cfg)?;
    println!("Catalog: {:?}", catalog.dataset_names());

    // Power consumption and jobs.
    let query = Query::new(
        ["job", "node"],
        vec![QueryValue::dim("application"), QueryValue::dim("power")],
    );
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&query)?;
    println!("\nQuery: {}", query.describe());
    println!("\nDerivation sequence:\n{}", plan.describe());

    let result = plan.execute(&catalog, None)?;
    println!(
        "Derived dataset: {} rows, schema {}",
        result.count()?,
        result.schema()
    );

    // Interop layer: only high-power samples...
    let hot = filter_rows(
        &result,
        &Predicate::Gt("node_power".into(), Value::Float(250.0)),
        catalog.dict(),
    )?;
    println!("\nSamples above 250 W: {}", hot.count()?);

    // ...and mean power per application.
    let per_app = aggregate(
        &result,
        &["job_name"],
        &[
            Aggregation::new("node_power", AggFn::Mean, "mean_power"),
            Aggregation::new("node_power", AggFn::Max, "max_power"),
            Aggregation::new("node_power", AggFn::Count, "samples"),
        ],
        catalog.dict(),
    )?;
    println!("\nPower by application:\n{}", per_app.show(10)?);

    // The §7.3 signature again, now via facility power: prime95 draws
    // more node power than mg.C.
    let rows = per_app.collect()?;
    let mean_of = |app: &str| -> f64 {
        rows.iter()
            .find(|r| r.get(0).as_str() == Some(app))
            .and_then(|r| r.get(1).as_f64())
            .expect("application present")
    };
    let (mgc, prime) = (mean_of("mg.C"), mean_of("prime95"));
    println!("mg.C mean node power:    {mgc:.1} W");
    println!("prime95 mean node power: {prime:.1} W");
    assert!(prime > mgc + 20.0, "prime95 should draw more power");
    Ok(())
}
