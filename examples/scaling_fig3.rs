//! Figure 3 series printer: performance scaling of Natural Join and
//! Interpolation Join.
//!
//! Runs the real data-parallel joins locally at a tractable size to
//! record their task metrics, scales those metrics linearly to the
//! paper's row counts (both joins are linear in rows — validated by the
//! criterion benches), and costs them against the paper's virtual
//! cluster (10 nodes x 32 cores) with the calibrated cost model. Prints
//! all four panels of Figure 3 and writes them to
//! `target/fig3_scaling.csv`.
//!
//! Run with: `cargo run --release --example scaling_fig3`

use scrubjay::prelude::*;
use sjcore::derivations::combine::{InterpolationJoin, NaturalJoin};
use sjcore::derivations::Combination;
use sjdata::synth::{interp_join_inputs, natural_join_inputs, JoinWorkload};
use sjdf::metrics::MetricsReport;
use sjdf::simtime::{estimate, scale_report, CostParams};

/// Measure one join's task metrics at the calibration size.
fn measure(join: &str, calib_rows: usize) -> (MetricsReport, usize) {
    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).expect("cluster"));
    let dict = SemanticDictionary::default_hpc();
    let out_rows = match join {
        "natural" => {
            // Density-constant workload: time range scales with rows so
            // per-row cost is constant and metrics extrapolate linearly.
            let w = JoinWorkload {
                rows: calib_rows,
                nodes: 500,
                time_range_secs: ((calib_rows as f64 * 0.36) as i64).max(600),
                partitions: 8,
                seed: 42,
            };
            let (l, r) = natural_join_inputs(&ctx, &w);
            NaturalJoin
                .apply(&l, &r, &dict)
                .expect("join")
                .count()
                .expect("count")
        }
        _ => {
            // Denser in time than the natural-join workload: sensor-style
            // data where each left element matches several right samples
            // inside the window — the regime where the paper's
            // interpolation join is ~15x costlier per row.
            let w = JoinWorkload {
                rows: calib_rows,
                nodes: 100,
                time_range_secs: ((calib_rows as f64 * 0.18) as i64).max(600),
                partitions: 8,
                seed: 42,
            };
            let (l, r) = interp_join_inputs(&ctx, &w);
            InterpolationJoin::new(60.0)
                .apply(&l, &r, &dict)
                .expect("join")
                .count()
                .expect("count")
        }
    };
    (ctx.metrics.report(), out_rows)
}

fn main() {
    let params = CostParams::paper();
    let calib_rows = 40_000;
    println!("Calibrating against real local runs at {calib_rows} rows/side...");
    let (nj_report, nj_out) = measure("natural", calib_rows);
    let (ij_report, ij_out) = measure("interp", calib_rows);
    println!(
        "  natural join: {} output rows, {} shuffle bytes",
        nj_out,
        nj_report.total_shuffle_bytes()
    );
    println!(
        "  interp join:  {} output rows, {} shuffle bytes",
        ij_out,
        ij_report.total_shuffle_bytes()
    );

    let mut csv = String::from("panel,x,seconds\n");

    // Panel (a): Natural Join, 10 nodes, 2M..40M rows.
    let ten_nodes = ClusterSpec::paper_cluster();
    println!("\nFigure 3a — Natural Join, 10 nodes, 32 cores/node");
    println!("{:>12} {:>10}", "rows", "time (s)");
    for rows in (2..=40).step_by(4).map(|m| m * 1_000_000usize) {
        let scaled = scale_report(&nj_report, rows as f64 / calib_rows as f64);
        let t = estimate(&scaled, &ten_nodes, &params).total();
        println!("{rows:>12} {t:>10.2}");
        csv.push_str(&format!("natural_rows,{rows},{t:.3}\n"));
    }

    // Panel (b): Natural Join strong scaling, 40M rows, 1..10 nodes.
    println!("\nFigure 3b — Natural Join strong scaling, 40M rows");
    println!("{:>6} {:>10}", "nodes", "time (s)");
    let nj40 = scale_report(&nj_report, 40_000_000.0 / calib_rows as f64);
    for nodes in 1..=10 {
        let t = estimate(&nj40, &ten_nodes.with_nodes(nodes), &params).total();
        println!("{nodes:>6} {t:>10.2}");
        csv.push_str(&format!("natural_nodes,{nodes},{t:.3}\n"));
    }

    // Panel (c): Interpolation Join, 10 nodes, 2M..40M rows.
    println!("\nFigure 3c — Interpolation Join, 10 nodes, 32 cores/node");
    println!("{:>12} {:>10}", "rows", "time (s)");
    for rows in (2..=40).step_by(4).map(|m| m * 1_000_000usize) {
        let scaled = scale_report(&ij_report, rows as f64 / calib_rows as f64);
        let t = estimate(&scaled, &ten_nodes, &params).total();
        println!("{rows:>12} {t:>10.2}");
        csv.push_str(&format!("interp_rows,{rows},{t:.3}\n"));
    }

    // Panel (d): Interpolation Join strong scaling, 16M rows, 1..10 nodes.
    println!("\nFigure 3d — Interpolation Join strong scaling, 16M rows");
    println!("{:>6} {:>10}", "nodes", "time (s)");
    let ij16 = scale_report(&ij_report, 16_000_000.0 / calib_rows as f64);
    for nodes in 1..=10 {
        let t = estimate(&ij16, &ten_nodes.with_nodes(nodes), &params).total();
        println!("{nodes:>6} {t:>10.2}");
        csv.push_str(&format!("interp_nodes,{nodes},{t:.3}\n"));
    }

    std::fs::create_dir_all("target").ok();
    std::fs::write("target/fig3_scaling.csv", &csv).expect("write csv");
    println!("\nAll four panels written to target/fig3_scaling.csv");
    println!("Paper endpoints for comparison: 3a 2-8s, 3b 13->8.5s, 3c 10-120s, 3d 240->45s");
}
