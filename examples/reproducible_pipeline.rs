//! Reproducible derivation sequences (§5.4).
//!
//! The engine's plans are compact JSON documents that can be stored,
//! shared, hand-edited, and re-executed. This example solves a query,
//! serializes the plan to disk, reloads it, re-executes it — with and
//! without the intermediate-result cache — and shows a hand-edited
//! variant (a different interpolation window) executing too.
//!
//! Run with: `cargo run --release --example reproducible_pipeline`

use scrubjay::prelude::*;
use sjdata::{dat1, Dat1Config};

fn main() -> sjcore::Result<()> {
    let ctx = ExecCtx::local();
    let cfg = Dat1Config {
        racks: 6,
        nodes_per_rack: 6,
        amg_rack_index: 3,
        amg_nodes: 5,
        background_jobs: 4,
        duration_secs: 3600,
        ..Default::default()
    };
    let (catalog, _) = dat1(&ctx, &cfg)?;

    let query = Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    );
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&query)?;

    // --- serialize / reload -------------------------------------------------
    std::fs::create_dir_all("target").ok();
    let path = "target/rack_heat_plan.json";
    std::fs::write(path, plan.to_json()).map_err(|e| sjcore::SjError::Io(e.to_string()))?;
    let reloaded = Plan::from_json(
        &std::fs::read_to_string(path).map_err(|e| sjcore::SjError::Io(e.to_string()))?,
    )?;
    assert_eq!(plan, reloaded);
    println!("Plan serialized to {path} and reloaded identically.");
    println!("\n{}", reloaded.describe());

    // --- execute, with the LRU result cache ----------------------------------
    let cache = ResultCache::new(64 << 20);
    let t0 = std::time::Instant::now();
    let first = reloaded.execute(&catalog, Some(&cache))?;
    let n1 = first.count()?;
    let cold = t0.elapsed();

    let t1 = std::time::Instant::now();
    let second = reloaded.execute(&catalog, Some(&cache))?;
    let n2 = second.count()?;
    let warm = t1.elapsed();
    assert_eq!(n1, n2);
    println!(
        "Executed twice through the cache: cold {:?} -> warm {:?} ({} rows, {} cache hits)",
        cold,
        warm,
        n1,
        cache.stats().hits
    );

    // --- hand-edit the pipeline ----------------------------------------------
    // An advanced user tweaks the serialized plan: widen the interpolation
    // window from the engine default to 5 minutes.
    let edited_json = plan
        .to_json()
        .replace("\"window_secs\": 120.0", "\"window_secs\": 300.0");
    let edited = Plan::from_json(&edited_json)?;
    assert_ne!(edited, plan);
    let wider = edited.execute(&catalog, None)?;
    println!(
        "Hand-edited variant (W=300s) executes too: {} rows (W=120s gave {n1})",
        wider.count()?
    );
    Ok(())
}
