//! Case study §7.3: CPU frequency throttling impact on node power
//! consumption (reproduces Figures 6 and 7).
//!
//! Builds the second DAT's catalog (PAPI CPU counters, IPMI motherboard
//! data, CPU specifications), queries active CPU frequency plus CPU and
//! node counter rates, prints the derivation sequence (Figure 7),
//! executes it, and writes the per-run derived series (Figure 6) to
//! `target/fig6_throttling.csv`. The expected signatures: mg.C runs at
//! full frequency with a low instruction rate and heavy memory traffic;
//! prime95 throttles aggressively while retiring instructions fast.
//!
//! Run with: `cargo run --release --example cpu_throttling`

use scrubjay::prelude::*;
use sjdata::{dat2, Dat2Config};

fn main() -> sjcore::Result<()> {
    let ctx = ExecCtx::local();
    let cfg = Dat2Config::default();
    println!(
        "Simulating DAT 2: {} nodes x {} cpus, 3x mg.C then 3x prime95, {}s runs",
        cfg.nodes, cfg.cpus_per_node, cfg.run_secs
    );
    let (catalog, truth) = dat2(&ctx, &cfg)?;
    for name in catalog.dataset_names() {
        println!(
            "  dataset `{name}`: {} rows, schema {}",
            catalog.dataset(name)?.count()?,
            catalog.dataset(name)?.schema()
        );
    }

    // The Figure 7 query: active CPU frequency for CPUs, plus CPU
    // instruction rates and node memory read/write rates.
    let query = Query::new(
        ["cpu", "node", "socket"],
        vec![
            QueryValue::dim("frequency"),
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::with_units("memory-reads", "memory-reads-per-ms"),
            QueryValue::with_units("memory-writes", "memory-writes-per-ms"),
            QueryValue::dim("power"),
            QueryValue::dim("thermal-margin"),
        ],
    );
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&query)?;
    println!("\nQuery: {}", query.describe());
    println!("\nDerivation sequence (Figure 7):\n{}", plan.describe());

    let result = plan.execute(&catalog, None)?;
    let schema = result.schema().clone();
    let rows = result.collect()?;
    println!("Derived dataset: {} rows, schema {}", rows.len(), schema);

    let time_i = schema.index_of("time")?;
    let freq_i = schema.index_of("active_frequency")?;
    let instr_i = schema.index_of("instructions_rate")?;
    let reads_i = schema.index_of("mem_reads_rate")?;
    let margin_i = schema.index_of("thermal_margin")?;

    // Figure 6 series: per-sample derived values tagged with the run.
    let run_of = |secs: i64| -> Option<(usize, &'static str)> {
        truth.runs.iter().enumerate().find_map(|(i, span)| {
            span.contains(Timestamp::from_secs(secs))
                .then(|| (i + 1, if i < 3 { "mg.C" } else { "prime95" }))
        })
    };
    let mut csv = String::from(
        "time_secs,run,app,active_freq_mhz,instr_per_ms,mem_reads_per_ms,thermal_margin\n",
    );
    let mut per_run: Vec<Vec<(f64, f64, f64, f64)>> = vec![Vec::new(); 6];
    let mut points = 0usize;
    let mut sorted: Vec<&Row> = rows.iter().collect();
    sorted.sort_by_key(|r| r.get(time_i).as_time().map(|t| t.as_micros()));
    for r in sorted {
        let Some(t) = r.get(time_i).as_time() else {
            continue;
        };
        let Some((run, app)) = run_of(t.as_secs()) else {
            continue;
        };
        let (Some(f), Some(i), Some(m), Some(g)) = (
            r.get(freq_i).as_f64(),
            r.get(instr_i).as_f64(),
            r.get(reads_i).as_f64(),
            r.get(margin_i).as_f64(),
        ) else {
            continue;
        };
        csv.push_str(&format!(
            "{},{run},{app},{f:.1},{i:.0},{m:.0},{g:.2}\n",
            t.as_secs()
        ));
        per_run[run - 1].push((f, i, m, g));
        points += 1;
    }
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/fig6_throttling.csv", &csv)
        .map_err(|e| sjcore::SjError::Io(e.to_string()))?;
    println!("Figure 6 series ({points} points) written to target/fig6_throttling.csv");

    // Terminal rendering of the Figure 6 frequency panel: per-minute mean
    // active frequency across the six runs (mg.C flat at base, prime95
    // throttled).
    {
        use std::collections::BTreeMap;
        let mut bins: BTreeMap<i64, (f64, u32)> = BTreeMap::new();
        for line in csv.lines().skip(1) {
            let mut cols = line.split(',');
            let (Some(t), Some(f)) = (cols.next(), cols.nth(2)) else {
                continue;
            };
            let (Ok(t), Ok(f)) = (t.parse::<i64>(), f.parse::<f64>()) else {
                continue;
            };
            let e = bins.entry(t / 60).or_insert((0.0, 0));
            e.0 += f;
            e.1 += 1;
        }
        let freq_series = scrubjay::textplot::Series::new(
            "freq(MHz)",
            bins.iter()
                .map(|(m, (s, n))| ((*m * 60) as f64, s / *n as f64))
                .collect(),
        );
        println!(
            "\nFigure 6 — active CPU frequency over the six runs:\n{}",
            scrubjay::textplot::render(&[freq_series], 72, 12)
        );
    }

    // Per-run means — the Figure 6 signatures.
    println!("\nPer-run derived means:");
    println!("run  app       freq(MHz)  instr/ms     mem-reads/ms  margin(dC)");
    let mut means = Vec::new();
    for (i, samples) in per_run.iter().enumerate() {
        let n = samples.len().max(1) as f64;
        let mean = |f: fn(&(f64, f64, f64, f64)) -> f64| samples.iter().map(f).sum::<f64>() / n;
        let (f, instr, m, g) = (mean(|s| s.0), mean(|s| s.1), mean(|s| s.2), mean(|s| s.3));
        println!(
            "{:3}  {:8}  {f:9.0}  {instr:11.0}  {m:12.0}  {g:9.1}",
            i + 1,
            if i < 3 { "mg.C" } else { "prime95" },
        );
        means.push((f, instr, m, g));
    }

    // Assert the paper's qualitative result.
    let mgc = &means[0..3];
    let prime = &means[3..6];
    let avg = |s: &[(f64, f64, f64, f64)], f: fn(&(f64, f64, f64, f64)) -> f64| {
        s.iter().map(f).sum::<f64>() / s.len() as f64
    };
    let mgc_freq = avg(mgc, |s| s.0);
    let prime_freq = avg(prime, |s| s.0);
    let mgc_instr = avg(mgc, |s| s.1);
    let prime_instr = avg(prime, |s| s.1);
    println!(
        "\nmg.C:    full frequency ({mgc_freq:.0} MHz ~ base {}), low instruction rate",
        cfg.base_mhz
    );
    println!(
        "prime95: throttled ({prime_freq:.0} MHz), high instruction rate ({:.1}x mg.C)",
        prime_instr / mgc_instr
    );
    assert!(mgc_freq > 0.95 * cfg.base_mhz, "mg.C should not throttle");
    assert!(
        prime_freq < 0.75 * cfg.base_mhz,
        "prime95 should throttle aggressively"
    );
    assert!(
        prime_instr > 2.0 * mgc_instr,
        "prime95 should retire instructions faster"
    );
    Ok(())
}
