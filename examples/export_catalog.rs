//! Export the DAT1 scenario catalog to a directory of CSV + schema
//! sidecar pairs — the on-disk format `sjq --data` and `sjserved --data`
//! consume.
//!
//! Run with: `cargo run --release --example export_catalog -- DIR`

use scrubjay::catalog_io::write_schema_sidecar;
use scrubjay::prelude::*;
use sjcore::wrappers::unwrap_csv;
use sjdata::{dat1, Dat1Config};

fn main() -> sjcore::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dat1-catalog".into());
    std::fs::create_dir_all(&dir).map_err(|e| sjcore::SjError::Io(e.to_string()))?;

    let ctx = ExecCtx::local();
    let cfg = Dat1Config {
        racks: 6,
        nodes_per_rack: 6,
        amg_rack_index: 3,
        amg_nodes: 4,
        background_jobs: 4,
        duration_secs: 3600,
        ..Dat1Config::default()
    };
    let (catalog, truth) = dat1(&ctx, &cfg)?;
    for name in catalog.dataset_names() {
        let ds = catalog.dataset(name)?;
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, unwrap_csv(ds)?).map_err(|e| sjcore::SjError::Io(e.to_string()))?;
        write_schema_sidecar(ds.schema(), &path)?;
        println!("wrote {path} (+ .schema.json), {} rows", ds.count()?);
    }
    println!(
        "DAT window {}..{}; AMG on {}",
        truth.window.start, truth.window.end, truth.amg_rack
    );
    println!("try: sjserved --data {dir}");
    Ok(())
}
