//! Quickstart: wrap a CSV, annotate it, query by dimensions, and unwrap
//! the derived result.
//!
//! Run with: `cargo run --release --example quickstart`

use scrubjay::prelude::*;
use sjcore::wrappers::{unwrap_csv, wrap_csv, CsvOptions};

fn main() -> sjcore::Result<()> {
    let ctx = ExecCtx::local();
    let mut catalog = Catalog::default_hpc();

    // --- 1. Wrap raw tables ------------------------------------------------
    // Node temperature samples (note the column names differ between
    // sources — ScrubJay matches them through semantics, not names).
    let temps_csv = "\
timestamp,node_id,node_temp
2017-03-27 16:43:27,cab5,67.4
2017-03-27 16:43:27,cab6,61.2
2017-03-27 16:45:27,cab5,68.1
2017-03-27 16:45:27,cab6,60.9
";
    let temps_schema = Schema::new(vec![
        FieldDef::new("timestamp", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("node_id", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("node_temp", FieldSemantics::value("temperature", "celsius")),
    ])?;
    let temps = wrap_csv(
        &ctx,
        temps_csv,
        temps_schema,
        catalog.dict(),
        "node_temps",
        &CsvOptions::default(),
    )?;

    // The node/rack layout, from a facility administrator.
    let layout_csv = "\
NODEID,rack
cab5,rack17
cab6,rack18
";
    let layout_schema = Schema::new(vec![
        FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])?;
    let layout = wrap_csv(
        &ctx,
        layout_csv,
        layout_schema,
        catalog.dict(),
        "node_layout",
        &CsvOptions::default(),
    )?;

    catalog.register_dataset("node_temps", temps)?;
    catalog.register_dataset("node_layout", layout)?;

    // --- 2. Query by dimensions --------------------------------------------
    // "Temperatures per rack" — no table names, no join conditions.
    let query = Query::new(["rack"], vec![QueryValue::dim("temperature")]);
    let engine = QueryEngine::new(&catalog);
    let plan = engine.solve(&query)?;

    println!("Query: {}", query.describe());
    println!(
        "\nDerivation sequence found by the engine:\n{}",
        plan.describe()
    );
    println!("Reproducible JSON plan:\n{}\n", plan.to_json());

    // --- 3. Execute and unwrap ----------------------------------------------
    let result = plan.execute(&catalog, None)?;
    println!("Result ({} rows):\n{}", result.count()?, result.show(10)?);
    println!("Unwrapped back to CSV:\n{}", unwrap_csv(&result)?);
    Ok(())
}
