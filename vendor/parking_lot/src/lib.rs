//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `parking_lot` cannot be fetched. This crate provides the small
//! slice of its API the workspace uses — non-poisoning [`Mutex`] and
//! [`RwLock`] with guard types — implemented over `std::sync`. Poisoned
//! std locks are recovered transparently, matching parking_lot's
//! "poisoning does not exist" semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
