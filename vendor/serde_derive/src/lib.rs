//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored tree-model serde, without syn/quote (neither is available
//! offline). The input item is parsed directly from the token stream.
//!
//! Supported shapes: unit/newtype/tuple/named structs; enums with
//! unit/newtype/tuple/named variants; externally tagged representation by
//! default plus the container attributes the workspace uses:
//! `#[serde(tag = "...")]` (internal tagging, unit+named variants only)
//! and `#[serde(rename_all = "snake_case")]`. Generic types are not
//! supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    kind: Kind,
    tag: Option<String>,
    snake_case: bool,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut snake_case = false;

    // Leading attributes; harvest #[serde(...)] container attributes.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut tag, &mut snake_case);
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }

    let kind = if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde derive: expected enum body, found {other}"),
        };
        Kind::Enum(parse_variants(body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => panic!("serde derive: unexpected struct body: {other:?}"),
        }
    };

    Container {
        name,
        kind,
        tag,
        snake_case,
    }
}

/// Recognize `serde ( tag = "...", rename_all = "..." )` attribute bodies.
fn parse_serde_attr(stream: TokenStream, tag: &mut Option<String>, snake_case: &mut bool) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        let key = match &inner[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        if matches!(inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                let raw = lit.to_string();
                let value = raw.trim_matches('"').to_string();
                match key.as_str() {
                    "tag" => *tag = Some(value),
                    "rename_all" => {
                        if value == "snake_case" {
                            *snake_case = true;
                        } else {
                            panic!("serde derive (vendored): unsupported rename_all = {value:?}");
                        }
                    }
                    other => panic!("serde derive (vendored): unsupported attribute `{other}`"),
                }
            }
            j += 4; // key = "lit" ,
        } else {
            panic!("serde derive (vendored): unsupported attribute form `{key}`");
        }
    }
}

/// Skip one `#[...]` attribute starting at `i`; return the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + bracket group
    }
    i
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Advance past a type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        i += 1; // name
        i += 1; // ':'
        i = skip_type(&tokens, i);
        i += 1; // ','
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
        i += 1; // ','
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Optional discriminant: `= expr` until the separating comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream)
// ---------------------------------------------------------------------------

/// serde's SnakeCase rename rule: `_` before every non-leading uppercase.
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn wire_name(c: &Container, variant: &str) -> String {
    if c.snake_case {
        snake(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let wire = wire_name(c, &v.name);
                let vn = &v.name;
                let arm = if let Some(tag) = &c.tag {
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Map(vec![(::std::string::String::from(\"{tag}\"), ::serde::Content::Str(::std::string::String::from(\"{wire}\")))])"
                        ),
                        Shape::Named(fields) => {
                            let mut items = vec![format!(
                                "(::std::string::String::from(\"{tag}\"), ::serde::Content::Str(::std::string::String::from(\"{wire}\")))"
                            )];
                            items.extend(fields.iter().map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                )
                            }));
                            let pat: Vec<&str> = fields.iter().map(String::as_str).collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![{}])",
                                pat.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Tuple(_) => panic!(
                            "serde derive (vendored): internally tagged tuple variants are unsupported"
                        ),
                    }
                } else {
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{wire}\"))"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Content::Map(vec![(::std::string::String::from(\"{wire}\"), ::serde::Serialize::serialize(x0))])"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(::std::string::String::from(\"{wire}\"), ::serde::Content::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let pat: Vec<&str> = fields.iter().map(String::as_str).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(::std::string::String::from(\"{wire}\"), ::serde::Content::Map(vec![{}]))])",
                                pat.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(Shape::Unit) => format!(
            "match content {{ ::serde::Content::Null => Ok({name}), _ => Err(::serde::derr(\"expected null for unit struct {name}\")) }}"
        ),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(content)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                .collect();
            format!(
                "{{ let seq = content.as_seq().ok_or_else(|| ::serde::derr(\"expected sequence for {name}\"))?;\n\
                   if seq.len() != {n} {{ return Err(::serde::derr(\"wrong tuple arity for {name}\")); }}\n\
                   Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(map, \"{f}\")?"))
                .collect();
            format!(
                "{{ let map = content.as_map().ok_or_else(|| ::serde::derr(\"expected map for {name}\"))?;\n\
                   Ok({name} {{ {} }}) }}",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            if let Some(tag) = &c.tag {
                let mut arms = Vec::new();
                for v in variants {
                    let wire = wire_name(c, &v.name);
                    let vn = &v.name;
                    let arm = match &v.shape {
                        Shape::Unit => format!("\"{wire}\" => Ok({name}::{vn})"),
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(map, \"{f}\")?"))
                                .collect();
                            format!("\"{wire}\" => Ok({name}::{vn} {{ {} }})", items.join(", "))
                        }
                        Shape::Tuple(_) => panic!(
                            "serde derive (vendored): internally tagged tuple variants are unsupported"
                        ),
                    };
                    arms.push(arm);
                }
                format!(
                    "{{ let map = content.as_map().ok_or_else(|| ::serde::derr(\"expected map for {name}\"))?;\n\
                       let tagv = content.get(\"{tag}\").and_then(|c| c.as_str()).ok_or_else(|| ::serde::derr(\"missing tag `{tag}` for {name}\"))?;\n\
                       match tagv {{ {} , other => Err(::serde::derr(format!(\"unknown {name} variant `{{other}}`\"))) }} }}",
                    arms.join(", ")
                )
            } else {
                let mut unit_arms = Vec::new();
                let mut data_arms = Vec::new();
                for v in variants {
                    let wire = wire_name(c, &v.name);
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            unit_arms.push(format!("\"{wire}\" => Ok({name}::{vn})"));
                        }
                        Shape::Tuple(1) => data_arms.push(format!(
                            "\"{wire}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(value)?))"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                                .collect();
                            data_arms.push(format!(
                                "\"{wire}\" => {{ let seq = value.as_seq().ok_or_else(|| ::serde::derr(\"expected sequence for {name}::{vn}\"))?;\n\
                                   if seq.len() != {n} {{ return Err(::serde::derr(\"wrong arity for {name}::{vn}\")); }}\n\
                                   Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            ));
                        }
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(vmap, \"{f}\")?"))
                                .collect();
                            data_arms.push(format!(
                                "\"{wire}\" => {{ let vmap = value.as_map().ok_or_else(|| ::serde::derr(\"expected map for {name}::{vn}\"))?;\n\
                                   Ok({name}::{vn} {{ {} }}) }}",
                                items.join(", ")
                            ));
                        }
                    }
                }
                let unit_match = if unit_arms.is_empty() {
                    String::from(
                        "::serde::Content::Str(_) => Err(::serde::derr(\"unexpected string\")),",
                    )
                } else {
                    format!(
                        "::serde::Content::Str(s) => match s.as_str() {{ {} , other => Err(::serde::derr(format!(\"unknown {name} variant `{{other}}`\"))) }},",
                        unit_arms.join(", ")
                    )
                };
                let data_match = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!(
                        "::serde::Content::Map(m) if m.len() == 1 => {{\n\
                           let (key, value) = &m[0];\n\
                           match key.as_str() {{ {} , other => Err(::serde::derr(format!(\"unknown {name} variant `{{other}}`\"))) }} }},",
                        data_arms.join(", ")
                    )
                };
                format!(
                    "match content {{ {unit_match} {data_match} other => Err(::serde::derr(format!(\"cannot deserialize {name} from {{}}\", other.kind()))) }}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
