//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen_range` over integer and float ranges, and
//! [`seq::SliceRandom`] with `shuffle`/`choose`. The uniform-sampling
//! implementations are simple and unbiased enough for synthetic-data
//! generation; they are not a statistical-quality replacement.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Create from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create from a `u64`, expanding it with SplitMix64 (deterministic,
    /// matching rand's intent of "any u64 gives a decent stream").
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`. Panics if `low >= high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, n)` via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry to stay unbiased.
    }
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let off = uniform_u64(rng, span);
                ((low as $wide).wrapping_add(off as $wide)) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span + 1);
                ((low as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_float {
    ($($t:ty, $bits:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                low + (high - low) * unit
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                Self::sample_range(rng, low, high)
            }
        }
    )*};
}

impl_sample_float!(f64, 53; f32, 24);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods for random generators.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A random `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_range(self, 0.0, 1.0) < p
    }

    /// Return true with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio: ratio out of range"
        );
        u32::sample_range(self, 0, denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Extension trait for slices: random element choice and shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Reexports of the core traits (the real rand re-exports `rand_core`).
pub mod rngs {
    pub use super::{RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(3);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
