//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored serde's [`Content`] tree.
//! Covers the workspace surface: [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`from_str`], [`from_slice`], and an [`Error`] type.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Convenience alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

fn err(msg: impl Into<String>) -> Error {
    Error(msg.into())
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Serialize `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` is the shortest representation that round-trips and keeps
        // a decimal point (1.0 renders as "1.0", not "1").
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(c: &Content, depth: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse(s)?;
    Ok(T::deserialize(&content)?)
}

/// Deserialize a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| err(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parse a JSON document into a [`Content`] tree.
fn parse(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self.peek().ok_or_else(|| err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.bump()?;
        if got != b {
            return Err(err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(err(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek().ok_or_else(|| err("unexpected end of input"))? {
            b'n' => self.literal("null", Content::Null),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'"' => Ok(Content::Str(self.string()?)),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(err(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Content::Seq(items)),
                other => {
                    return Err(err(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Content::Map(entries)),
                other => {
                    return Err(err(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| err(format!("invalid codepoint {cp:#x}")))?,
                        );
                    }
                    other => return Err(err(format!("invalid escape `\\{}`", other as char))),
                },
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b)?;
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| err(format!("invalid UTF-8 in string: {e}")))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| err("invalid \\u escape"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| err(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> Result<usize> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(err("invalid UTF-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v = Content::Map(vec![
            ("name".into(), Content::Str("node\"7\"\n".into())),
            ("count".into(), Content::I64(-3)),
            ("ratio".into(), Content::F64(0.25)),
            (
                "tags".into(),
                Content::Seq(vec![Content::Bool(true), Content::Null]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        let back: Content = from_str(&s).unwrap();
        let s2 = to_string(&back).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn parses_nested_documents() {
        let c: Content = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        let map = c.as_map().unwrap();
        assert_eq!(map.len(), 2);
        let a = map[0].1.as_seq().unwrap();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn floats_keep_their_point() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
    }

    #[test]
    fn unicode_escapes_decode() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Content>("1 2").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Content::Map(vec![(
            "xs".into(),
            Content::Seq(vec![Content::I64(1), Content::I64(2)]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Content = from_str(&pretty).unwrap();
        assert_eq!(to_string(&v).unwrap(), to_string(&back).unwrap());
    }
}
