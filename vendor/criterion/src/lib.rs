//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring with plain
//! wall-clock timing and printing one summary line per benchmark. The
//! generated `main` runs benches only when invoked with `--bench` (as
//! `cargo bench` does), so `cargo test` treats harness-less bench binaries
//! as fast no-ops.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the stand-in runs one setup per
/// iteration regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: either a bare function name or name/parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times a routine for the configured number of samples.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` back to back for the sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        }
    }
}

/// A named set of related benchmarks sharing sample-size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = b.mean();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:?} per iter ({} iters){rate}",
            self.name, id.id, mean, b.iters
        );
    }
}

/// Entry point handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Top-level single benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Bundle bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main`. Benches run only under `cargo bench` (which passes
/// `--bench`); any other invocation — e.g. `cargo test` — exits immediately.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--bench") {
                $( $group(); )+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs_groups() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("join", 42).id, "join/42");
        assert_eq!(BenchmarkId::from_parameter("on").id, "on");
    }
}
