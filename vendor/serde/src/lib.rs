//! Offline stand-in for the `serde` crate.
//!
//! The real serde cannot be fetched in this environment, so this crate
//! reimplements the *shape* of serde the workspace relies on: a
//! [`Serialize`]/[`Deserialize`] trait pair with `#[derive]` support and
//! container attributes (`#[serde(tag = "...", rename_all =
//! "snake_case")]`). Instead of serde's visitor architecture, both traits
//! go through an owned tree type, [`Content`], which `serde_json` renders
//! to and parses from JSON text. This trades streaming performance for a
//! radically smaller implementation; the workspace's payloads (plans,
//! schemas, cached row sets, service requests) are all tree-friendly.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The self-describing value tree both traits convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with ordered string keys (JSON objects).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map view.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short description of the tree's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error: a message plus nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Build a deserialization error (used by generated code).
pub fn derr(msg: impl Into<String>) -> Error {
    Error(msg.into())
}

/// Types convertible into the [`Content`] tree.
pub trait Serialize {
    /// Convert to a content tree.
    fn serialize(&self) -> Content;
}

/// Types reconstructible from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a content tree.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

/// Fetch and deserialize a struct field from a map; a missing key
/// deserializes as `Content::Null` so `Option` fields default to `None`
/// (matching serde_derive's treatment of `Option`).
pub fn field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v).map_err(|e| derr(format!("field `{key}`: {e}"))),
        None => T::deserialize(&Content::Null).map_err(|_| derr(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize implementations for std types
// ---------------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Content::I64(v as i64) } else { Content::U64(v) }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Sort keys so serialization (and anything hashed from it) is
        // deterministic across runs despite HashMap's random state.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types
// ---------------------------------------------------------------------------

fn int_from(content: &Content) -> Option<i128> {
    match content {
        Content::I64(i) => Some(*i as i128),
        Content::U64(u) => Some(*u as i128),
        Content::F64(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let v = int_from(content)
                    .ok_or_else(|| derr(format!("expected integer, found {}", content.kind())))?;
                <$t>::try_from(v).map_err(|_| derr(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(derr(format!("expected bool, found {}", content.kind()))),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            _ => Err(derr(format!("expected number, found {}", content.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        f64::deserialize(content).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(derr(format!("expected string, found {}", content.kind()))),
        }
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let s = String::deserialize(content)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(derr("expected single-character string")),
        }
    }
}

impl Deserialize for () {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            _ => Err(derr(format!("expected null, found {}", content.kind()))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(Arc::from(s.as_str())),
            _ => Err(derr(format!("expected string, found {}", content.kind()))),
        }
    }
}

impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        Vec::<T>::deserialize(content).map(Arc::from)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(derr(format!("expected sequence, found {}", content.kind()))),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| derr(format!("expected sequence, found {}", content.kind())))?;
                if seq.len() != $len {
                    return Err(derr(format!("expected tuple of {}, found {} items", $len, seq.len())));
                }
                Ok(($($t::deserialize(&seq[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let map = content
            .as_map()
            .ok_or_else(|| derr(format!("expected map, found {}", content.kind())))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let map = content
            .as_map()
            .ok_or_else(|| derr(format!("expected map, found {}", content.kind())))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_round_trips() {
        let v: Vec<(String, Option<u32>)> = vec![("a".into(), Some(3)), ("b".into(), None)];
        let c = v.serialize();
        let back: Vec<(String, Option<u32>)> = Deserialize::deserialize(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_from_missing_field_is_none() {
        let map = vec![("present".to_string(), Content::I64(1))];
        let missing: Option<i64> = field(&map, "absent").unwrap();
        assert_eq!(missing, None);
        let present: Option<i64> = field(&map, "present").unwrap();
        assert_eq!(present, Some(1));
        let err = field::<i64>(&map, "absent").unwrap_err();
        assert!(err.0.contains("missing field"));
    }

    #[test]
    fn hashmap_serializes_with_sorted_keys() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1u8);
        m.insert("alpha".to_string(), 2u8);
        match m.serialize() {
            Content::Map(entries) => {
                assert_eq!(entries[0].0, "alpha");
                assert_eq!(entries[1].0, "zeta");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn arc_str_round_trips() {
        let s: Arc<str> = Arc::from("hello");
        let back: Arc<str> = Deserialize::deserialize(&s.serialize()).unwrap();
        assert_eq!(&*back, "hello");
    }

    #[test]
    fn numbers_cross_deserialize() {
        assert_eq!(f64::deserialize(&Content::I64(3)).unwrap(), 3.0);
        assert_eq!(u8::deserialize(&Content::F64(7.0)).unwrap(), 7);
        assert!(u8::deserialize(&Content::I64(300)).is_err());
        assert!(u8::deserialize(&Content::F64(1.5)).is_err());
    }
}
