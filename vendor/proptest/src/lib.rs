//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace tests use: the `proptest!` macro with
//! an optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, range / tuple / collection / `any`
//! strategies, and a deterministic [`TestRunner`]. Cases are sampled from a
//! seed derived from the test name, so failures reproduce across runs.
//! There is no shrinking: a failing case reports its index and message.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Mark the current case as failed with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// RNG and runner
// ---------------------------------------------------------------------------

/// SplitMix64 generator: tiny, fast, and deterministic per seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives the configured number of cases and panics on the first failure.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        for i in 0..self.config.cases {
            let mut rng = TestRng::from_seed(base ^ ((i as u64) << 32 | 0x5bd1_e995));
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest `{name}` failed at case {i}/{}: {e}",
                    self.config.cases
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-range strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespaced strategy constructors (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Vectors with a length drawn from `size` and elements from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.gen_range(self.size.start..self.size.end)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// The full-range bool strategy.
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                use rand::RngCore;
                rng.next_u64() & 1 == 1
            }
        }

        pub const ANY: AnyBool = AnyBool;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each function's arguments are sampled from the
/// given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (
        @funcs ($cfg:expr); $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config);
            runner.run(stringify!($name), |prop_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)*
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a condition inside a property test; failure fails only this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Assert two values are not equal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  both: {:?}",
                        format!($($fmt)+),
                        l
                    )));
                }
            }
        }
    };
}

/// The glob import the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run("det", |rng| {
            first.push(Strategy::sample(&(0u32..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run("det", |rng| {
            second.push(Strategy::sample(&(0u32..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != first[0]), "values should vary");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 3u8..9, (a, b) in (0i64..5, -2.0f64..2.0)) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((0..5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6, "len={}", xs.len());
        }

        #[test]
        fn bool_any_samples(flag in prop::bool::ANY) {
            // The strategy must yield a plain bool; exercise both macro
            // paths without a tautological assertion.
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
