//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam signature
//! (closures receive a `&Scope`, the call returns a `Result` that is `Err`
//! when any thread in the scope panicked), implemented over
//! `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _env: PhantomData<&'env ()>,
    }

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let s = Scope {
                        inner,
                        _env: PhantomData,
                    };
                    f(&s)
                }),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. Returns `Err` if the closure or any unjoined spawned thread
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope {
                    inner: s,
                    _env: PhantomData,
                };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_thread_yields_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
