//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (Bernstein's ChaCha
//! with 8 rounds) exposing the `ChaCha8Rng` name and the `rand_core`
//! trait re-exports the workspace imports. Streams are deterministic for
//! a given seed, which is all the synthetic-data generators require; the
//! word stream is not bit-compatible with the real `rand_chacha` crate.

#![forbid(unsafe_code)]

pub use rand::RngCore;

/// Re-export of the core traits under the path `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// A ChaCha generator with 8 rounds, seeded from 32 bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state[4..12]).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut mean = 0.0;
        for _ in 0..1000 {
            mean += rng.gen_range(0.0..1.0);
        }
        mean /= 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean={mean}");
    }

    #[test]
    fn words_look_uniform_per_bit() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ones = [0u32; 64];
        for _ in 0..256 {
            let w = rng.next_u64();
            for (i, count) in ones.iter_mut().enumerate() {
                *count += ((w >> i) & 1) as u32;
            }
        }
        for (i, &count) in ones.iter().enumerate() {
            assert!((64..192).contains(&count), "bit {i}: {count}/256");
        }
    }
}
