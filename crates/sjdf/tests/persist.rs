//! Integration tests for `Rdd::persist` / `Rdd::unpersist`: exactly-once
//! partition computation, byte accounting and LRU eviction in the
//! context's [`StageCache`], and shuffle-output reuse across repeated
//! lineage evaluations.

use sjdf::{ClusterSpec, ExecCtx, Rdd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn ctx() -> ExecCtx {
    ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
}

/// A generated source that counts how many times any partition closure
/// actually ran.
fn counted_source(c: &ExecCtx, parts: usize, per_part: u64) -> (Rdd<u64>, Arc<AtomicUsize>) {
    let runs = Arc::new(AtomicUsize::new(0));
    let probe = Arc::clone(&runs);
    let rdd = Rdd::generate(c, parts, move |i| {
        probe.fetch_add(1, Ordering::SeqCst);
        let base = i as u64 * per_part;
        (base..base + per_part).collect()
    });
    (rdd, runs)
}

#[test]
fn persist_computes_each_partition_exactly_once() {
    let c = ctx();
    let (source, runs) = counted_source(&c, 6, 10);
    let expected: Vec<u64> = (0..60).collect();

    let persisted = source.persist();
    assert_eq!(persisted.collect().unwrap(), expected);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        6,
        "cold run computes every partition"
    );
    assert_eq!(persisted.collect().unwrap(), expected);
    assert_eq!(persisted.count().unwrap(), 60);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        6,
        "warm evaluations must serve every partition from the stage cache"
    );

    let stats = c.stage_cache().stats();
    assert_eq!(stats.misses, 6);
    assert!(stats.hits >= 12, "two warm evaluations over 6 partitions");
    assert!(
        stats.bytes > 0,
        "cached partitions must be accounted in bytes"
    );
}

#[test]
fn without_persist_every_evaluation_recomputes() {
    let c = ctx();
    let (source, runs) = counted_source(&c, 4, 5);
    source.collect().unwrap();
    source.collect().unwrap();
    assert_eq!(runs.load(Ordering::SeqCst), 8);
}

#[test]
fn eviction_keeps_bytes_under_a_small_budget() {
    let c = ctx();
    // Each partition holds 1000 u64s => ~8 KB; budget fits only ~2.
    c.set_cache_budget(20 * 1024);
    let (source, runs) = counted_source(&c, 8, 1000);
    let persisted = source.persist();

    persisted.collect().unwrap();
    let stats = c.stage_cache().stats();
    assert!(
        stats.bytes <= 20 * 1024,
        "cache bytes {} exceed the configured budget",
        stats.bytes
    );
    assert!(
        stats.evictions > 0,
        "a budget smaller than the dataset must evict"
    );
    assert!(stats.entries < 8, "not all 8 partitions can stay resident");

    // Evicted partitions are recomputed from lineage, transparently.
    let expected: Vec<u64> = (0..8000).collect();
    assert_eq!(persisted.collect().unwrap(), expected);
    assert!(
        runs.load(Ordering::SeqCst) > 8,
        "evicted partitions must be recomputed on the second pass"
    );
}

#[test]
fn unpersist_releases_accounted_bytes() {
    let c = ctx();
    let (source, runs) = counted_source(&c, 4, 100);
    let persisted = source.persist();
    persisted.collect().unwrap();

    let before = c.stage_cache().stats();
    assert_eq!(before.entries, 4);
    assert!(before.bytes > 0);

    let released = persisted.unpersist();
    assert!(released > 0, "unpersist must report the bytes it freed");
    let after = c.stage_cache().stats();
    assert_eq!(after.entries, 0);
    assert_eq!(after.bytes, 0);

    // The handle stays usable and re-caches from lineage.
    assert_eq!(persisted.count().unwrap(), 400);
    assert_eq!(runs.load(Ordering::SeqCst), 8);
    assert_eq!(c.stage_cache().stats().entries, 4);
}

#[test]
fn unpersist_on_never_persisted_rdd_is_a_noop() {
    let c = ctx();
    let rdd = Rdd::parallelize(&c, vec![1u64, 2, 3], 2);
    assert_eq!(rdd.unpersist(), 0);
}

#[test]
fn concurrent_collects_share_one_computation() {
    let c = ctx();
    let (source, runs) = counted_source(&c, 8, 50);
    let persisted = Arc::new(source.map(|x| x * 2).persist());
    let expected: Vec<u64> = (0..400).map(|x| x * 2).collect();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let rdd = Arc::clone(&persisted);
            let want = expected.clone();
            std::thread::spawn(move || assert_eq!(rdd.collect().unwrap(), want))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(
        runs.load(Ordering::SeqCst),
        8,
        "eight concurrent evaluations must compute each partition once"
    );
    let stats = c.stage_cache().stats();
    assert_eq!(
        stats.misses, 8,
        "one miss per partition, however many racers"
    );
}

#[test]
fn cached_re_evaluation_runs_zero_shuffle_tasks() {
    let c = ctx();
    let pairs = Rdd::generate(&c, 4, |i| {
        (0..100u64)
            .map(|x| (x % 7, x + i as u64))
            .collect::<Vec<_>>()
    });
    let grouped = pairs.reduce_by_key(4, |a, b| a + b).persist();

    let mut cold = grouped.collect().unwrap();
    let baseline = c.metrics.report();
    assert!(baseline.wide_ops() > 0, "the cold run must have shuffled");

    let mut warm = grouped.collect().unwrap();
    let delta = c.metrics.report().delta_since(&baseline);
    assert_eq!(
        delta.wide_ops(),
        0,
        "a persisted lineage re-evaluation must not reach the shuffle: {delta:?}"
    );
    assert!(
        delta.cache_hits > 0,
        "warm run must be served by the stage cache"
    );
    assert_eq!(delta.cache_misses, 0);

    cold.sort();
    warm.sort();
    assert_eq!(cold, warm);
}

#[test]
fn shuffle_outputs_are_reused_across_evaluations_even_without_persist() {
    // The shuffle cell itself registers with the stage cache, so a
    // lineage evaluated twice shuffles once even when the user never
    // calls persist().
    let c = ctx();
    let pairs = Rdd::generate(&c, 4, |i| {
        (0..100u64)
            .map(|x| (x % 5, x + i as u64))
            .collect::<Vec<_>>()
    });
    let grouped = pairs.group_by_key(4);

    grouped.count().unwrap();
    let baseline = c.metrics.report();
    let shuffled_cold = baseline.total_shuffle_bytes();
    assert!(shuffled_cold > 0);

    grouped.count().unwrap();
    let delta = c.metrics.report().delta_since(&baseline);
    assert_eq!(
        delta.total_shuffle_bytes(),
        0,
        "second evaluation must reuse the materialized shuffle: {delta:?}"
    );
    assert!(delta.cache_hits > 0);
}
