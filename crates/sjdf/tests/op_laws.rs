//! Property tests: the data-parallel operations obey the laws their
//! sequential counterparts do, independent of partitioning.

use proptest::prelude::*;
use sjdf::{ClusterSpec, ExecCtx, Rdd};
use std::collections::BTreeMap;

fn ctx() -> ExecCtx {
    ExecCtx::new(ClusterSpec::new(1, 3).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// map/filter/flat_map agree with the sequential iterator semantics
    /// regardless of the partition count.
    #[test]
    fn narrow_ops_match_sequential(
        data in prop::collection::vec(0u64..1000, 0..200),
        parts in 1usize..9,
    ) {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, data.clone(), parts);
        let got = rdd
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect()
            .unwrap();
        let expected: Vec<u64> = data
            .iter()
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// count and collect().len() agree; union concatenates.
    #[test]
    fn count_and_union_laws(
        a in prop::collection::vec(0i64..100, 0..100),
        b in prop::collection::vec(0i64..100, 0..100),
        parts in 1usize..6,
    ) {
        let c = ctx();
        let ra = Rdd::parallelize(&c, a.clone(), parts);
        let rb = Rdd::parallelize(&c, b.clone(), parts);
        prop_assert_eq!(ra.count().unwrap(), a.len());
        let u = ra.union(&rb);
        prop_assert_eq!(u.count().unwrap(), a.len() + b.len());
        let mut expected = a.clone();
        expected.extend(&b);
        prop_assert_eq!(u.collect().unwrap(), expected);
    }

    /// group_by_key groups exactly like a sequential BTreeMap fold,
    /// for any partitioning on either side of the shuffle.
    #[test]
    fn group_by_key_matches_reference(
        pairs in prop::collection::vec((0u64..10, 0u64..100), 0..150),
        in_parts in 1usize..6,
        out_parts in 1usize..6,
    ) {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, pairs.clone(), in_parts);
        let mut got: Vec<(u64, Vec<u64>)> = rdd
            .group_by_key(out_parts)
            .map(|(k, mut vs)| { vs.sort(); (k, vs) })
            .collect()
            .unwrap();
        got.sort();
        let mut expected: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (k, v) in pairs {
            expected.entry(k).or_default().push(v);
        }
        let mut expected: Vec<(u64, Vec<u64>)> = expected
            .into_iter()
            .map(|(k, mut vs)| { vs.sort(); (k, vs) })
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// reduce_by_key(+) equals group_by_key + sum.
    #[test]
    fn reduce_by_key_equals_grouped_sum(
        pairs in prop::collection::vec((0u64..8, 0u64..100), 0..150),
        parts in 1usize..6,
    ) {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, pairs, 4);
        let mut a = rdd.reduce_by_key(parts, |x, y| x + y).collect().unwrap();
        a.sort();
        let mut b: Vec<(u64, u64)> = rdd
            .group_by_key(parts)
            .map(|(k, vs)| (k, vs.iter().sum::<u64>()))
            .collect()
            .unwrap();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// sort_by_key yields a globally sorted permutation of the input.
    #[test]
    fn sort_by_key_is_a_sorted_permutation(
        pairs in prop::collection::vec((-50i64..50, 0u64..100), 0..200),
        parts in 1usize..6,
    ) {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, pairs.clone(), 5);
        let got = rdd.sort_by_key(parts).collect().unwrap();
        prop_assert_eq!(got.len(), pairs.len());
        for w in got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut expected = pairs.clone();
        expected.sort();
        prop_assert_eq!(got_sorted, expected);
    }

    /// join equals the nested-loop reference with multiplicities.
    #[test]
    fn join_matches_nested_loop(
        left in prop::collection::vec((0u64..6, 0u64..50), 0..60),
        right in prop::collection::vec((0u64..6, 0u64..50), 0..60),
        parts in 1usize..5,
    ) {
        let c = ctx();
        let l = Rdd::parallelize(&c, left.clone(), 3);
        let r = Rdd::parallelize(&c, right.clone(), 2);
        let mut got = l.join(&r, parts).collect().unwrap();
        got.sort();
        let mut expected: Vec<(u64, (u64, u64))> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    expected.push((lk, (lv, rv)));
                }
            }
        }
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// distinct equals the set of inputs.
    #[test]
    fn distinct_matches_set(
        data in prop::collection::vec(0u32..40, 0..200),
        parts in 1usize..6,
    ) {
        let c = ctx();
        let mut got = Rdd::parallelize(&c, data.clone(), 4)
            .distinct(parts)
            .collect()
            .unwrap();
        got.sort();
        let mut expected: Vec<u32> = data;
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    /// Repartitioning never changes the multiset of elements.
    #[test]
    fn repartition_preserves_content(
        data in prop::collection::vec(0u64..1000, 0..200),
        from in 1usize..6,
        to in 1usize..9,
    ) {
        let c = ctx();
        let mut got = Rdd::parallelize(&c, data.clone(), from)
            .repartition(to)
            .collect()
            .unwrap();
        got.sort();
        let mut expected = data;
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// fold with (0, +) equals the sum, for any partitioning.
    #[test]
    fn fold_sums(data in prop::collection::vec(0u64..1000, 0..200), parts in 1usize..8) {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, data.clone(), parts);
        let got = rdd.fold(0u64, |a, x| a + x, |a, b| a + b).unwrap();
        prop_assert_eq!(got, data.iter().sum::<u64>());
    }

    /// The simulated time estimate is monotone in both data volume and
    /// (inversely) node count for any workload.
    #[test]
    fn simtime_monotonicity(
        records in 1_000u64..50_000_000,
        shuffle in 1_000u64..50_000_000,
    ) {
        use sjdf::metrics::{MetricsReport, OpEntry, OpKind, OpMetrics};
        use sjdf::simtime::{estimate, scale_report, CostParams};
        let report = MetricsReport {
            ops: vec![OpEntry {
                name: "group_by_key".into(),
                kind: OpKind::Wide,
                metrics: OpMetrics {
                    records_in: records,
                    records_out: records,
                    shuffle_records: shuffle,
                    shuffle_bytes: shuffle * 32,
                    tasks: 8,
                },
            }],
            ..Default::default()
        };
        let p = CostParams::paper();
        let c1 = ClusterSpec::new(1, 32).unwrap();
        let c10 = ClusterSpec::new(10, 32).unwrap();
        let t1 = estimate(&report, &c1, &p);
        let t10 = estimate(&report, &c10, &p);
        // Compute always shrinks with more nodes; the *total* only does
        // once the workload outweighs the added coordination overhead
        // (for tiny inputs more nodes genuinely cost time).
        prop_assert!(t10.compute <= t1.compute);
        if records >= 20_000_000 {
            prop_assert!(t10.total() <= t1.total());
        }
        let bigger = scale_report(&report, 2.0);
        prop_assert!(estimate(&bigger, &c1, &p).total() > t1.total());
    }
}
