//! Chaos suite: seeded fault schedules driven through real pipelines.
//!
//! The central invariant, checked hundreds of ways here: a pipeline run
//! under any deterministic [`FaultPlan`] either produces output
//! *byte-identical* to the fault-free run (whenever the retry budget
//! suffices) or fails with a typed
//! [`SjdfError::ExhaustedRetries`] — never a panic, a deadlock, or a
//! partial result.
//!
//! Fault schedules are pure functions of their seed, so every test here
//! is exactly reproducible: re-running a failing seed replays the same
//! faults at the same sites. The seeds in `chaos.proptest-regressions`
//! are replayed first (see [`regression_corpus_replays_clean`]).

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use sjdf::{ClusterSpec, ExecCtx, FaultPlan, Rdd, RetryPolicy, SjdfError};

/// A fault-free context: the reference every chaotic run is compared to.
/// Always a *fresh* root context — fault plans are shared across clones,
/// so a reference must never be derived from a chaotic context.
fn quiet_ctx() -> ExecCtx {
    ExecCtx::new(ClusterSpec::new(1, 3).unwrap())
}

/// A context with `plan` installed and a retry budget of `attempts`
/// total attempts, with near-zero backoff so tests stay fast.
fn chaos_ctx(plan: FaultPlan, attempts: u32) -> ExecCtx {
    quiet_ctx()
        .with_retry(RetryPolicy::retries(attempts).with_backoff(
            Duration::from_micros(50),
            2.0,
            Duration::from_millis(2),
        ))
        .with_faults(plan)
}

/// Deterministic key/value records from an xorshift stream.
fn records(seed: u64, n: usize) -> Vec<(u64, u64)> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..n as u64)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 17, i)
        })
        .collect()
}

/// The representative pipeline: narrow ops, a shuffle join, and a
/// grouping shuffle — every fault site the executor has.
fn pipeline(
    ctx: &ExecCtx,
    left: &[(u64, u64)],
    right: &[(u64, u64)],
) -> sjdf::Result<Vec<(u64, Vec<u64>)>> {
    let l = Rdd::parallelize(ctx, left.to_vec(), 4)
        .map(|(k, v)| (k, v * 2))
        .filter(|&(_, v)| v % 3 != 0);
    let r = Rdd::parallelize(ctx, right.to_vec(), 3);
    l.join(&r, 3)
        .map(|(k, (v, w))| (k, v + w))
        .group_by_key(2)
        .collect()
}

/// ISSUE acceptance gate: 100 seeds at task-fail rate 0.2 / retry budget
/// 3. Every recovered run is byte-identical to the fault-free reference
/// (same rows, same order); every non-recovered run is a typed
/// `ExhaustedRetries`. No third outcome exists.
#[test]
fn hundred_seeds_match_fault_free_or_exhaust_cleanly() {
    let left = records(7, 300);
    let right = records(11, 200);
    let expected = pipeline(&quiet_ctx(), &left, &right).unwrap();

    let mut recovered = 0usize;
    let mut exhausted = 0usize;
    let mut injected_total = 0u64;
    for seed in 0..100u64 {
        let plan = FaultPlan::seeded(seed)
            .with_task_fail_rate(0.2)
            .with_shuffle_fail_rate(0.1);
        let ctx = chaos_ctx(plan, 3);
        match pipeline(&ctx, &left, &right) {
            Ok(got) => {
                assert_eq!(got, expected, "seed {seed}: recovered run diverged");
                recovered += 1;
            }
            Err(e @ SjdfError::ExhaustedRetries { .. }) => {
                assert!(
                    e.to_string().contains("exhausted retry budget"),
                    "seed {seed}: ExhaustedRetries lost its stable marker: {e}"
                );
                exhausted += 1;
            }
            Err(e) => panic!("seed {seed}: unexpected error kind: {e}"),
        }
        let report = ctx.failure_report();
        injected_total += report.injected_task_faults + report.injected_shuffle_faults;
        assert!(
            report.task_failures >= report.injected_task_faults,
            "seed {seed}: injected faults not accounted as failures"
        );
    }
    assert_eq!(recovered + exhausted, 100);
    // At rate 0.2 the plans genuinely fire, and budget 3 genuinely
    // recovers most runs — both ends of the invariant are exercised.
    assert!(
        injected_total > 100,
        "plans injected too few faults ({injected_total})"
    );
    assert!(recovered >= 50, "only {recovered}/100 seeds recovered");
    assert!(
        exhausted > 0,
        "no seed exhausted its budget — rate too low to test the error path"
    );
}

/// A poisoned partition fails every attempt: the typed error carries the
/// partition, the attempt count equals the budget, and the failure
/// report shows the exhaustion.
#[test]
fn poisoned_partition_yields_typed_exhausted_retries() {
    let ctx = chaos_ctx(FaultPlan::seeded(1).poison_partition(2), 3);
    let data: Vec<u64> = (0..40).collect();
    let err = Rdd::parallelize(&ctx, data, 4)
        .map(|x| x + 1)
        .collect()
        .unwrap_err();
    match err {
        SjdfError::ExhaustedRetries {
            partition,
            attempts,
            ref last_error,
        } => {
            assert_eq!(partition, 2);
            assert_eq!(attempts, 3);
            assert!(last_error.contains("injected fault:"), "{last_error}");
        }
        other => panic!("expected ExhaustedRetries, got {other}"),
    }
    let report = ctx.failure_report();
    assert_eq!(report.tasks_exhausted, 1);
    assert_eq!(report.task_retries, 2);
    assert!(report.backoff_secs > 0.0);
}

/// With the legacy fail-fast policy (one attempt) an injected fault
/// surfaces exactly as it always did: a `TaskPanic`.
#[test]
fn fail_fast_policy_preserves_legacy_task_panic() {
    let ctx = quiet_ctx().with_faults(FaultPlan::seeded(2).kill_attempt(1, 0));
    let data: Vec<u64> = (0..20).collect();
    let err = Rdd::parallelize(&ctx, data, 2)
        .map(|x| x)
        .collect()
        .unwrap_err();
    assert!(matches!(err, SjdfError::TaskPanic(_)), "got {err}");
}

/// A single transient kill recovers on the second attempt and the
/// recovery is visible in the failure report.
#[test]
fn transient_kill_recovers_and_is_accounted() {
    let data: Vec<u64> = (0..60).collect();
    let expected: Vec<u64> = data.iter().map(|x| x * 7).collect();
    let ctx = chaos_ctx(
        FaultPlan::seeded(3).kill_attempt(1, 0).kill_attempt(3, 0),
        3,
    );
    let got = Rdd::parallelize(&ctx, data, 4)
        .map(|x| x * 7)
        .collect()
        .unwrap();
    assert_eq!(got, expected);
    let report = ctx.failure_report();
    assert_eq!(report.injected_task_faults, 2);
    assert_eq!(report.task_retries, 2);
    assert_eq!(report.tasks_exhausted, 0);
    assert!(!report.is_empty());
}

/// Retried downstream tasks re-fetch persisted parent partitions from
/// the stage cache instead of recomputing the lineage.
#[test]
fn retry_reuses_stage_cache_for_persisted_parents() {
    let data: Vec<(u64, u64)> = records(5, 200);
    let ctx = chaos_ctx(FaultPlan::seeded(4).kill_attempt(0, 0), 4);
    let base = Rdd::parallelize(&ctx, data.clone(), 4)
        .map(|(k, v)| (k % 5, v))
        .persist();
    // Materialize the persisted stage fault-free first, then inject the
    // kill into the consuming shuffle stage.
    let warm = base.count().unwrap();
    assert_eq!(warm, data.len());
    let hits_before = ctx.stage_cache().stats().hits;
    let got = base.reduce_by_key(2, |a, b| a + b).collect().unwrap();
    let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
    for (k, v) in &data {
        *expected.entry(k % 5).or_default() += v;
    }
    let mut got_sorted = got;
    got_sorted.sort();
    assert_eq!(got_sorted, expected.into_iter().collect::<Vec<_>>());
    let stats = ctx.stage_cache().stats();
    assert!(
        stats.hits > hits_before,
        "retry should re-fetch persisted parents from the stage cache \
         (hits {} -> {})",
        hits_before,
        stats.hits
    );
    assert!(ctx.failure_report().task_retries >= 1);
}

/// An injected straggler delay is rescued by speculative re-execution;
/// the result is unaffected.
#[test]
fn injected_delay_is_rescued_by_speculation() {
    let data: Vec<u64> = (0..30).collect();
    let expected: Vec<u64> = data.iter().map(|x| x + 1).collect();
    // Probe for a seed whose schedule delays at least one of the six
    // tasks (decisions are pure, so the probe is exact) without
    // delaying the whole wave.
    let plan = (0..200u64)
        .map(|s| FaultPlan::seeded(s).with_delays(0.12, Duration::from_millis(80)))
        .find(|p| {
            (0..6).any(|part| {
                matches!(
                    p.decide(sjdf::FaultSite::Task, part, 0),
                    Some(sjdf::Fault::Delay(_))
                )
            })
        })
        .expect("some seed under 200 delays a task");
    let retry = RetryPolicy::retries(1).with_speculation(sjdf::SpeculationPolicy {
        multiplier: 4.0,
        min_runtime: Duration::from_millis(15),
        check_interval: Duration::from_millis(2),
    });
    let ctx = quiet_ctx().with_retry(retry).with_faults(plan);
    let got = Rdd::parallelize(&ctx, data, 6)
        .map(|x| x + 1)
        .collect()
        .unwrap();
    assert_eq!(got, expected);
    let report = ctx.failure_report();
    assert!(
        report.injected_delays >= 1,
        "seed injected no delay: {report:?}"
    );
    assert!(
        report.speculative_launched >= 1,
        "no speculative attempt launched against an 80ms straggler: {report:?}"
    );
}

/// Differential shuffle tests: every wide op, run under shuffle-fetch
/// faults with a sufficient budget, agrees with an in-memory reference
/// (`op_laws.rs` style). Fixed seeds keep the schedules reproducible.
#[test]
fn shuffle_ops_match_references_under_fetch_faults() {
    let pairs = records(13, 250);
    let other: Vec<(u64, u64)> = records(29, 150)
        .into_iter()
        .map(|(k, v)| (k, v * 3))
        .collect();

    let mut injected_total = 0u64;
    for seed in [5u64, 17, 40] {
        let plan = FaultPlan::seeded(seed).with_shuffle_fail_rate(0.25);
        let ctx = chaos_ctx(plan, 5);

        // group_by_key vs BTreeMap fold.
        let mut got: Vec<(u64, Vec<u64>)> = Rdd::parallelize(&ctx, pairs.clone(), 4)
            .group_by_key(3)
            .collect()
            .unwrap();
        got.sort();
        let mut reference: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(k, v) in &pairs {
            reference.entry(k).or_default().push(v);
        }
        assert_eq!(
            got,
            reference.clone().into_iter().collect::<Vec<_>>(),
            "group_by_key seed {seed}"
        );

        // reduce_by_key vs summed reference.
        let mut got: Vec<(u64, u64)> = Rdd::parallelize(&ctx, pairs.clone(), 4)
            .reduce_by_key(3, |a, b| a + b)
            .collect()
            .unwrap();
        got.sort();
        let sums: Vec<(u64, u64)> = reference
            .iter()
            .map(|(&k, vs)| (k, vs.iter().sum()))
            .collect();
        assert_eq!(got, sums, "reduce_by_key seed {seed}");

        // cogroup vs per-key bucket reference.
        type CoGrouped = Vec<(u64, (Vec<u64>, Vec<u64>))>;
        let mut got: CoGrouped = Rdd::parallelize(&ctx, pairs.clone(), 4)
            .cogroup(&Rdd::parallelize(&ctx, other.clone(), 3), 3)
            .collect()
            .unwrap();
        got.sort();
        let mut rref: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(k, v) in &other {
            rref.entry(k).or_default().push(v);
        }
        let mut keys: Vec<u64> = reference.keys().chain(rref.keys()).copied().collect();
        keys.sort();
        keys.dedup();
        let cog_ref: CoGrouped = keys
            .into_iter()
            .map(|k| {
                (
                    k,
                    (
                        reference.get(&k).cloned().unwrap_or_default(),
                        rref.get(&k).cloned().unwrap_or_default(),
                    ),
                )
            })
            .collect();
        assert_eq!(got, cog_ref, "cogroup seed {seed}");

        // sort_by_key vs a stable sort of the input.
        let got: Vec<(u64, u64)> = Rdd::parallelize(&ctx, pairs.clone(), 4)
            .sort_by_key(3)
            .collect()
            .unwrap();
        let mut sorted = pairs.clone();
        sorted.sort_by_key(|&(k, _)| k);
        assert_eq!(
            {
                let mut g = got.clone();
                g.sort();
                g
            },
            {
                let mut s = sorted.clone();
                s.sort();
                s
            },
            "sort_by_key multiset seed {seed}"
        );
        assert!(
            got.windows(2).all(|w| w[0].0 <= w[1].0),
            "sort_by_key order seed {seed}"
        );

        injected_total += ctx.failure_report().injected_shuffle_faults;
    }
    // The schedules must actually have fired for this to test anything.
    assert!(injected_total >= 1, "no seed injected a shuffle fault");
}

// The property-test satellite: for ANY seeded plan with failure
// probability ≤ 0.5 and ANY retry budget, the pipeline returns exactly
// the fault-free result or a typed error — never a panic, deadlock, or
// partial result.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_fault_plan_yields_exact_result_or_typed_error(
        data in prop::collection::vec((0u64..12, 0u64..100), 1..120),
        extra in prop::collection::vec((0u64..12, 0u64..100), 1..80),
        seed in 0u64..10_000,
        fail in 0.0f64..0.5,
        shuffle_fail in 0.0f64..0.4,
        attempts in 1u32..5,
    ) {
        let expected = pipeline(&quiet_ctx(), &data, &extra).unwrap();
        let plan = FaultPlan::seeded(seed)
            .with_task_fail_rate(fail)
            .with_shuffle_fail_rate(shuffle_fail);
        let ctx = chaos_ctx(plan, attempts);
        match pipeline(&ctx, &data, &extra) {
            Ok(got) => prop_assert_eq!(got, expected),
            Err(SjdfError::ExhaustedRetries { attempts: a, .. }) => {
                // Only a multi-attempt budget can exhaust.
                prop_assert!(attempts > 1);
                prop_assert_eq!(a, attempts);
            }
            Err(SjdfError::TaskPanic(msg)) => {
                // Fail-fast budget: the panic must be the injected one.
                prop_assert_eq!(attempts, 1);
                prop_assert!(msg.contains("injected fault:"), "{}", msg);
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }
}

/// Replays the committed seed corpus (`chaos.proptest-regressions`):
/// fault-plan seeds that once found bugs stay green forever. The file
/// format mirrors proptest's regression files — `cc <16-hex-seed> # note`
/// — and the CI chaos job fails if the file goes missing.
#[test]
fn regression_corpus_replays_clean() {
    let corpus = include_str!("chaos.proptest-regressions");
    let left = records(7, 300);
    let right = records(11, 200);
    let expected = pipeline(&quiet_ctx(), &left, &right).unwrap();
    let mut replayed = 0usize;
    for line in corpus.lines() {
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex = rest.split_whitespace().next().unwrap_or("");
        let seed =
            u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("bad corpus line: {line}"));
        let plan = FaultPlan::seeded(seed)
            .with_task_fail_rate(0.2)
            .with_shuffle_fail_rate(0.1);
        match pipeline(&chaos_ctx(plan, 3), &left, &right) {
            Ok(got) => assert_eq!(got, expected, "corpus seed {seed:#x} diverged"),
            Err(e @ SjdfError::ExhaustedRetries { .. }) => {
                assert!(e.to_string().contains("exhausted retry budget"));
            }
            Err(e) => panic!("corpus seed {seed:#x}: unexpected error {e}"),
        }
        replayed += 1;
    }
    assert!(
        replayed >= 3,
        "corpus should hold at least three seeds, found {replayed}"
    );
}

/// CI artifact hook: when `CHAOS_SEED` is set, run the standard pipeline
/// under that seed and (when `CHAOS_REPORT` is also set) write the
/// resulting [`FailureReport`] as JSON for upload. Without the env vars
/// this runs seed 0 and asserts the report serializes.
#[test]
fn failure_report_artifact_round_trips() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64);
    let left = records(7, 300);
    let right = records(11, 200);
    let plan = FaultPlan::seeded(seed)
        .with_task_fail_rate(0.2)
        .with_shuffle_fail_rate(0.1);
    let ctx = chaos_ctx(plan, 3);
    let outcome = pipeline(&ctx, &left, &right);
    let report = ctx.failure_report();
    let json = serde_json::to_string_pretty(&report).expect("FailureReport serializes");
    let back: sjdf::FailureReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    if let Ok(path) = std::env::var("CHAOS_REPORT") {
        let artifact = format!(
            "{{\"seed\":{seed},\"recovered\":{},\"report\":{json}}}\n",
            outcome.is_ok()
        );
        std::fs::write(&path, artifact).expect("write chaos artifact");
    }
}

// ---------------------------------------------------------------------------
// Span-tree invariants under chaos (sjtrace)
// ---------------------------------------------------------------------------

/// Run the standard pipeline under `seed` with tracing enabled and
/// return the drained events plus whether the run recovered.
fn traced_chaos_run(seed: u64) -> (Vec<sjdf::trace::SpanEvent>, bool) {
    let left = records(7, 120);
    let right = records(11, 80);
    let plan = FaultPlan::seeded(seed)
        .with_task_fail_rate(0.2)
        .with_shuffle_fail_rate(0.1);
    let ctx = chaos_ctx(plan, 3);
    ctx.tracer().enable();
    let outcome = pipeline(&ctx, &left, &right);
    let recovered = match outcome {
        Ok(_) => true,
        Err(SjdfError::ExhaustedRetries { .. }) => false,
        Err(e) => panic!("seed {seed}: unexpected error kind: {e}"),
    };
    (ctx.tracer().drain(), recovered)
}

/// Satellite invariant sweep: for every fault seed, the exported trace
/// is a well-formed tree (`end >= start`, children nested inside their
/// parents, consistent roots), the Chrome export parses back through the
/// typed structs, and the job/wave/task span vocabulary is present.
#[test]
fn traced_chaos_sweep_produces_well_formed_span_trees() {
    let mut recovered_runs = 0usize;
    for seed in 0..15u64 {
        let (events, recovered) = traced_chaos_run(seed);
        assert!(!events.is_empty(), "seed {seed}: no spans recorded");
        sjdf::trace::validate(&events)
            .unwrap_or_else(|e| panic!("seed {seed}: invalid span tree: {e}"));
        // A failed run may exhaust inside the shuffle's map stage before
        // any bucket fetch, so the full vocabulary is only guaranteed on
        // recovered runs.
        let required: &[&str] = if recovered {
            recovered_runs += 1;
            &["job", "wave", "task", "shuffle_fetch"]
        } else {
            &["job", "wave", "task"]
        };
        for name in required {
            assert!(
                events.iter().any(|e| &e.name == name),
                "seed {seed}: no `{name}` span in trace"
            );
        }
        // The Chrome export round-trips through the typed parser.
        let json = sjdf::trace::export::chrome_trace_json(
            &events,
            &std::collections::BTreeMap::new(),
            "chaos",
        );
        let back: sjdf::trace::export::ChromeTrace = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: exported trace does not parse: {e}"));
        assert_eq!(
            back.traceEvents.iter().filter(|e| e.ph != "M").count(),
            events.len(),
            "seed {seed}: export dropped events"
        );
    }
    assert!(
        recovered_runs > 0,
        "sweep never recovered; shuffle_fetch coverage untested"
    );
}

/// Killed attempts (injected faults and exhausted budgets) appear as
/// failed `task` spans, with at least one failed span per recorded task
/// failure — a chaos run's trace never hides a kill.
#[test]
fn killed_attempts_close_their_spans_as_failed() {
    let mut saw_failures = false;
    for seed in 0..15u64 {
        let left = records(7, 120);
        let right = records(11, 80);
        let plan = FaultPlan::seeded(seed)
            .with_task_fail_rate(0.2)
            .with_shuffle_fail_rate(0.1);
        let ctx = chaos_ctx(plan, 3);
        ctx.tracer().enable();
        let _ = pipeline(&ctx, &left, &right);
        let report = ctx.failure_report();
        let events = ctx.tracer().drain();
        let failed_tasks = events
            .iter()
            .filter(|e| e.name == "task" && e.failed)
            .count() as u64;
        assert_eq!(
            failed_tasks, report.task_failures,
            "seed {seed}: {failed_tasks} failed task spans vs {} recorded task failures",
            report.task_failures
        );
        if report.injected_task_faults > 0 {
            saw_failures = true;
            assert!(
                events.iter().any(|e| e.name == "fault_injected"),
                "seed {seed}: injected faults left no fault_injected event"
            );
        }
        if report.task_retries > 0 {
            assert!(
                events.iter().any(|e| e.name == "retry"),
                "seed {seed}: retries left no retry event"
            );
        }
    }
    assert!(saw_failures, "sweep never injected a fault; rates too low");
}

/// Tracing is observational only: for the same seed, a traced run and an
/// untraced run produce identical results and identical failure
/// accounting.
#[test]
fn tracing_does_not_perturb_chaos_outcomes() {
    let left = records(7, 120);
    let right = records(11, 80);
    for seed in [0u64, 3, 9] {
        let mk_plan = || {
            FaultPlan::seeded(seed)
                .with_task_fail_rate(0.2)
                .with_shuffle_fail_rate(0.1)
        };
        let untraced_ctx = chaos_ctx(mk_plan(), 3);
        let untraced = pipeline(&untraced_ctx, &left, &right);
        let traced_ctx = chaos_ctx(mk_plan(), 3);
        traced_ctx.tracer().enable();
        let traced = pipeline(&traced_ctx, &left, &right);
        match (untraced, traced) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed}: traced run diverged"),
            (
                Err(SjdfError::ExhaustedRetries { partition: p1, .. }),
                Err(SjdfError::ExhaustedRetries { partition: p2, .. }),
            ) => {
                assert_eq!(p1, p2, "seed {seed}: different partition exhausted");
            }
            (a, b) => panic!("seed {seed}: outcomes diverged: {a:?} vs {b:?}"),
        }
        assert_eq!(
            untraced_ctx.failure_report().injected_task_faults,
            traced_ctx.failure_report().injected_task_faults,
            "seed {seed}: tracing changed fault injection"
        );
    }
}
