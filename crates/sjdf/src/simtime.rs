//! Analytic cost model: task metrics + cluster spec → simulated wall-clock.
//!
//! The paper's Figure 3 was measured on a 10-node × 32-core Spark cluster.
//! We reproduce the *shape* of those curves on a single machine by running
//! the real data-parallel algorithms (which records a [`MetricsReport`])
//! and then costing the recorded task graph against a [`ClusterSpec`]:
//!
//! * **Compute**: each op processes `records_in + records_out` records at
//!   a per-kind rate (with per-op-name overrides for genuinely expensive
//!   stages like the interpolation join's in-bin pairwise matching),
//!   parallelized over `nodes × cores` slots.
//! * **Serialization/driver**: every record crossing a shuffle passes a
//!   fixed-rate serialization/coordination path that does *not* scale
//!   with node count. This term is why Natural Join's strong scaling
//!   saturates in the paper (13 s → 8.5 s for 10× the nodes) while the
//!   compute-heavy Interpolation Join keeps scaling (240 s → 45 s).
//! * **Network**: a fraction `(n-1)/n` of shuffled bytes crosses the
//!   network at an aggregate bandwidth of `n × per-node bandwidth`.
//! * **Barriers/startup**: a fixed job startup plus a per-wide-op barrier
//!   growing slowly (logarithmically) with the node count.
//!
//! Constants are calibrated once, in [`CostParams::paper`], by solving the
//! model against the endpoints the paper reports (see the constant-by-
//! constant derivation there); the curve *shapes* then emerge from the
//! model structure and the actually-measured record/byte counts.

use crate::cluster::ClusterSpec;
use crate::metrics::{MetricsReport, OpKind};
use serde::{Deserialize, Serialize};

/// Calibration constants for the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Seconds of compute per record for source ops, per core.
    pub source_secs_per_record: f64,
    /// Seconds of compute per record for narrow ops, per core.
    pub narrow_secs_per_record: f64,
    /// Seconds of compute per record for wide (shuffle) ops, per core.
    /// Higher than narrow: hashing, grouping and allocation per record.
    pub wide_secs_per_record: f64,
    /// Per-op-name overrides of the per-record compute cost, for stages
    /// whose per-record work dwarfs ordinary map/shuffle handling.
    pub op_overrides: Vec<(String, f64)>,
    /// Records/second through the non-scaling serialization/driver path.
    pub driver_records_per_sec: f64,
    /// Per-node network bandwidth (bytes/second) for shuffle traffic.
    pub net_bytes_per_sec: f64,
    /// Fixed job startup cost in seconds.
    pub job_startup_secs: f64,
    /// Per-wide-op barrier in seconds at one node.
    pub barrier_secs: f64,
    /// Growth factor of the barrier with `ln(nodes)`.
    pub barrier_node_factor: f64,
    /// Seconds charged per stage-cache hit: the block-manager fetch that
    /// replaces a recomputation. Tiny, but keeps cached re-evaluations
    /// from costing exactly zero.
    #[serde(default)]
    pub cache_hit_secs: f64,
    /// Seconds of scheduler/re-dispatch overhead charged per task retry,
    /// on top of the measured backoff sleeps — so recovered runs are
    /// slower than fault-free ones in simulated time, not just in
    /// counters.
    #[serde(default)]
    pub retry_overhead_secs: f64,
}

impl CostParams {
    /// Constants calibrated against the paper's Figure 3 endpoints.
    ///
    /// Derivation (using the task metrics the `sjdata::synth` workloads
    /// record — Natural Join: ~10.5 records of op work and 2 shuffle
    /// records per input row; Interpolation Join: ~27.6 op records,
    /// ~10.6 shuffle records, and ~6.9 match-stage records per input
    /// row):
    ///
    /// * Natural Join strong scaling (13 s → 8.5 s at 40 M rows) fixes
    ///   the scalable compute at ≈5 s on one node → ~3.9×10⁻⁷ s per
    ///   record-core for ordinary ops.
    /// * The Natural Join row sweep (2 s → 8 s over 2–40 M rows at 10
    ///   nodes) then fixes the non-scaling serialization path at
    ///   ≈1.4×10⁷ records/s and the fixed overhead at ≈1.7 s.
    /// * Interpolation Join strong scaling (240 s → ~45 s at 16 M rows)
    ///   fixes the match-stage override at ≈6×10⁻⁵ s per record-core —
    ///   the in-bin pairwise matching is the expensive part, exactly as
    ///   the paper's 10–120 s row sweep (≈15× Natural Join) implies.
    pub fn paper() -> Self {
        CostParams {
            source_secs_per_record: 2.8e-7,
            narrow_secs_per_record: 3.9e-7,
            wide_secs_per_record: 6.7e-7,
            op_overrides: vec![("interp_match".to_string(), 6.1e-5)],
            driver_records_per_sec: 13.9e6,
            net_bytes_per_sec: 10.0e9,
            job_startup_secs: 1.45,
            barrier_secs: 0.2,
            barrier_node_factor: 0.35,
            cache_hit_secs: 5.0e-4,
            retry_overhead_secs: 0.05,
        }
    }

    fn rate_for(&self, name: &str, kind: OpKind) -> f64 {
        if let Some((_, r)) = self.op_overrides.iter().find(|(n, _)| n == name) {
            return *r;
        }
        match kind {
            OpKind::Source => self.source_secs_per_record,
            OpKind::Narrow => self.narrow_secs_per_record,
            OpKind::Wide => self.wide_secs_per_record,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::paper()
    }
}

/// Per-component breakdown of a simulated time estimate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimTime {
    /// Parallel compute seconds.
    pub compute: f64,
    /// Non-scaling serialization/driver seconds.
    pub driver: f64,
    /// Network shuffle seconds.
    pub network: f64,
    /// Startup + barrier seconds.
    pub overhead: f64,
}

impl SimTime {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.driver + self.network + self.overhead
    }
}

/// Cost a recorded task graph against a virtual cluster.
pub fn estimate(report: &MetricsReport, cluster: &ClusterSpec, params: &CostParams) -> SimTime {
    let slots = cluster.total_cores() as f64;
    let n = cluster.nodes as f64;

    let mut compute = 0.0;
    let mut driver = 0.0;
    let mut network = 0.0;
    let mut wide_ops = 0usize;

    for op in &report.ops {
        let records = (op.metrics.records_in + op.metrics.records_out) as f64;
        compute += records * params.rate_for(&op.name, op.kind) / slots;

        if op.kind == OpKind::Wide {
            wide_ops += 1;
            driver += op.metrics.shuffle_records as f64 / params.driver_records_per_sec;
            if cluster.nodes > 1 {
                let bytes = op.metrics.shuffle_bytes as f64;
                let cross = bytes * (n - 1.0) / n;
                network += cross / (n * params.net_bytes_per_sec);
            }
        }
    }

    let overhead = params.job_startup_secs
        + wide_ops as f64 * params.barrier_secs * (1.0 + params.barrier_node_factor * n.ln())
        + report.cache_hits as f64 * params.cache_hit_secs
        + report.failures.task_retries as f64 * params.retry_overhead_secs
        + report.failures.backoff_secs;

    SimTime {
        compute,
        driver,
        network,
        overhead,
    }
}

/// Linearly scale a report's record and byte counts by `factor`.
///
/// The joins ScrubJay runs are linear in input rows (Figure 3 left
/// panels), so metrics measured at a tractable local size can be
/// extrapolated to the paper's 2 M – 40 M row range before costing.
pub fn scale_report(report: &MetricsReport, factor: f64) -> MetricsReport {
    let mut out = report.clone();
    for op in &mut out.ops {
        let m = &mut op.metrics;
        m.records_in = (m.records_in as f64 * factor).round() as u64;
        m.records_out = (m.records_out as f64 * factor).round() as u64;
        m.shuffle_bytes = (m.shuffle_bytes as f64 * factor).round() as u64;
        m.shuffle_records = (m.shuffle_records as f64 * factor).round() as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{OpEntry, OpMetrics};

    fn report(records: u64, shuffle_records: u64, shuffle_bytes: u64) -> MetricsReport {
        MetricsReport {
            ops: vec![
                OpEntry {
                    name: "map".into(),
                    kind: OpKind::Narrow,
                    metrics: OpMetrics {
                        records_in: records,
                        records_out: records,
                        ..Default::default()
                    },
                },
                OpEntry {
                    name: "group_by_key".into(),
                    kind: OpKind::Wide,
                    metrics: OpMetrics {
                        records_in: records,
                        records_out: records / 2,
                        shuffle_bytes,
                        shuffle_records,
                        ..Default::default()
                    },
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn more_nodes_reduce_total_time() {
        let r = report(40_000_000, 40_000_000, 4_000_000_000);
        let p = CostParams::paper();
        let t1 = estimate(&r, &ClusterSpec::new(1, 32).unwrap(), &p);
        let t10 = estimate(&r, &ClusterSpec::new(10, 32).unwrap(), &p);
        assert!(t10.compute < t1.compute);
        assert!(t10.total() < t1.total());
    }

    #[test]
    fn strong_scaling_is_monotonic_in_nodes() {
        let r = report(40_000_000, 40_000_000, 2_000_000_000);
        let p = CostParams::paper();
        let mut last = f64::INFINITY;
        for n in 1..=10 {
            let t = estimate(&r, &ClusterSpec::new(n, 32).unwrap(), &p).total();
            assert!(
                t < last,
                "time should decrease with nodes: n={n} t={t} last={last}"
            );
            last = t;
        }
    }

    #[test]
    fn driver_term_does_not_scale_with_nodes() {
        let r = report(1_000_000, 1_000_000, 1_000_000_000);
        let p = CostParams::paper();
        let t1 = estimate(&r, &ClusterSpec::new(1, 32).unwrap(), &p);
        let t10 = estimate(&r, &ClusterSpec::new(10, 32).unwrap(), &p);
        assert!((t1.driver - t10.driver).abs() < 1e-9);
        assert!(t1.driver > 0.0);
    }

    #[test]
    fn single_node_has_no_network_cost() {
        let r = report(1_000_000, 1_000_000, 1_000_000_000);
        let t = estimate(&r, &ClusterSpec::new(1, 32).unwrap(), &CostParams::paper());
        assert_eq!(t.network, 0.0);
    }

    #[test]
    fn time_is_linear_in_rows() {
        let p = CostParams::paper();
        let c = ClusterSpec::paper_cluster();
        let t1 = estimate(&report(2_000_000, 2_000_000, 100_000_000), &c, &p).total();
        let t2 = estimate(&report(4_000_000, 4_000_000, 200_000_000), &c, &p).total();
        let t4 = estimate(&report(8_000_000, 8_000_000, 400_000_000), &c, &p).total();
        let d1 = t2 - t1;
        let d2 = t4 - t2;
        assert!((d2 / d1 - 2.0).abs() < 0.05, "d1={d1} d2={d2}");
    }

    #[test]
    fn op_overrides_make_named_stages_expensive() {
        let p = CostParams::paper();
        let cheap = MetricsReport {
            ops: vec![OpEntry {
                name: "flat_map".into(),
                kind: OpKind::Narrow,
                metrics: OpMetrics {
                    records_in: 1_000_000,
                    records_out: 1_000_000,
                    ..Default::default()
                },
            }],
            ..Default::default()
        };
        let mut expensive = cheap.clone();
        expensive.ops[0].name = "interp_match".into();
        let c = ClusterSpec::new(1, 32).unwrap();
        let tc = estimate(&cheap, &c, &p).compute;
        let te = estimate(&expensive, &c, &p).compute;
        assert!(te > 50.0 * tc, "override should dominate: {te} vs {tc}");
    }

    #[test]
    fn scale_report_scales_counters() {
        let r = report(1000, 1000, 5000);
        let s = scale_report(&r, 2.5);
        assert_eq!(s.ops[0].metrics.records_in, 2500);
        assert_eq!(s.ops[1].metrics.shuffle_bytes, 12500);
        assert_eq!(s.ops[1].metrics.shuffle_records, 2500);
    }

    #[test]
    fn wide_ops_cost_more_than_narrow_per_record() {
        let p = CostParams::paper();
        assert!(p.wide_secs_per_record > p.narrow_secs_per_record);
        assert!(p.narrow_secs_per_record > p.source_secs_per_record);
    }

    #[test]
    fn cache_hits_cost_a_small_fetch_not_a_recompute() {
        let p = CostParams::paper();
        let c = ClusterSpec::new(1, 32).unwrap();
        let cold = report(1_000_000, 1_000_000, 100_000_000);
        let mut warm = MetricsReport {
            cache_hits: 100,
            ..Default::default()
        };
        let t_cold = estimate(&cold, &c, &p).total();
        let t_warm = estimate(&warm, &c, &p).total();
        assert!(t_warm < t_cold, "warm={t_warm} cold={t_cold}");
        // Hits are not free either.
        let baseline = estimate(&MetricsReport::default(), &c, &p).total();
        assert!(t_warm > baseline);
        warm.cache_hits = 0;
        assert!((estimate(&warm, &c, &p).total() - baseline).abs() < 1e-12);
    }

    #[test]
    fn retries_cost_simulated_time() {
        let p = CostParams::paper();
        let c = ClusterSpec::new(1, 32).unwrap();
        let baseline = estimate(&MetricsReport::default(), &c, &p).total();
        let mut faulty = MetricsReport::default();
        faulty.failures.task_retries = 10;
        faulty.failures.backoff_secs = 0.25;
        let t = estimate(&faulty, &c, &p).total();
        let expected = baseline + 10.0 * p.retry_overhead_secs + 0.25;
        assert!((t - expected).abs() < 1e-9, "t={t} expected={expected}");
        assert!(t > baseline);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let r = report(5_000_000, 5_000_000, 500_000_000);
        let t = estimate(&r, &ClusterSpec::paper_cluster(), &CostParams::paper());
        let sum = t.compute + t.driver + t.network + t.overhead;
        assert!((t.total() - sum).abs() < 1e-12);
    }
}
