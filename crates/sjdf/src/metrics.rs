//! Per-evaluation task metrics.
//!
//! Every task executed by the framework reports what it did — records read
//! and produced, bytes shuffled — into a [`MetricsCollector`]. The resulting
//! [`MetricsReport`] is the input to the virtual-cluster cost model in
//! [`crate::simtime`], and is also useful for ad-hoc inspection of where a
//! derivation pipeline spends its work.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a stage's tasks depend on a single parent partition (narrow),
/// on all parent partitions via a shuffle (wide), or read a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A data source (parallelized collection, file read, generator).
    Source,
    /// One-to-one partition dependency — no data movement between nodes.
    Narrow,
    /// All-to-all dependency — data is repartitioned across the cluster.
    Wide,
}

/// Aggregated metrics for one logical operation in a lineage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// Records consumed from parent datasets.
    pub records_in: u64,
    /// Records produced for downstream consumers.
    pub records_out: u64,
    /// Bytes that crossed the (virtual) network in a shuffle.
    pub shuffle_bytes: u64,
    /// Records that crossed the shuffle boundary.
    pub shuffle_records: u64,
    /// Number of tasks that executed for this op.
    pub tasks: u64,
}

impl OpMetrics {
    fn merge(&mut self, other: &OpMetrics) {
        self.records_in += other.records_in;
        self.records_out += other.records_out;
        self.shuffle_bytes += other.shuffle_bytes;
        self.shuffle_records += other.shuffle_records;
        self.tasks += other.tasks;
    }
}

/// Failure and recovery activity observed during an evaluation: injected
/// faults, retries, exhausted budgets, and speculative execution. All
/// zeros on a healthy run with no fault plan installed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// Task attempts failed by an injected [`FaultPlan`](crate::faults::FaultPlan).
    #[serde(default)]
    pub injected_task_faults: u64,
    /// Shuffle-bucket fetches failed by an injected fault plan.
    #[serde(default)]
    pub injected_shuffle_faults: u64,
    /// Task attempts delayed (straggler injection) by a fault plan.
    #[serde(default)]
    pub injected_delays: u64,
    /// Task attempts that failed, injected or genuine.
    #[serde(default)]
    pub task_failures: u64,
    /// Failed attempts that were retried (budget permitting).
    #[serde(default)]
    pub task_retries: u64,
    /// Tasks whose entire retry budget was consumed without success.
    #[serde(default)]
    pub tasks_exhausted: u64,
    /// Speculative attempts launched against suspected stragglers.
    #[serde(default)]
    pub speculative_launched: u64,
    /// Speculative attempts that settled their partition first.
    #[serde(default)]
    pub speculative_wins: u64,
    /// Total wall-clock spent sleeping in retry backoff.
    #[serde(default)]
    pub backoff_secs: f64,
    /// Correlation id of the request this report is attributed to (set by
    /// a query service via [`MetricsCollector::set_query_id`]), so
    /// failure accounting can be matched to traces and responses even
    /// when requests run concurrently.
    #[serde(default)]
    pub query_id: Option<String>,
}

impl FailureReport {
    /// True when no failure or recovery activity was recorded (a set
    /// `query_id` alone does not count as activity).
    pub fn is_empty(&self) -> bool {
        FailureReport {
            query_id: None,
            ..self.clone()
        } == FailureReport::default()
    }

    fn delta_since(&self, baseline: &FailureReport) -> FailureReport {
        let diff = |a: u64, b: u64| a.saturating_sub(b);
        FailureReport {
            injected_task_faults: diff(self.injected_task_faults, baseline.injected_task_faults),
            injected_shuffle_faults: diff(
                self.injected_shuffle_faults,
                baseline.injected_shuffle_faults,
            ),
            injected_delays: diff(self.injected_delays, baseline.injected_delays),
            task_failures: diff(self.task_failures, baseline.task_failures),
            task_retries: diff(self.task_retries, baseline.task_retries),
            tasks_exhausted: diff(self.tasks_exhausted, baseline.tasks_exhausted),
            speculative_launched: diff(self.speculative_launched, baseline.speculative_launched),
            speculative_wins: diff(self.speculative_wins, baseline.speculative_wins),
            backoff_secs: (self.backoff_secs - baseline.backoff_secs).max(0.0),
            query_id: self.query_id.clone(),
        }
    }
}

/// One entry of a [`MetricsReport`]: an op name, its kind, and totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpEntry {
    /// Human-readable operation name (`map`, `group_by_key`, ...).
    pub name: String,
    /// Narrow/wide/source classification.
    pub kind: OpKind,
    /// Aggregated counters.
    pub metrics: OpMetrics,
}

/// Finalized, immutable metrics for one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Per-op aggregates, sorted by op name for determinism.
    pub ops: Vec<OpEntry>,
    /// Stage-cache lookups served from memory (persisted partitions and
    /// already-materialized shuffle outputs).
    #[serde(default)]
    pub cache_hits: u64,
    /// Stage-cache lookups that had to compute and materialize.
    #[serde(default)]
    pub cache_misses: u64,
    /// Cached stages dropped to respect the byte budget during this
    /// collector's evaluations.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Failure and recovery activity (injected faults, retries,
    /// speculation) during this collector's evaluations.
    #[serde(default)]
    pub failures: FailureReport,
}

impl MetricsReport {
    /// Total records produced across all ops.
    pub fn total_records_out(&self) -> u64 {
        self.ops.iter().map(|o| o.metrics.records_out).sum()
    }

    /// Total bytes moved through shuffles.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.metrics.shuffle_bytes).sum()
    }

    /// Number of wide (shuffle) ops in the evaluation.
    pub fn wide_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == OpKind::Wide).count()
    }

    /// Look up an op's metrics by name, if present.
    pub fn op(&self, name: &str) -> Option<&OpEntry> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Per-op difference against an earlier snapshot of the same
    /// collector: the activity attributable to evaluations that ran
    /// between the two reports. Ops absent from the baseline appear
    /// whole; counters subtract saturating, so interleaved concurrent
    /// evaluations can never produce negative (wrapped) counts.
    pub fn delta_since(&self, baseline: &MetricsReport) -> MetricsReport {
        let diff = |a: u64, b: u64| a.saturating_sub(b);
        let ops = self
            .ops
            .iter()
            .filter_map(|o| {
                let base = baseline
                    .ops
                    .iter()
                    .find(|b| b.name == o.name && b.kind == o.kind);
                let m = match base {
                    None => o.metrics.clone(),
                    Some(b) => OpMetrics {
                        records_in: diff(o.metrics.records_in, b.metrics.records_in),
                        records_out: diff(o.metrics.records_out, b.metrics.records_out),
                        shuffle_bytes: diff(o.metrics.shuffle_bytes, b.metrics.shuffle_bytes),
                        shuffle_records: diff(o.metrics.shuffle_records, b.metrics.shuffle_records),
                        tasks: diff(o.metrics.tasks, b.metrics.tasks),
                    },
                };
                if m == OpMetrics::default() {
                    None
                } else {
                    Some(OpEntry {
                        name: o.name.clone(),
                        kind: o.kind,
                        metrics: m,
                    })
                }
            })
            .collect();
        MetricsReport {
            ops,
            cache_hits: diff(self.cache_hits, baseline.cache_hits),
            cache_misses: diff(self.cache_misses, baseline.cache_misses),
            cache_evictions: diff(self.cache_evictions, baseline.cache_evictions),
            failures: self.failures.delta_since(&baseline.failures),
        }
    }
}

/// Thread-safe sink that tasks report into during an evaluation.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    inner: Mutex<BTreeMap<(String, OpKind), OpMetrics>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    injected_task_faults: AtomicU64,
    injected_shuffle_faults: AtomicU64,
    injected_delays: AtomicU64,
    task_failures: AtomicU64,
    task_retries: AtomicU64,
    tasks_exhausted: AtomicU64,
    speculative_launched: AtomicU64,
    speculative_wins: AtomicU64,
    backoff_us: AtomicU64,
    query_id: Mutex<Option<String>>,
}

impl MetricsCollector {
    /// Create an empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one task's contribution to an op.
    pub fn record(&self, name: &str, kind: OpKind, m: OpMetrics) {
        let mut inner = self.inner.lock();
        inner.entry((name.to_string(), kind)).or_default().merge(&m);
    }

    /// Record one stage-cache lookup served from memory.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one stage-cache lookup that had to compute.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` budget evictions triggered by this evaluation.
    pub fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one task attempt failed by an injected fault plan.
    pub fn record_injected_task_fault(&self) {
        self.injected_task_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one shuffle fetch failed by an injected fault plan.
    pub fn record_injected_shuffle_fault(&self) {
        self.injected_shuffle_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one task attempt delayed by an injected fault plan.
    pub fn record_injected_delay(&self) {
        self.injected_delays.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed task attempt (injected or genuine).
    pub fn record_task_failure(&self) {
        self.task_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retried attempt and the backoff slept before it.
    pub fn record_task_retry(&self, backoff: std::time::Duration) {
        self.task_retries.fetch_add(1, Ordering::Relaxed);
        self.backoff_us
            .fetch_add(backoff.as_micros() as u64, Ordering::Relaxed);
    }

    /// Record one task that consumed its whole retry budget.
    pub fn record_task_exhausted(&self) {
        self.tasks_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one speculative attempt launched against a straggler.
    pub fn record_speculative_launch(&self) {
        self.speculative_launched.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one speculative attempt that settled its partition first.
    pub fn record_speculative_win(&self) {
        self.speculative_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Tag this collector with the correlation id of the request it is
    /// accounting for; every subsequent [`FailureReport`] echoes it.
    pub fn set_query_id(&self, id: Option<String>) {
        *self.query_id.lock() = id;
    }

    /// The correlation id installed by [`MetricsCollector::set_query_id`].
    pub fn query_id(&self) -> Option<String> {
        self.query_id.lock().clone()
    }

    /// Snapshot only the failure/recovery counters.
    pub fn failure_report(&self) -> FailureReport {
        FailureReport {
            injected_task_faults: self.injected_task_faults.load(Ordering::Relaxed),
            injected_shuffle_faults: self.injected_shuffle_faults.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            task_failures: self.task_failures.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            tasks_exhausted: self.tasks_exhausted.load(Ordering::Relaxed),
            speculative_launched: self.speculative_launched.load(Ordering::Relaxed),
            speculative_wins: self.speculative_wins.load(Ordering::Relaxed),
            backoff_secs: self.backoff_us.load(Ordering::Relaxed) as f64 / 1e6,
            query_id: self.query_id.lock().clone(),
        }
    }

    /// Snapshot the collected metrics into an immutable report.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock();
        MetricsReport {
            ops: inner
                .iter()
                .map(|((name, kind), metrics)| OpEntry {
                    name: name.clone(),
                    kind: *kind,
                    metrics: metrics.clone(),
                })
                .collect(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            failures: self.failure_report(),
        }
    }

    /// Drop all collected metrics (used between benchmark iterations).
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.injected_task_faults.store(0, Ordering::Relaxed);
        self.injected_shuffle_faults.store(0, Ordering::Relaxed);
        self.injected_delays.store(0, Ordering::Relaxed);
        self.task_failures.store(0, Ordering::Relaxed);
        self.task_retries.store(0, Ordering::Relaxed);
        self.tasks_exhausted.store(0, Ordering::Relaxed);
        self.speculative_launched.store(0, Ordering::Relaxed);
        self.speculative_wins.store(0, Ordering::Relaxed);
        self.backoff_us.store(0, Ordering::Relaxed);
        self.query_id.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(records_in: u64, records_out: u64, shuffle_bytes: u64) -> OpMetrics {
        OpMetrics {
            records_in,
            records_out,
            shuffle_bytes,
            shuffle_records: 0,
            tasks: 1,
        }
    }

    #[test]
    fn collector_merges_same_op() {
        let c = MetricsCollector::new();
        c.record("map", OpKind::Narrow, m(10, 10, 0));
        c.record("map", OpKind::Narrow, m(5, 5, 0));
        let r = c.report();
        assert_eq!(r.ops.len(), 1);
        let op = r.op("map").unwrap();
        assert_eq!(op.metrics.records_in, 15);
        assert_eq!(op.metrics.tasks, 2);
    }

    #[test]
    fn collector_separates_distinct_ops() {
        let c = MetricsCollector::new();
        c.record("map", OpKind::Narrow, m(10, 10, 0));
        c.record("group_by_key", OpKind::Wide, m(10, 4, 800));
        let r = c.report();
        assert_eq!(r.ops.len(), 2);
        assert_eq!(r.wide_ops(), 1);
        assert_eq!(r.total_shuffle_bytes(), 800);
    }

    #[test]
    fn reset_clears_state() {
        let c = MetricsCollector::new();
        c.record("map", OpKind::Narrow, m(10, 10, 0));
        c.reset();
        assert!(c.report().ops.is_empty());
    }

    #[test]
    fn report_totals_sum_over_ops() {
        let c = MetricsCollector::new();
        c.record("a", OpKind::Narrow, m(1, 2, 0));
        c.record("b", OpKind::Wide, m(3, 4, 100));
        let r = c.report();
        assert_eq!(r.total_records_out(), 6);
        assert_eq!(r.total_shuffle_bytes(), 100);
    }

    #[test]
    fn report_is_deterministically_ordered() {
        let c = MetricsCollector::new();
        c.record("zeta", OpKind::Narrow, m(1, 1, 0));
        c.record("alpha", OpKind::Narrow, m(1, 1, 0));
        let names: Vec<_> = c.report().ops.into_iter().map(|o| o.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn cache_counters_roundtrip_and_delta() {
        let c = MetricsCollector::new();
        c.record_cache_miss();
        c.record_cache_miss();
        c.record_cache_hit();
        c.record_cache_evictions(3);
        let base = c.report();
        assert_eq!(base.cache_hits, 1);
        assert_eq!(base.cache_misses, 2);
        assert_eq!(base.cache_evictions, 3);
        c.record_cache_hit();
        c.record_cache_hit();
        let delta = c.report().delta_since(&base);
        assert_eq!(delta.cache_hits, 2);
        assert_eq!(delta.cache_misses, 0);
        assert_eq!(delta.cache_evictions, 0);
        c.reset();
        assert_eq!(c.report().cache_hits, 0);
    }

    #[test]
    fn failure_counters_roundtrip_and_delta() {
        let c = MetricsCollector::new();
        c.record_injected_task_fault();
        c.record_task_failure();
        c.record_task_retry(std::time::Duration::from_millis(2));
        let base = c.report();
        assert_eq!(base.failures.injected_task_faults, 1);
        assert_eq!(base.failures.task_retries, 1);
        assert!(base.failures.backoff_secs > 0.0);
        assert!(!base.failures.is_empty());
        c.record_task_exhausted();
        c.record_speculative_launch();
        c.record_speculative_win();
        let delta = c.report().delta_since(&base);
        assert_eq!(delta.failures.tasks_exhausted, 1);
        assert_eq!(delta.failures.speculative_launched, 1);
        assert_eq!(delta.failures.speculative_wins, 1);
        assert_eq!(delta.failures.injected_task_faults, 0);
        c.reset();
        assert!(c.report().failures.is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let c = MetricsCollector::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..100 {
                        c.record("map", OpKind::Narrow, m(1, 1, 0));
                    }
                });
            }
        });
        assert_eq!(c.report().op("map").unwrap().metrics.records_in, 800);
    }
}
