//! Per-evaluation task metrics.
//!
//! Every task executed by the framework reports what it did — records read
//! and produced, bytes shuffled — into a [`MetricsCollector`]. The resulting
//! [`MetricsReport`] is the input to the virtual-cluster cost model in
//! [`crate::simtime`], and is also useful for ad-hoc inspection of where a
//! derivation pipeline spends its work.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a stage's tasks depend on a single parent partition (narrow),
/// on all parent partitions via a shuffle (wide), or read a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A data source (parallelized collection, file read, generator).
    Source,
    /// One-to-one partition dependency — no data movement between nodes.
    Narrow,
    /// All-to-all dependency — data is repartitioned across the cluster.
    Wide,
}

/// Aggregated metrics for one logical operation in a lineage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// Records consumed from parent datasets.
    pub records_in: u64,
    /// Records produced for downstream consumers.
    pub records_out: u64,
    /// Bytes that crossed the (virtual) network in a shuffle.
    pub shuffle_bytes: u64,
    /// Records that crossed the shuffle boundary.
    pub shuffle_records: u64,
    /// Number of tasks that executed for this op.
    pub tasks: u64,
}

impl OpMetrics {
    fn merge(&mut self, other: &OpMetrics) {
        self.records_in += other.records_in;
        self.records_out += other.records_out;
        self.shuffle_bytes += other.shuffle_bytes;
        self.shuffle_records += other.shuffle_records;
        self.tasks += other.tasks;
    }
}

/// One entry of a [`MetricsReport`]: an op name, its kind, and totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpEntry {
    /// Human-readable operation name (`map`, `group_by_key`, ...).
    pub name: String,
    /// Narrow/wide/source classification.
    pub kind: OpKind,
    /// Aggregated counters.
    pub metrics: OpMetrics,
}

/// Finalized, immutable metrics for one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Per-op aggregates, sorted by op name for determinism.
    pub ops: Vec<OpEntry>,
    /// Stage-cache lookups served from memory (persisted partitions and
    /// already-materialized shuffle outputs).
    #[serde(default)]
    pub cache_hits: u64,
    /// Stage-cache lookups that had to compute and materialize.
    #[serde(default)]
    pub cache_misses: u64,
    /// Cached stages dropped to respect the byte budget during this
    /// collector's evaluations.
    #[serde(default)]
    pub cache_evictions: u64,
}

impl MetricsReport {
    /// Total records produced across all ops.
    pub fn total_records_out(&self) -> u64 {
        self.ops.iter().map(|o| o.metrics.records_out).sum()
    }

    /// Total bytes moved through shuffles.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.metrics.shuffle_bytes).sum()
    }

    /// Number of wide (shuffle) ops in the evaluation.
    pub fn wide_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == OpKind::Wide).count()
    }

    /// Look up an op's metrics by name, if present.
    pub fn op(&self, name: &str) -> Option<&OpEntry> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Per-op difference against an earlier snapshot of the same
    /// collector: the activity attributable to evaluations that ran
    /// between the two reports. Ops absent from the baseline appear
    /// whole; counters subtract saturating, so interleaved concurrent
    /// evaluations can never produce negative (wrapped) counts.
    pub fn delta_since(&self, baseline: &MetricsReport) -> MetricsReport {
        let diff = |a: u64, b: u64| a.saturating_sub(b);
        let ops = self
            .ops
            .iter()
            .filter_map(|o| {
                let base = baseline
                    .ops
                    .iter()
                    .find(|b| b.name == o.name && b.kind == o.kind);
                let m = match base {
                    None => o.metrics.clone(),
                    Some(b) => OpMetrics {
                        records_in: diff(o.metrics.records_in, b.metrics.records_in),
                        records_out: diff(o.metrics.records_out, b.metrics.records_out),
                        shuffle_bytes: diff(o.metrics.shuffle_bytes, b.metrics.shuffle_bytes),
                        shuffle_records: diff(o.metrics.shuffle_records, b.metrics.shuffle_records),
                        tasks: diff(o.metrics.tasks, b.metrics.tasks),
                    },
                };
                if m == OpMetrics::default() {
                    None
                } else {
                    Some(OpEntry {
                        name: o.name.clone(),
                        kind: o.kind,
                        metrics: m,
                    })
                }
            })
            .collect();
        MetricsReport {
            ops,
            cache_hits: diff(self.cache_hits, baseline.cache_hits),
            cache_misses: diff(self.cache_misses, baseline.cache_misses),
            cache_evictions: diff(self.cache_evictions, baseline.cache_evictions),
        }
    }
}

/// Thread-safe sink that tasks report into during an evaluation.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    inner: Mutex<BTreeMap<(String, OpKind), OpMetrics>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

impl MetricsCollector {
    /// Create an empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one task's contribution to an op.
    pub fn record(&self, name: &str, kind: OpKind, m: OpMetrics) {
        let mut inner = self.inner.lock();
        inner.entry((name.to_string(), kind)).or_default().merge(&m);
    }

    /// Record one stage-cache lookup served from memory.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one stage-cache lookup that had to compute.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` budget evictions triggered by this evaluation.
    pub fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the collected metrics into an immutable report.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock();
        MetricsReport {
            ops: inner
                .iter()
                .map(|((name, kind), metrics)| OpEntry {
                    name: name.clone(),
                    kind: *kind,
                    metrics: metrics.clone(),
                })
                .collect(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop all collected metrics (used between benchmark iterations).
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(records_in: u64, records_out: u64, shuffle_bytes: u64) -> OpMetrics {
        OpMetrics {
            records_in,
            records_out,
            shuffle_bytes,
            shuffle_records: 0,
            tasks: 1,
        }
    }

    #[test]
    fn collector_merges_same_op() {
        let c = MetricsCollector::new();
        c.record("map", OpKind::Narrow, m(10, 10, 0));
        c.record("map", OpKind::Narrow, m(5, 5, 0));
        let r = c.report();
        assert_eq!(r.ops.len(), 1);
        let op = r.op("map").unwrap();
        assert_eq!(op.metrics.records_in, 15);
        assert_eq!(op.metrics.tasks, 2);
    }

    #[test]
    fn collector_separates_distinct_ops() {
        let c = MetricsCollector::new();
        c.record("map", OpKind::Narrow, m(10, 10, 0));
        c.record("group_by_key", OpKind::Wide, m(10, 4, 800));
        let r = c.report();
        assert_eq!(r.ops.len(), 2);
        assert_eq!(r.wide_ops(), 1);
        assert_eq!(r.total_shuffle_bytes(), 800);
    }

    #[test]
    fn reset_clears_state() {
        let c = MetricsCollector::new();
        c.record("map", OpKind::Narrow, m(10, 10, 0));
        c.reset();
        assert!(c.report().ops.is_empty());
    }

    #[test]
    fn report_totals_sum_over_ops() {
        let c = MetricsCollector::new();
        c.record("a", OpKind::Narrow, m(1, 2, 0));
        c.record("b", OpKind::Wide, m(3, 4, 100));
        let r = c.report();
        assert_eq!(r.total_records_out(), 6);
        assert_eq!(r.total_shuffle_bytes(), 100);
    }

    #[test]
    fn report_is_deterministically_ordered() {
        let c = MetricsCollector::new();
        c.record("zeta", OpKind::Narrow, m(1, 1, 0));
        c.record("alpha", OpKind::Narrow, m(1, 1, 0));
        let names: Vec<_> = c.report().ops.into_iter().map(|o| o.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn cache_counters_roundtrip_and_delta() {
        let c = MetricsCollector::new();
        c.record_cache_miss();
        c.record_cache_miss();
        c.record_cache_hit();
        c.record_cache_evictions(3);
        let base = c.report();
        assert_eq!(base.cache_hits, 1);
        assert_eq!(base.cache_misses, 2);
        assert_eq!(base.cache_evictions, 3);
        c.record_cache_hit();
        c.record_cache_hit();
        let delta = c.report().delta_since(&base);
        assert_eq!(delta.cache_hits, 2);
        assert_eq!(delta.cache_misses, 0);
        assert_eq!(delta.cache_evictions, 0);
        c.reset();
        assert_eq!(c.report().cache_hits, 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let c = MetricsCollector::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..100 {
                        c.record("map", OpKind::Narrow, m(1, 1, 0));
                    }
                });
            }
        });
        assert_eq!(c.report().op("map").unwrap().metrics.records_in, 800);
    }
}
