//! Deterministic fault injection for chaos testing the executor.
//!
//! A [`FaultPlan`] is a pure function from an injection site — a task
//! attempt for a partition, or a shuffle-fetch for a partition — to a
//! [`Fault`] decision, derived from a seed by splitmix64 hashing. The
//! same seed always produces the same fault schedule on every platform,
//! so a chaotic run can be replayed exactly from nothing but its seed.
//!
//! Crucially, decisions are *per attempt*: retrying a failed task rolls
//! the dice again with a fresh attempt number, so a plan with failure
//! probability `p` and retry budget `k` fails a partition permanently
//! with probability ~`p^k`. Poisoned partitions are the exception — they
//! fail every attempt, which is how tests exercise the
//! [`ExhaustedRetries`](crate::SjdfError::ExhaustedRetries) path.
//!
//! Plans are threaded through [`ExecCtx`](crate::ExecCtx) via
//! [`ExecCtx::with_faults`](crate::ExecCtx::with_faults); production
//! contexts carry no plan and pay only an `Option` check per task.

use std::collections::BTreeSet;
use std::time::Duration;

/// Prefix of every panic message raised by injected faults, so tests and
/// logs can tell injected failures from genuine bugs.
pub const INJECTED: &str = "injected fault:";

/// Where in the executor a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Running one task attempt for a partition.
    Task,
    /// Fetching a materialized shuffle bucket for an output partition.
    ShuffleFetch,
}

/// What the plan wants to happen at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the attempt (the executor sees a task panic).
    Fail,
    /// Delay the attempt by the given duration before running it — the
    /// straggler injection used to exercise speculative execution.
    Delay(Duration),
}

/// A seeded, deterministic schedule of faults.
///
/// ```
/// use sjdf::faults::{FaultPlan, FaultSite};
///
/// let plan = FaultPlan::seeded(42).with_task_fail_rate(0.2);
/// // Decisions are pure: same site, same answer, forever.
/// assert_eq!(
///     plan.decide(FaultSite::Task, 3, 0),
///     plan.decide(FaultSite::Task, 3, 0),
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    task_fail_rate: f64,
    shuffle_fail_rate: f64,
    delay_rate: f64,
    delay: Duration,
    poisoned: BTreeSet<usize>,
    killed_attempts: BTreeSet<(usize, u32)>,
}

impl FaultPlan {
    /// An empty plan (no faults) for the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The seed this plan derives its schedule from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fail each task attempt independently with probability `p`.
    pub fn with_task_fail_rate(mut self, p: f64) -> Self {
        self.task_fail_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Fail each shuffle-bucket fetch independently with probability `p`.
    pub fn with_shuffle_fail_rate(mut self, p: f64) -> Self {
        self.shuffle_fail_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Delay each task attempt by `delay` with probability `rate` —
    /// injected stragglers for speculative-execution tests.
    pub fn with_delays(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Fail *every* attempt of tasks for this partition index. Note that
    /// nested stages (e.g. a shuffle's map wave) share partition indices
    /// with the outer wave, so a poisoned index poisons it at every
    /// stage it appears in.
    pub fn poison_partition(mut self, part: usize) -> Self {
        self.poisoned.insert(part);
        self
    }

    /// Fail exactly one specific `(partition, attempt)` pair — surgical
    /// injection for retry-path tests.
    pub fn kill_attempt(mut self, part: usize, attempt: u32) -> Self {
        self.killed_attempts.insert((part, attempt));
        self
    }

    /// True if the plan can never produce a fault.
    pub fn is_inert(&self) -> bool {
        self.task_fail_rate == 0.0
            && self.shuffle_fail_rate == 0.0
            && self.delay_rate == 0.0
            && self.poisoned.is_empty()
            && self.killed_attempts.is_empty()
    }

    /// Decide the fate of one attempt at one site. Pure: depends only on
    /// the plan and the `(site, part, attempt)` coordinates.
    pub fn decide(&self, site: FaultSite, part: usize, attempt: u32) -> Option<Fault> {
        self.decide_at(site, 0, part, attempt)
    }

    /// Like [`FaultPlan::decide`], but with an extra `stream`
    /// discriminator mixed into the draw. Distinct streams (e.g. the
    /// hash of the operator name, via [`stream_of`]) get independent
    /// fault schedules — without it every shuffle stage of a job would
    /// share one coarse per-partition schedule.
    pub fn decide_at(
        &self,
        site: FaultSite,
        stream: u64,
        part: usize,
        attempt: u32,
    ) -> Option<Fault> {
        let salt = stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        match site {
            FaultSite::Task => {
                if self.poisoned.contains(&part) || self.killed_attempts.contains(&(part, attempt))
                {
                    return Some(Fault::Fail);
                }
                if self.roll(salt, part, attempt) < self.task_fail_rate {
                    return Some(Fault::Fail);
                }
                if self.roll(salt.wrapping_add(1), part, attempt) < self.delay_rate {
                    return Some(Fault::Delay(self.delay));
                }
                None
            }
            FaultSite::ShuffleFetch => {
                if self.roll(salt.wrapping_add(2), part, attempt) < self.shuffle_fail_rate {
                    Some(Fault::Fail)
                } else {
                    None
                }
            }
        }
    }

    /// A uniform draw in `[0, 1)` for the given coordinates — splitmix64
    /// finalization over the mixed seed, platform-independent.
    fn roll(&self, salt: u64, part: usize, attempt: u32) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((part as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Top 53 bits → an exactly representable f64 in [0, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of an operator name, used as the `stream` discriminator
/// for [`FaultPlan::decide_at`]. Stable across platforms and runs.
pub fn stream_of(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(7).with_task_fail_rate(0.3);
        let b = FaultPlan::seeded(7).with_task_fail_rate(0.3);
        for part in 0..50 {
            for attempt in 0..4 {
                assert_eq!(
                    a.decide(FaultSite::Task, part, attempt),
                    b.decide(FaultSite::Task, part, attempt)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1).with_task_fail_rate(0.5);
        let b = FaultPlan::seeded(2).with_task_fail_rate(0.5);
        let schedule = |p: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|i| p.decide(FaultSite::Task, i, 0).is_some())
                .collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn fail_rate_is_roughly_honored() {
        let plan = FaultPlan::seeded(99).with_task_fail_rate(0.2);
        let fails = (0..10_000)
            .filter(|&i| plan.decide(FaultSite::Task, i, 0) == Some(Fault::Fail))
            .count();
        // 20% ± generous tolerance over 10k draws.
        assert!((1500..2500).contains(&fails), "observed {fails}");
    }

    #[test]
    fn attempts_reroll_independently() {
        // With p=0.5, some partition must fail attempt 0 and pass attempt 1.
        let plan = FaultPlan::seeded(3).with_task_fail_rate(0.5);
        let recovered = (0..100).any(|i| {
            plan.decide(FaultSite::Task, i, 0) == Some(Fault::Fail)
                && plan.decide(FaultSite::Task, i, 1).is_none()
        });
        assert!(recovered);
    }

    #[test]
    fn poisoned_partitions_always_fail() {
        let plan = FaultPlan::seeded(0).poison_partition(5);
        for attempt in 0..10 {
            assert_eq!(plan.decide(FaultSite::Task, 5, attempt), Some(Fault::Fail));
        }
        assert_eq!(plan.decide(FaultSite::Task, 4, 0), None);
    }

    #[test]
    fn killed_attempt_hits_exactly_once() {
        let plan = FaultPlan::seeded(0).kill_attempt(2, 0);
        assert_eq!(plan.decide(FaultSite::Task, 2, 0), Some(Fault::Fail));
        assert_eq!(plan.decide(FaultSite::Task, 2, 1), None);
        assert_eq!(plan.decide(FaultSite::Task, 3, 0), None);
    }

    #[test]
    fn sites_roll_independently() {
        let plan = FaultPlan::seeded(11)
            .with_task_fail_rate(1.0)
            .with_shuffle_fail_rate(0.0);
        assert_eq!(plan.decide(FaultSite::Task, 0, 0), Some(Fault::Fail));
        assert_eq!(plan.decide(FaultSite::ShuffleFetch, 0, 0), None);
    }

    #[test]
    fn inert_plan_decides_nothing() {
        let plan = FaultPlan::seeded(123);
        assert!(plan.is_inert());
        for i in 0..100 {
            assert_eq!(plan.decide(FaultSite::Task, i, 0), None);
            assert_eq!(plan.decide(FaultSite::ShuffleFetch, i, 0), None);
        }
    }
}
