//! A long-lived executor pool shared by every evaluation on an
//! [`ExecCtx`](crate::exec::ExecCtx).
//!
//! Spark amortizes task-launch cost by keeping executors alive for the
//! whole application; the original `sjdf` executor instead spawned (and
//! joined) a fresh set of scoped threads for *every* evaluation wave,
//! which put thread-creation latency on the hottest path in the repo —
//! per-stage task-launch overhead is exactly the cost HPC Spark studies
//! (arXiv:1904.11812, arXiv:1611.04934) identify as dominant at this
//! layer. [`WorkerPool`] fixes that: threads are spawned once per
//! context, waves submit type-erased runner jobs into a shared FIFO
//! queue, and workers park on a condvar between waves.
//!
//! # Nested-wave reentrancy
//!
//! A task may itself evaluate a wave (shuffle materialization inside an
//! evaluation does). A naive "submit and block" would deadlock once every
//! worker is blocked inside an outer task waiting for an inner wave that
//! no free worker can run. The pool therefore never relies on a free
//! worker for progress: the thread that starts a wave *helps*, claiming
//! and running that wave's task indices itself until the wave's cursor is
//! exhausted, and only then parks until in-flight tasks claimed by other
//! workers finish. Every waiting thread has already drained its own
//! wave, so the wait chain always bottoms out at a thread doing real
//! work — the `nested_waves_do_not_deadlock` guarantee holds with zero
//! free workers.
//!
//! # Fault isolation
//!
//! Every job a worker runs is wrapped in `catch_unwind`, so a panicking
//! task (genuine, or injected by a [`FaultPlan`](crate::faults::FaultPlan))
//! never kills a pool thread: the wave that submitted the job observes
//! the failure through its own result slots and decides whether to retry
//! the task (see [`RetryPolicy`](crate::exec::RetryPolicy)), while the
//! worker moves on to the next job.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A unit of pool work: one type-erased wave runner.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Recover from a poisoned std mutex: the pool's own jobs catch panics,
/// and the queue holds only boxed closures, so the data is always valid.
fn lock_queue(shared: &PoolShared) -> MutexGuard<'_, VecDeque<Job>> {
    shared
        .queue
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// A fixed-size set of long-lived worker threads with a shared FIFO work
/// queue. Created once per [`ExecCtx`](crate::exec::ExecCtx) (and shared
/// by all its clones); dropped — joining every worker — when the last
/// clone goes away.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sjdf-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn sjdf worker thread")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            workers,
            handles: Mutex::new(handles),
        })
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueue one job. Jobs run FIFO on the first free worker; waves
    /// must not depend on a job ever being picked up (the submitting
    /// thread always helps itself to its own wave's tasks).
    pub fn submit(&self, job: Job) {
        lock_queue(&self.shared).push_back(job);
        self.shared.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        // Wave runners catch task panics themselves; this outer guard only
        // keeps a stray panic from killing the worker thread.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_submitted_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 16 {
            assert!(std::time::Instant::now() < deadline, "jobs did not drain");
            std::thread::yield_now();
        }
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool);
        // Drop drains the queue before workers exit.
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|| panic!("job panic")));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while done.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "worker died");
            std::thread::yield_now();
        }
    }

    #[test]
    fn zero_requested_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
