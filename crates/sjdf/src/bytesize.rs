//! Cheap, conservative byte-size estimation for shuffle accounting.
//!
//! The virtual-cluster cost model ([`crate::simtime`]) charges shuffle time
//! proportionally to the bytes moved between nodes. Rust has no runtime
//! object-size introspection, so every type that flows through a shuffle
//! provides an estimate via [`ByteSize`]. Estimates only need to be
//! *proportional* to real serialized sizes — the cost model is calibrated
//! end-to-end.

/// Estimate of the in-flight (serialized) size of a value in bytes.
pub trait ByteSize {
    /// Approximate serialized size of `self` in bytes.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_bytesize_fixed {
    ($($t:ty),* $(,)?) => {
        $(impl ByteSize for $t {
            #[inline]
            fn byte_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_bytesize_fixed!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl ByteSize for String {
    #[inline]
    fn byte_size(&self) -> usize {
        // String header (ptr/len/cap) plus payload.
        24 + self.len()
    }
}

impl ByteSize for &str {
    #[inline]
    fn byte_size(&self) -> usize {
        16 + self.len()
    }
}

impl ByteSize for std::sync::Arc<str> {
    #[inline]
    fn byte_size(&self) -> usize {
        16 + self.len()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        24 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for std::sync::Arc<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        8 + (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for std::sync::Arc<[T]> {
    #[inline]
    fn byte_size(&self) -> usize {
        16 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for Box<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        8 + (**self).byte_size()
    }
}

macro_rules! impl_bytesize_tuple {
    ($($name:ident),+) => {
        impl<$($name: ByteSize),+> ByteSize for ($($name,)+) {
            #[inline]
            #[allow(non_snake_case)]
            fn byte_size(&self) -> usize {
                let ($($name,)+) = self;
                0 $(+ $name.byte_size())+
            }
        }
    };
}

impl_bytesize_tuple!(A);
impl_bytesize_tuple!(A, B);
impl_bytesize_tuple!(A, B, C);
impl_bytesize_tuple!(A, B, C, D);
impl_bytesize_tuple!(A, B, C, D, E);
impl_bytesize_tuple!(A, B, C, D, E, F);

/// Sum the byte sizes of a slice of values.
pub fn slice_byte_size<T: ByteSize>(items: &[T]) -> usize {
    items.iter().map(ByteSize::byte_size).sum()
}

/// Byte size of a `Vec` of plain-old-data elements in O(1): header plus
/// `len * size_of::<T>()`. The generic `Vec<T: ByteSize>` impl walks every
/// element, which is wasteful for the typed column vectors of a columnar
/// partition — their size is a closed formula.
#[inline]
pub fn pod_vec_byte_size<T: Copy>(v: &[T]) -> usize {
    24 + std::mem::size_of_val(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_use_size_of() {
        assert_eq!(0u64.byte_size(), 8);
        assert_eq!(0u8.byte_size(), 1);
        assert_eq!(1.5f64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
    }

    #[test]
    fn strings_scale_with_length() {
        let short = String::from("ab");
        let long = String::from("abcdefghij");
        assert!(long.byte_size() > short.byte_size());
        assert_eq!(long.byte_size() - short.byte_size(), 8);
    }

    #[test]
    fn vec_sums_elements_plus_header() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.byte_size(), 24 + 3 * 8);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u64, 2u32).byte_size(), 12);
        assert_eq!((1u8, 2u8, 3u8).byte_size(), 3);
    }

    #[test]
    fn option_accounts_for_discriminant() {
        let some: Option<u64> = Some(1);
        let none: Option<u64> = None;
        assert_eq!(some.byte_size(), 9);
        assert_eq!(none.byte_size(), 1);
    }

    #[test]
    fn slice_helper_sums() {
        assert_eq!(slice_byte_size(&[1u32, 2, 3, 4]), 16);
    }
}
