//! Byte-budgeted memory manager for materialized stages.
//!
//! Spark's `persist()` keeps computed partitions in executor memory under
//! a block-manager budget; this module is the analogue for `sjdf`. Two
//! kinds of stage register here:
//!
//! * explicitly persisted datasets ([`Rdd::persist`](crate::Rdd::persist)),
//!   one entry per partition, and
//! * shuffle outputs (auto-persisted by every wide op), one entry per
//!   materialized bucket set.
//!
//! The cache never owns the data — the typed slots live inside the ops —
//! it only *accounts* for it (sizes come from [`crate::bytesize`]) and
//! decides what to drop. When an insertion pushes the total past the
//! budget, least-recently-used entries are evicted via a type-erased
//! callback that clears the owning slot; the lineage simply recomputes an
//! evicted stage on its next access, so eviction is always safe.
//!
//! # Locking
//!
//! The registry lock is a leaf-free zone: eviction callbacks are invoked
//! only *after* the registry lock is released, and slot implementations
//! must never call back into the registry while holding their slot lock.
//! This makes the lock order `registry → slot` acyclic even though
//! computing a partition (slot business) triggers insertions (registry
//! business).
//!
//! # Interaction with the fault model
//!
//! Recovery leans on the cache for partition-level recompute: when a task
//! attempt fails (genuinely or via an injected fault) and is retried, any
//! shuffle stage it consumes that is already `Full` is served from its
//! slot — the retry re-fetches, it does not re-shuffle. If the failure
//! happened *inside* a shuffle materialization, the cell's unwind guard
//! rolls the slot back from `InProgress` to `Empty`, so the next attempt
//! re-materializes from lineage and the exactly-once-compute invariant
//! (per successful materialization) is preserved. Eviction under fault
//! injection is likewise safe: a retried task that finds its input
//! evicted simply recomputes it, paying the cost but never changing the
//! result.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Globally unique id for one cache owner (a persisted dataset or one
/// shuffle cell).
pub(crate) fn next_owner_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Mint a fresh owner id for an external slot table (e.g. a streaming
/// emission cache) that wants its entries accounted and evicted by the
/// shared stage cache alongside persisted partitions.
pub fn mint_owner_id() -> u64 {
    next_owner_id()
}

/// A typed slot table that can drop one of its materialized entries.
///
/// Implementations must only take their own slot lock — never a
/// [`StageCache`] lock — inside [`evict`](EvictableSlot::evict), and must
/// treat an evict of an in-progress or already-empty slot as a no-op.
pub trait EvictableSlot: Send + Sync {
    /// Drop the cached value for `part`, if present.
    fn evict(&self, part: usize);
}

#[derive(Debug)]
struct Entry {
    bytes: usize,
    last_used: u64,
    owner: Weak<dyn EvictableSlot>,
    /// Optional invalidation group: [`StageCache::invalidate_tag`] drops
    /// every entry sharing a tag, regardless of owner. Used by streaming
    /// to key cached window evaluations on (subscription, window id) and
    /// invalidate exactly the cells whose input windows received appends.
    tag: Option<u64>,
}

#[derive(Debug, Default)]
struct Registry {
    /// Keyed by (owner id, partition index).
    entries: HashMap<(u64, usize), Entry>,
    bytes: usize,
    tick: u64,
}

/// Point-in-time counters for the stage cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCacheStats {
    /// Partition (or bucket-set) lookups served from memory.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped to respect the byte budget (or by `unpersist`).
    pub evictions: u64,
    /// Entries dropped because their tag was invalidated (streaming
    /// appends touching a cached window).
    pub invalidations: u64,
    /// Bytes currently accounted.
    pub bytes: u64,
    /// Entries currently accounted.
    pub entries: u64,
    /// Configured budget in bytes (`u64::MAX` = unlimited).
    pub budget: u64,
}

/// The per-context accounting/eviction layer. Shared (via `Arc`) by every
/// clone of an [`ExecCtx`](crate::exec::ExecCtx).
#[derive(Debug)]
pub struct StageCache {
    registry: Mutex<Registry>,
    budget: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for StageCache {
    fn default() -> Self {
        StageCache {
            registry: Mutex::new(Registry::default()),
            budget: AtomicU64::new(u64::MAX),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl StageCache {
    /// An unlimited-budget cache.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Set the byte budget, evicting LRU entries immediately if the
    /// current contents exceed it. `u64::MAX` means unlimited.
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        let victims = {
            let mut reg = self.registry.lock();
            self.collect_victims(&mut reg, None)
        };
        self.run_evictions(victims);
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Record a lookup served from a cached slot and refresh its LRU
    /// position.
    pub fn record_hit(&self, owner_id: u64, part: usize) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let mut reg = self.registry.lock();
        reg.tick += 1;
        let tick = reg.tick;
        if let Some(entry) = reg.entries.get_mut(&(owner_id, part)) {
            entry.last_used = tick;
        }
    }

    /// Account a freshly materialized slot, evicting older entries if the
    /// budget is now exceeded. The new entry itself is only evicted when
    /// it alone exceeds the whole budget (an oversized partition must not
    /// pin the cache over budget forever). Returns how many entries were
    /// evicted to make room.
    pub fn insert(
        &self,
        owner_id: u64,
        part: usize,
        bytes: usize,
        owner: &Arc<dyn EvictableSlot>,
    ) -> usize {
        self.insert_tagged(owner_id, part, bytes, owner, None)
    }

    /// Like [`insert`](StageCache::insert), but additionally files the
    /// entry under an invalidation `tag` so a later
    /// [`invalidate_tag`](StageCache::invalidate_tag) can drop it without
    /// knowing the owner.
    pub fn insert_tagged(
        &self,
        owner_id: u64,
        part: usize,
        bytes: usize,
        owner: &Arc<dyn EvictableSlot>,
        tag: Option<u64>,
    ) -> usize {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let victims = {
            let mut reg = self.registry.lock();
            reg.tick += 1;
            let tick = reg.tick;
            let old = reg.entries.insert(
                (owner_id, part),
                Entry {
                    bytes,
                    last_used: tick,
                    owner: Arc::downgrade(owner),
                    tag,
                },
            );
            reg.bytes += bytes;
            if let Some(old) = old {
                reg.bytes = reg.bytes.saturating_sub(old.bytes);
            }
            self.collect_victims(&mut reg, Some((owner_id, part)))
        };
        self.run_evictions(victims)
    }

    /// Drop every entry filed under `tag`, clearing the owning slots.
    /// Returns how many entries were invalidated. This is the streaming
    /// invalidation rule's hook: an append that touches a window
    /// invalidates exactly the cached cells keyed by that window's tag.
    pub fn invalidate_tag(&self, tag: u64) -> usize {
        let victims = {
            let mut reg = self.registry.lock();
            let keys: Vec<(u64, usize)> = reg
                .entries
                .iter()
                .filter(|(_, e)| e.tag == Some(tag))
                .map(|(k, _)| *k)
                .collect();
            let mut victims = Vec::with_capacity(keys.len());
            for key in keys {
                if let Some(entry) = reg.entries.remove(&key) {
                    reg.bytes = reg.bytes.saturating_sub(entry.bytes);
                    victims.push((key.1, entry.owner));
                }
            }
            victims
        };
        let n = victims.len();
        for (part, owner) in victims {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            if let Some(owner) = owner.upgrade() {
                owner.evict(part);
            }
        }
        n
    }

    /// Drop every entry belonging to `owner_id` (used by `unpersist` and
    /// by owners' `Drop`), returning the bytes released.
    pub fn release_owner(&self, owner_id: u64) -> usize {
        let (victims, released) = {
            let mut reg = self.registry.lock();
            let keys: Vec<(u64, usize)> = reg
                .entries
                .keys()
                .filter(|(id, _)| *id == owner_id)
                .copied()
                .collect();
            let mut victims = Vec::with_capacity(keys.len());
            let mut released = 0usize;
            for key in keys {
                if let Some(entry) = reg.entries.remove(&key) {
                    reg.bytes = reg.bytes.saturating_sub(entry.bytes);
                    released += entry.bytes;
                    victims.push((key.1, entry.owner));
                }
            }
            (victims, released)
        };
        for (part, owner) in victims {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(owner) = owner.upgrade() {
                owner.evict(part);
            }
        }
        released
    }

    /// Current counters.
    pub fn stats(&self) -> StageCacheStats {
        let reg = self.registry.lock();
        StageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes: reg.bytes as u64,
            entries: reg.entries.len() as u64,
            budget: self.budget(),
        }
    }

    /// Under the registry lock: pop LRU entries until the total fits the
    /// budget. `protect` (the entry just inserted) is spared unless it is
    /// the only entry left.
    fn collect_victims(
        &self,
        reg: &mut Registry,
        protect: Option<(u64, usize)>,
    ) -> Vec<(usize, Weak<dyn EvictableSlot>)> {
        let budget = self.budget();
        let mut victims = Vec::new();
        while (reg.bytes as u64) > budget {
            let candidate = reg
                .entries
                .iter()
                .filter(|(key, _)| Some(**key) != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(key, _)| *key)
                .or_else(|| reg.entries.keys().next().copied());
            let Some(key) = candidate else { break };
            if let Some(entry) = reg.entries.remove(&key) {
                reg.bytes = reg.bytes.saturating_sub(entry.bytes);
                victims.push((key.1, entry.owner));
            }
        }
        victims
    }

    /// Outside the registry lock: clear the victims' typed slots.
    /// Returns the number of victims.
    fn run_evictions(&self, victims: Vec<(usize, Weak<dyn EvictableSlot>)>) -> usize {
        let n = victims.len();
        for (part, owner) in victims {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(owner) = owner.upgrade() {
                owner.evict(part);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Default)]
    struct CountingSlot {
        evicted: AtomicUsize,
    }

    impl EvictableSlot for CountingSlot {
        fn evict(&self, _part: usize) {
            self.evicted.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn slot() -> (Arc<CountingSlot>, Arc<dyn EvictableSlot>) {
        let s = Arc::new(CountingSlot::default());
        let erased: Arc<dyn EvictableSlot> = Arc::clone(&s) as Arc<dyn EvictableSlot>;
        (s, erased)
    }

    #[test]
    fn unlimited_budget_never_evicts() {
        let cache = StageCache::new();
        let (counting, erased) = slot();
        let id = next_owner_id();
        for part in 0..32 {
            cache.insert(id, part, 1 << 20, &erased);
        }
        assert_eq!(counting.evicted.load(Ordering::SeqCst), 0);
        let s = cache.stats();
        assert_eq!(s.entries, 32);
        assert_eq!(s.bytes, 32 << 20);
        assert_eq!(s.misses, 32);
    }

    #[test]
    fn over_budget_evicts_lru_first() {
        let cache = StageCache::new();
        cache.set_budget(250);
        let (counting, erased) = slot();
        let id = next_owner_id();
        cache.insert(id, 0, 100, &erased);
        cache.insert(id, 1, 100, &erased);
        cache.record_hit(id, 0); // partition 0 is now most recent
        cache.insert(id, 2, 100, &erased); // must evict partition 1
        assert_eq!(counting.evicted.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 200);
        assert_eq!(s.evictions, 1);
        // Partition 0 survived: a hit on it does not touch the counter.
        cache.record_hit(id, 0);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn oversized_entry_is_self_evicted() {
        let cache = StageCache::new();
        cache.set_budget(50);
        let (counting, erased) = slot();
        cache.insert(next_owner_id(), 0, 1000, &erased);
        assert_eq!(counting.evicted.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn release_owner_frees_bytes_and_clears_slots() {
        let cache = StageCache::new();
        let (counting, erased) = slot();
        let id = next_owner_id();
        cache.insert(id, 0, 10, &erased);
        cache.insert(id, 1, 20, &erased);
        let (other_counting, other) = slot();
        let other_id = next_owner_id();
        cache.insert(other_id, 0, 5, &other);
        assert_eq!(cache.release_owner(id), 30);
        assert_eq!(counting.evicted.load(Ordering::SeqCst), 2);
        assert_eq!(other_counting.evicted.load(Ordering::SeqCst), 0);
        let s = cache.stats();
        assert_eq!(s.bytes, 5);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let cache = StageCache::new();
        let (counting, erased) = slot();
        let id = next_owner_id();
        for part in 0..4 {
            cache.insert(id, part, 100, &erased);
        }
        cache.set_budget(150);
        assert_eq!(counting.evicted.load(Ordering::SeqCst), 3);
        assert!(cache.stats().bytes <= 150);
    }

    #[test]
    fn invalidate_tag_drops_only_tagged_entries() {
        let cache = StageCache::new();
        let (counting, erased) = slot();
        let id = next_owner_id();
        cache.insert_tagged(id, 0, 10, &erased, Some(7));
        cache.insert_tagged(id, 1, 10, &erased, Some(8));
        cache.insert(id, 2, 10, &erased);
        assert_eq!(cache.invalidate_tag(7), 1);
        assert_eq!(counting.evicted.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 20);
        assert_eq!(s.invalidations, 1);
        // Untagged entries and other tags are untouched; a second
        // invalidation of the same tag is a no-op.
        assert_eq!(cache.invalidate_tag(7), 0);
    }

    #[test]
    fn reinserting_same_key_replaces_accounting() {
        let cache = StageCache::new();
        let (_counting, erased) = slot();
        let id = next_owner_id();
        cache.insert(id, 0, 100, &erased);
        cache.insert(id, 0, 40, &erased);
        let s = cache.stats();
        assert_eq!(s.bytes, 40);
        assert_eq!(s.entries, 1);
    }
}
