//! Virtual cluster description.
//!
//! The paper evaluates ScrubJay on a dedicated data cluster (10 nodes,
//! 32 cores and 64 GB per node, Intel Xeon E5-2667 v3). We reproduce that
//! environment with a *virtual* cluster: operations execute for real on
//! local threads, while a [`ClusterSpec`] drives (a) the default partition
//! count and local thread budget and (b) the analytic cost model in
//! [`crate::simtime`] that converts task metrics into simulated wall-clock
//! time for the configured node count.

use crate::error::{Result, SjdfError};
use serde::{Deserialize, Serialize};

/// Description of the (virtual) cluster a computation is costed against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes in the cluster.
    pub nodes: usize,
    /// Worker cores per node available to the executor.
    pub cores_per_node: usize,
    /// Memory per node in bytes (used for spill warnings only).
    pub mem_per_node: u64,
}

impl ClusterSpec {
    /// The cluster used throughout the paper's evaluation: 10 nodes with
    /// 32 cores and 64 GB of memory each.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            nodes: 10,
            cores_per_node: 32,
            mem_per_node: 64 * 1024 * 1024 * 1024,
        }
    }

    /// A single-machine cluster sized to the local host.
    pub fn local() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ClusterSpec {
            nodes: 1,
            cores_per_node: cores,
            mem_per_node: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Build a spec with the given shape, validating it.
    pub fn new(nodes: usize, cores_per_node: usize) -> Result<Self> {
        if nodes == 0 || cores_per_node == 0 {
            return Err(SjdfError::InvalidConfig(format!(
                "cluster must have >= 1 node and >= 1 core (got {nodes} x {cores_per_node})"
            )));
        }
        Ok(ClusterSpec {
            nodes,
            cores_per_node,
            mem_per_node: 64 * 1024 * 1024 * 1024,
        })
    }

    /// Same cluster with a different node count (for strong-scaling sweeps).
    pub fn with_nodes(&self, nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            ..self.clone()
        }
    }

    /// Total worker slots across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Default number of partitions for datasets created under this spec:
    /// two waves of tasks per core, the common Spark guideline.
    pub fn default_partitions(&self) -> usize {
        (self.total_cores() * 2).max(1)
    }

    /// Number of *local* threads to actually run tasks on. Capped by the
    /// host's parallelism so a 320-core virtual cluster does not spawn 320
    /// threads on a laptop.
    pub fn local_threads(&self) -> usize {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.total_cores().min(host).max(1)
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_evaluation_setup() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.nodes, 10);
        assert_eq!(c.cores_per_node, 32);
        assert_eq!(c.total_cores(), 320);
    }

    #[test]
    fn zero_sized_clusters_are_rejected() {
        assert!(ClusterSpec::new(0, 32).is_err());
        assert!(ClusterSpec::new(10, 0).is_err());
        assert!(ClusterSpec::new(1, 1).is_ok());
    }

    #[test]
    fn default_partitions_are_two_waves() {
        let c = ClusterSpec::new(2, 4).unwrap();
        assert_eq!(c.default_partitions(), 16);
    }

    #[test]
    fn local_threads_never_zero_and_bounded_by_host() {
        let c = ClusterSpec::paper_cluster();
        let host = std::thread::available_parallelism().unwrap().get();
        assert!(c.local_threads() >= 1);
        assert!(c.local_threads() <= host);
    }

    #[test]
    fn with_nodes_preserves_other_fields() {
        let c = ClusterSpec::paper_cluster().with_nodes(3);
        assert_eq!(c.nodes, 3);
        assert_eq!(c.cores_per_node, 32);
    }

    #[test]
    fn spec_serde_round_trip() {
        let c = ClusterSpec::paper_cluster();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
