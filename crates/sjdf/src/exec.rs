//! Task execution: run per-partition tasks on a bounded set of local
//! threads.
//!
//! Each evaluation wave spawns scoped worker threads (via
//! `crossbeam::thread::scope`) and distributes partition indices over them
//! with a shared atomic cursor — a minimal work-stealing-free dynamic
//! scheduler. Shuffle materialization inside an evaluation triggers nested
//! waves; because every wave owns its threads and joins them before
//! returning, nesting cannot deadlock.

use crate::cluster::ClusterSpec;
use crate::error::{Result, SjdfError};
use crate::metrics::MetricsCollector;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared execution context: the virtual cluster and the metrics sink.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// The virtual cluster this computation is configured (and costed) for.
    pub cluster: ClusterSpec,
    /// Sink that all tasks report metrics into.
    pub metrics: Arc<MetricsCollector>,
}

impl ExecCtx {
    /// Context for the given virtual cluster.
    pub fn new(cluster: ClusterSpec) -> Self {
        ExecCtx {
            cluster,
            metrics: MetricsCollector::new(),
        }
    }

    /// Context for a single-machine cluster sized to the host.
    pub fn local() -> Self {
        ExecCtx::new(ClusterSpec::local())
    }

    /// The same cluster with a fresh, empty metrics sink. A query service
    /// hands each request one of these so per-request [`MetricsReport`]s
    /// are isolated instead of accumulating into one shared collector.
    ///
    /// [`MetricsReport`]: crate::metrics::MetricsReport
    pub fn with_fresh_metrics(&self) -> Self {
        ExecCtx {
            cluster: self.cluster.clone(),
            metrics: MetricsCollector::new(),
        }
    }

    /// Run `task(i)` for every `i in 0..parts`, in parallel on up to
    /// [`ClusterSpec::local_threads`] threads, returning results in
    /// partition order.
    pub fn run_wave<T, F>(&self, parts: usize, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        if parts == 0 {
            return Ok(Vec::new());
        }
        let threads = self.cluster.local_threads().min(parts);
        if threads <= 1 {
            // Fast path: no thread spawn overhead for serial execution.
            let mut out = Vec::with_capacity(parts);
            for i in 0..parts {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))) {
                    Ok(v) => out.push(v),
                    Err(p) => return Err(SjdfError::TaskPanic(panic_message(&*p))),
                }
            }
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..parts).map(|_| Mutex::new(None)).collect();
        let panicked: Mutex<Option<String>> = Mutex::new(None);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= parts {
                        break;
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))) {
                        Ok(v) => *slots[i].lock() = Some(v),
                        Err(p) => {
                            let msg = panic_message(&*p);
                            *panicked.lock() = Some(msg);
                            break;
                        }
                    }
                });
            }
        })
        .map_err(|_| SjdfError::TaskPanic("executor scope panicked".into()))?;

        if let Some(msg) = panicked.into_inner() {
            return Err(SjdfError::TaskPanic(msg));
        }
        let mut out = Vec::with_capacity(parts);
        for slot in slots {
            match slot.into_inner() {
                Some(v) => out.push(v),
                // A sibling panicked after this task was claimed but before
                // it produced a value.
                None => return Err(SjdfError::TaskPanic("task did not complete".into())),
            }
        }
        Ok(out)
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_preserves_partition_order() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let out = ctx.run_wave(16, |i| i * 2).unwrap();
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_wave_is_ok() {
        let ctx = ExecCtx::local();
        let out: Vec<usize> = ctx.run_wave(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn serial_fast_path_works() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 1).unwrap());
        let out = ctx.run_wave(5, |i| i + 1).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn panics_are_converted_to_errors() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let res: Result<Vec<usize>> = ctx.run_wave(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
        match res {
            Err(SjdfError::TaskPanic(msg)) => {
                assert!(msg.contains("exploded") || msg.contains("complete"))
            }
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn nested_waves_do_not_deadlock() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
        let outer = ctx
            .run_wave(4, |i| {
                let inner = ctx.run_wave(4, |j| i * 10 + j).unwrap();
                inner.into_iter().sum::<usize>()
            })
            .unwrap();
        assert_eq!(outer, vec![6, 46, 86, 126]);
    }

    #[test]
    fn wave_uses_multiple_threads_when_available() {
        // With 4 local threads and 4 tasks, at least two distinct thread
        // ids should appear (unless the host is single-core).
        if std::thread::available_parallelism().unwrap().get() < 2 {
            return;
        }
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let barrier = std::sync::Barrier::new(2);
        let ids = ctx
            .run_wave(2, |_| {
                barrier.wait();
                std::thread::current().id()
            })
            .unwrap();
        assert_ne!(ids[0], ids[1]);
    }
}
