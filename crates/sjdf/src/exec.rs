//! Task execution: run per-partition tasks on a persistent executor pool,
//! with fault tolerance.
//!
//! Each [`ExecCtx`] owns one long-lived [`WorkerPool`] (sized by
//! [`ClusterSpec::local_threads`]) that is shared by every clone of the
//! context — evaluation waves no longer spawn threads. A wave distributes
//! partition indices over runners with a shared atomic cursor; the thread
//! that starts the wave always runs tasks itself (caller-helping), which
//! is what keeps nested waves deadlock-free — see [`crate::pool`] for the
//! argument. The context also carries the [`StageCache`], the byte-
//! budgeted memory layer behind [`Rdd::persist`](crate::Rdd::persist) and
//! auto-persisted shuffle outputs.
//!
//! # Fault tolerance
//!
//! A failed task attempt (a panic — genuine or injected by a
//! [`FaultPlan`]) is retried on the same lineage up to
//! [`RetryPolicy::max_attempts`] times with exponential backoff. Because
//! shuffle outputs and persisted partitions live in the [`StageCache`]
//! with exactly-once slots, a retry recomputes only the failed partition:
//! everything already materialized is fetched back from cache. When the
//! budget is exhausted the wave fails with
//! [`SjdfError::ExhaustedRetries`]; with the default budget of one
//! attempt, behavior is the classic fail-fast [`SjdfError::TaskPanic`].
//!
//! Straggler tasks can additionally be re-executed speculatively: when a
//! [`SpeculationPolicy`] is set, the wave's initiating thread watches for
//! claimed-but-unsettled tasks running far beyond the median task
//! duration and races a fresh attempt against them; the first to settle
//! the partition wins. All failure and recovery activity is counted in
//! the collector's [`FailureReport`](crate::metrics::FailureReport).

use crate::arena::{ArenaGuard, ArenaPool};
use crate::cluster::ClusterSpec;
use crate::error::{Result, SjdfError};
use crate::faults::{Fault, FaultPlan, FaultSite, INJECTED};
use crate::metrics::{FailureReport, MetricsCollector};
use crate::pool::WorkerPool;
use crate::stagecache::StageCache;
use sjtrace::{SpanId, Tracer};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How hard the executor tries to complete a task before giving up.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per task (first run + retries). `1` (the default)
    /// is classic fail-fast: any panic aborts the wave.
    pub max_attempts: u32,
    /// Backoff slept before the first retry.
    pub backoff: Duration,
    /// Growth factor applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// When set, stragglers are raced by speculative re-execution.
    pub speculation: Option<SpeculationPolicy>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(1),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_millis(100),
            speculation: None,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts per task, with
    /// default backoff and no speculation.
    pub fn retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Override the exponential-backoff parameters.
    pub fn with_backoff(mut self, base: Duration, multiplier: f64, cap: Duration) -> Self {
        self.backoff = base;
        self.backoff_multiplier = multiplier;
        self.max_backoff = cap;
        self
    }

    /// Enable speculative re-execution of stragglers.
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Backoff to sleep after failed attempt number `attempt` (0-based):
    /// `backoff * multiplier^attempt`, capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = self
            .backoff_multiplier
            .max(1.0)
            .powi(attempt.min(30) as i32);
        let secs = self.backoff.as_secs_f64() * factor;
        Duration::from_secs_f64(secs.min(self.max_backoff.as_secs_f64()))
    }
}

/// When a running task counts as a straggler worth racing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationPolicy {
    /// A task is suspect once it has run `multiplier ×` the median
    /// duration of the wave's already-completed tasks.
    pub multiplier: f64,
    /// Never speculate on tasks younger than this, whatever the median.
    pub min_runtime: Duration,
    /// How often the initiating thread re-checks for stragglers.
    pub check_interval: Duration,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            multiplier: 4.0,
            min_runtime: Duration::from_millis(20),
            check_interval: Duration::from_millis(2),
        }
    }
}

thread_local! {
    /// Attempt number of the task currently running on this thread; fault
    /// decisions at inner injection sites (shuffle fetches) key off it so
    /// a retried task re-rolls its fetch faults too.
    static CURRENT_ATTEMPT: Cell<u32> = const { Cell::new(0) };
}

/// The attempt number of the task executing on this thread (0 outside
/// any task).
pub(crate) fn current_attempt() -> u32 {
    CURRENT_ATTEMPT.with(|c| c.get())
}

/// Scope guard that sets the thread's current attempt and restores the
/// previous value on drop — nested waves each see their own attempt.
struct AttemptScope {
    prev: u32,
}

impl AttemptScope {
    fn enter(attempt: u32) -> Self {
        AttemptScope {
            prev: CURRENT_ATTEMPT.with(|c| c.replace(attempt)),
        }
    }
}

impl Drop for AttemptScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_ATTEMPT.with(|c| c.set(prev));
    }
}

/// If the plan injects a failure for this task attempt, record it and
/// return the panic message to fail with; injected delays are slept here.
fn injected_task_failure(
    plan: Option<&FaultPlan>,
    metrics: &MetricsCollector,
    part: usize,
    attempt: u32,
) -> Option<String> {
    match plan?.decide(FaultSite::Task, part, attempt) {
        Some(Fault::Fail) => {
            metrics.record_injected_task_fault();
            Some(format!(
                "{INJECTED} task failure (partition {part}, attempt {attempt})"
            ))
        }
        Some(Fault::Delay(d)) => {
            metrics.record_injected_delay();
            std::thread::sleep(d);
            None
        }
        None => None,
    }
}

/// Execution options shared by every clone of one [`ExecCtx`] (datasets
/// snapshot the context at build time, so per-clone options would never
/// reach already-built lineages).
#[derive(Debug, Default)]
struct ExecOpts {
    retry: RetryPolicy,
    faults: Option<Arc<FaultPlan>>,
    /// When set, datasets built on this context keep the legacy rowwise
    /// `Vec<Row>` partition layout instead of columnar batches. Used by
    /// the byte-identity probe and the kernel benchmarks to compare the
    /// two execute paths; production contexts leave it off.
    rowwise: bool,
}

/// Shared execution context: the virtual cluster, the executor pool, the
/// stage cache, the retry policy, the metrics sink, and (in chaos tests)
/// a fault plan.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// The virtual cluster this computation is configured (and costed) for.
    pub cluster: ClusterSpec,
    /// Sink that all tasks report metrics into.
    pub metrics: Arc<MetricsCollector>,
    pool: Arc<WorkerPool>,
    stage_cache: Arc<StageCache>,
    arenas: Arc<ArenaPool>,
    opts: Arc<Mutex<ExecOpts>>,
    tracer: Tracer,
}

impl ExecCtx {
    /// Context for the given virtual cluster, spawning its executor pool.
    pub fn new(cluster: ClusterSpec) -> Self {
        let pool = WorkerPool::new(cluster.local_threads());
        ExecCtx {
            cluster,
            metrics: MetricsCollector::new(),
            pool,
            stage_cache: StageCache::new(),
            arenas: ArenaPool::new(),
            opts: Arc::new(Mutex::new(ExecOpts::default())),
            tracer: Tracer::new(),
        }
    }

    /// Context for a single-machine cluster sized to the host.
    pub fn local() -> Self {
        ExecCtx::new(ClusterSpec::local())
    }

    /// The same cluster with a fresh, empty metrics sink. A query service
    /// hands each request one of these so per-request [`MetricsReport`]s
    /// are isolated instead of accumulating into one shared collector.
    /// The executor pool, stage cache, retry policy, and fault plan are
    /// shared, not re-created.
    ///
    /// [`MetricsReport`]: crate::metrics::MetricsReport
    pub fn with_fresh_metrics(&self) -> Self {
        ExecCtx {
            cluster: self.cluster.clone(),
            metrics: MetricsCollector::new(),
            pool: Arc::clone(&self.pool),
            stage_cache: Arc::clone(&self.stage_cache),
            arenas: Arc::clone(&self.arenas),
            opts: Arc::clone(&self.opts),
            tracer: self.tracer.clone(),
        }
    }

    /// Use the given retry policy for every wave run on this context
    /// (builder form of [`ExecCtx::set_retry`]).
    pub fn with_retry(self, retry: RetryPolicy) -> Self {
        self.set_retry(retry);
        self
    }

    /// Use the given retry policy for every wave run on this context.
    /// Shared by all clones, so it also governs datasets built from this
    /// context before the call.
    pub fn set_retry(&self, retry: RetryPolicy) {
        lock(&self.opts).retry = retry;
    }

    /// Install a deterministic fault plan (builder form of
    /// [`ExecCtx::set_faults`]).
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.set_faults(Some(plan));
        self
    }

    /// Remove any installed fault plan — from every clone of this
    /// context. Reference (fault-free) runs should use a separate
    /// context rather than toggling a shared one mid-flight.
    pub fn without_faults(self) -> Self {
        self.set_faults(None);
        self
    }

    /// Install or clear the fault plan consulted by every task attempt
    /// and shuffle fetch executed through this context (all clones).
    pub fn set_faults(&self, plan: Option<FaultPlan>) {
        lock(&self.opts).faults = plan.map(Arc::new);
    }

    /// Keep the legacy rowwise partition layout for datasets built on
    /// this context (builder form of [`ExecCtx::set_rowwise`]). The
    /// rowwise path is the baseline the columnar execute path is
    /// byte-compared and benchmarked against.
    pub fn with_rowwise(self) -> Self {
        self.set_rowwise(true);
        self
    }

    /// Toggle the rowwise fallback layout — shared by all clones.
    pub fn set_rowwise(&self, rowwise: bool) {
        lock(&self.opts).rowwise = rowwise;
    }

    /// True (the default) when datasets built on this context use
    /// columnar partition batches on the execute path.
    pub fn columnar(&self) -> bool {
        !lock(&self.opts).rowwise
    }

    /// Borrow a per-task scratch arena from the context's pool. The
    /// arena is reset and recycled when the guard drops, so hot kernels
    /// pay no allocator churn for per-task scratch in steady state.
    pub fn arena(&self) -> ArenaGuard {
        self.arenas.take()
    }

    /// The retry policy waves run under (a snapshot).
    pub fn retry_policy(&self) -> RetryPolicy {
        lock(&self.opts).retry.clone()
    }

    /// The installed fault plan, if any (a snapshot).
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        lock(&self.opts).faults.clone()
    }

    /// The span tracer shared by every clone of this context (including
    /// [`ExecCtx::with_fresh_metrics`] clones, so a service can trace all
    /// requests through one sink). Created disabled; call
    /// [`Tracer::enable`] to start recording.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Tag the metrics collector with a correlation id; it is echoed on
    /// every [`FailureReport`] the collector produces, so executor-side
    /// failure accounting can be matched to the originating request even
    /// when requests run concurrently.
    pub fn set_query_id(&self, id: Option<String>) {
        self.metrics.set_query_id(id);
    }

    /// Open a `job` span for one action (`collect`, `count`, ...) on the
    /// calling thread. A no-op guard when tracing is disabled.
    pub(crate) fn job_span(&self, action: &'static str) -> sjtrace::SpanGuard {
        let mut span = self.tracer.span("job");
        if span.is_recording() {
            span.set_detail(format!("action={action}"));
        }
        span
    }

    /// Open a `shuffle_fetch` span around one bucket fetch.
    pub(crate) fn shuffle_fetch_span(&self, op: &'static str, part: usize) -> sjtrace::SpanGuard {
        let mut span = self.tracer.span("shuffle_fetch");
        if span.is_recording() {
            span.set_detail(format!("op={op} part={part}"));
        }
        span
    }

    /// Snapshot of the failure/recovery counters recorded so far.
    pub fn failure_report(&self) -> FailureReport {
        self.metrics.failure_report()
    }

    /// The byte-budgeted memory layer behind `persist()` and shuffle
    /// auto-persist, shared by all clones of this context.
    pub fn stage_cache(&self) -> &Arc<StageCache> {
        &self.stage_cache
    }

    /// Set the stage-cache byte budget (LRU entries beyond it are
    /// evicted and recomputed on next use). Convenience passthrough.
    pub fn set_cache_budget(&self, bytes: u64) {
        self.stage_cache.set_budget(bytes);
    }

    /// Fault-injection hook for shuffle-bucket fetches: panics with an
    /// injected-fault message when the plan fails this fetch. The fetch
    /// is keyed by the *consuming* task's attempt, so a retried consumer
    /// re-rolls its fetch faults.
    pub(crate) fn check_shuffle_fetch(&self, op: &str, part: usize) {
        if let Some(plan) = self.faults() {
            let attempt = current_attempt();
            let stream = crate::faults::stream_of(op);
            if plan.decide_at(FaultSite::ShuffleFetch, stream, part, attempt) == Some(Fault::Fail) {
                self.metrics.record_injected_shuffle_fault();
                if self.tracer.enabled() {
                    self.tracer.instant(
                        "fault_injected",
                        format!("shuffle_fetch op={op} part={part} attempt={attempt}"),
                    );
                }
                panic!(
                    "{INJECTED} shuffle fetch failure \
                     (op `{op}`, partition {part}, attempt {attempt})"
                );
            }
        }
    }

    /// Run one partition task on the *calling* thread under this
    /// context's retry policy and fault plan — the single-task analogue
    /// of [`ExecCtx::run_wave`], used by inline actions like `take()` so
    /// injected faults surface as errors, never as caller panics.
    pub(crate) fn run_inline<T>(&self, part: usize, task: impl Fn() -> T) -> Result<T> {
        let policy = self.retry_policy();
        let faults = self.faults();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            let outcome = {
                let mut span = self.tracer.span("task");
                if span.is_recording() {
                    span.set_detail(format!("part={part} attempt={attempt} inline"));
                }
                let result =
                    match injected_task_failure(faults.as_deref(), &self.metrics, part, attempt) {
                        Some(msg) => {
                            if span.is_recording() {
                                self.tracer.instant(
                                    "fault_injected",
                                    format!("task part={part} attempt={attempt}"),
                                );
                            }
                            Err(msg)
                        }
                        None => {
                            let _scope = AttemptScope::enter(attempt);
                            catch_unwind(AssertUnwindSafe(&task)).map_err(|p| panic_message(&*p))
                        }
                    };
                if result.is_err() {
                    span.fail();
                }
                result
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(msg) => {
                    self.metrics.record_task_failure();
                    attempt += 1;
                    if attempt >= max_attempts {
                        return Err(if max_attempts <= 1 {
                            SjdfError::TaskPanic(msg)
                        } else {
                            self.metrics.record_task_exhausted();
                            SjdfError::ExhaustedRetries {
                                partition: part,
                                attempts: attempt,
                                last_error: msg,
                            }
                        });
                    }
                    let backoff = policy.backoff_for(attempt - 1);
                    self.metrics.record_task_retry(backoff);
                    if self.tracer.enabled() {
                        self.tracer.instant(
                            "retry",
                            format!("part={part} next_attempt={attempt} inline"),
                        );
                    }
                    if !backoff.is_zero() {
                        let mut pause = self.tracer.span("backoff");
                        if pause.is_recording() {
                            pause.set_detail(format!("part={part} inline"));
                        }
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// Run `task(i)` for every `i in 0..parts`, in parallel on up to
    /// [`ClusterSpec::local_threads`] runners (the calling thread plus
    /// pool workers), returning results in partition order. Failed
    /// attempts are retried per the context's [`RetryPolicy`].
    pub fn run_wave<T, F>(&self, parts: usize, task: F) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if parts == 0 {
            return Ok(Vec::new());
        }
        let threads = self.cluster.local_threads().min(parts);
        let mut wave_span = self.tracer.span("wave");
        if wave_span.is_recording() {
            wave_span.set_detail(format!("parts={parts} threads={threads}"));
        }
        let wave = Arc::new(Wave::new(
            parts,
            task,
            self.retry_policy(),
            self.faults(),
            Arc::clone(&self.metrics),
            (self.tracer.clone(), wave_span.id(), wave_span.root()),
        ));
        // One runner job per extra thread; the caller is the last runner.
        // Correctness never depends on a job being picked up — stale jobs
        // from an already-finished wave exit via the exhausted cursor.
        for _ in 1..threads {
            let wave = Arc::clone(&wave);
            self.pool.submit(Box::new(move || wave.run()));
        }
        // Speculation must not depend on a runner being free — on a
        // single-core host every runner may be the straggler — so a
        // dedicated monitor thread owns the straggler scan.
        let monitor = if wave.policy.speculation.is_some() {
            let wave = Arc::clone(&wave);
            Some(std::thread::spawn(move || wave.speculate_until_settled()))
        } else {
            None
        };
        wave.run();
        wave.wait();
        if let Some(monitor) = monitor {
            let _ = monitor.join();
        }
        let result = wave.finish();
        if result.is_err() {
            wave_span.fail();
        }
        result
    }
}

/// Per-partition state of one evaluation wave.
struct Slot<T> {
    /// The settled result, if the settling attempt succeeded.
    value: Mutex<Option<T>>,
    /// Exactly one attempt settles a slot; later finishers are discarded.
    settled: AtomicBool,
    /// Microseconds (+1) since the wave's epoch when the task was first
    /// claimed; 0 = unclaimed. Drives straggler detection.
    started_us: AtomicU64,
    /// Set once a speculative attempt has been launched for this slot.
    speculated: AtomicBool,
    /// Count of speculative attempts (their attempt ids are offset past
    /// the retry budget so fault decisions stay distinct).
    spec_attempts: AtomicU32,
}

/// Shared state of one evaluation wave.
struct Wave<T, F> {
    task: F,
    parts: usize,
    /// Next unclaimed partition index.
    cursor: AtomicUsize,
    slots: Vec<Slot<T>>,
    /// Count of settled partitions (completed, failed, or drained).
    done: AtomicUsize,
    /// Set on the first permanent failure; runners then drain instead of
    /// computing.
    failed: AtomicBool,
    /// The *first* permanent failure — later failures never overwrite it.
    first_error: Mutex<Option<SjdfError>>,
    complete: Mutex<bool>,
    completed: Condvar,
    policy: RetryPolicy,
    faults: Option<Arc<FaultPlan>>,
    metrics: Arc<MetricsCollector>,
    epoch: Instant,
    /// Durations (µs) of completed tasks, for the straggler median.
    durations_us: Mutex<Vec<u64>>,
    tracer: Tracer,
    /// The wave span's id and root, passed explicitly to task spans
    /// because attempts run on pool threads whose span stacks do not hold
    /// the wave span (it lives on the initiating thread).
    span: SpanId,
    root: SpanId,
}

impl<T, F> Wave<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    fn new(
        parts: usize,
        task: F,
        policy: RetryPolicy,
        faults: Option<Arc<FaultPlan>>,
        metrics: Arc<MetricsCollector>,
        trace: (Tracer, SpanId, SpanId),
    ) -> Self {
        Wave {
            task,
            parts,
            cursor: AtomicUsize::new(0),
            slots: (0..parts)
                .map(|_| Slot {
                    value: Mutex::new(None),
                    settled: AtomicBool::new(false),
                    started_us: AtomicU64::new(0),
                    speculated: AtomicBool::new(false),
                    spec_attempts: AtomicU32::new(0),
                })
                .collect(),
            done: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            first_error: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
            policy,
            faults,
            metrics,
            epoch: Instant::now(),
            durations_us: Mutex::new(Vec::new()),
            tracer: trace.0,
            span: trace.1,
            root: trace.2,
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Claim and run task indices until the cursor is exhausted, then —
    /// when speculation is enabled — stay with the wave to race
    /// stragglers until every slot settles. Called by pool workers and by
    /// the wave's initiating thread alike, so *any* free runner can
    /// speculate (the initiating thread may itself be stuck running the
    /// straggler).
    fn run(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.parts {
                break;
            }
            self.run_partition(i);
        }
        self.speculate_until_settled();
    }

    /// Drive one partition through its retry loop until it settles.
    fn run_partition(&self, i: usize) {
        self.slots[i]
            .started_us
            .store(self.now_us() + 1, Ordering::Release);
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            if self.failed.load(Ordering::Acquire) || self.slots[i].settled.load(Ordering::Acquire)
            {
                // Failure elsewhere (drain) or a speculative win.
                self.settle_drained(i);
                return;
            }
            match self.execute_attempt(i, attempt, false) {
                Ok(v) => {
                    self.settle_value(i, v, false);
                    return;
                }
                Err(msg) => {
                    self.metrics.record_task_failure();
                    if self.slots[i].settled.load(Ordering::Acquire) {
                        // A speculative attempt already settled this
                        // partition; this failure is moot.
                        return;
                    }
                    attempt += 1;
                    if attempt >= max_attempts {
                        let err = if max_attempts <= 1 {
                            SjdfError::TaskPanic(msg)
                        } else {
                            self.metrics.record_task_exhausted();
                            SjdfError::ExhaustedRetries {
                                partition: i,
                                attempts: attempt,
                                last_error: msg,
                            }
                        };
                        let mut first = lock(&self.first_error);
                        if first.is_none() {
                            *first = Some(err);
                        }
                        drop(first);
                        self.failed.store(true, Ordering::Release);
                        self.settle_drained(i);
                        return;
                    }
                    let backoff = self.policy.backoff_for(attempt - 1);
                    self.metrics.record_task_retry(backoff);
                    if self.tracer.enabled() {
                        self.tracer.instant_under(
                            "retry",
                            format!(
                                "part={i} next_attempt={attempt} backoff_us={}",
                                backoff.as_micros()
                            ),
                            self.span,
                            self.root,
                        );
                    }
                    if !backoff.is_zero() {
                        let mut pause = self.tracer.child_span("backoff", self.span, self.root);
                        if pause.is_recording() {
                            pause.set_detail(format!("part={i}"));
                        }
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// One attempt: consult the fault plan, then run the task under
    /// `catch_unwind`. Returns the panic message on failure. The whole
    /// attempt — injection check included — runs under a `task` span that
    /// is closed and marked failed on any error, so a killed attempt
    /// still produces a well-formed span. Speculative attempts are
    /// detached: they may outlive the wave span when they lose the race.
    fn execute_attempt(
        &self,
        i: usize,
        attempt: u32,
        speculative: bool,
    ) -> std::result::Result<T, String> {
        let mut span = self.tracer.child_span("task", self.span, self.root);
        if span.is_recording() {
            if speculative {
                span.detach();
            }
            span.set_detail(format!(
                "part={i} attempt={attempt}{}",
                if speculative { " speculative" } else { "" }
            ));
        }
        if let Some(msg) = injected_task_failure(self.faults.as_deref(), &self.metrics, i, attempt)
        {
            if span.is_recording() {
                self.tracer
                    .instant("fault_injected", format!("task part={i} attempt={attempt}"));
            }
            span.fail();
            return Err(msg);
        }
        let _scope = AttemptScope::enter(attempt);
        let result =
            catch_unwind(AssertUnwindSafe(|| (self.task)(i))).map_err(|p| panic_message(&*p));
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Settle a slot with a computed value; exactly one settler wins.
    fn settle_value(&self, i: usize, v: T, speculative: bool) {
        let slot = &self.slots[i];
        if !slot.settled.swap(true, Ordering::AcqRel) {
            *lock(&slot.value) = Some(v);
            let started = slot.started_us.load(Ordering::Acquire);
            if started > 0 {
                lock(&self.durations_us).push(self.now_us().saturating_sub(started - 1));
            }
            if speculative {
                self.metrics.record_speculative_win();
                if self.tracer.enabled() {
                    self.tracer.instant_under(
                        "speculative_win",
                        format!("part={i}"),
                        self.span,
                        self.root,
                    );
                }
            }
            self.bump_done();
        }
    }

    /// Settle a slot without a value (drain after failure, or the losing
    /// side of a speculative race). Idempotent.
    fn settle_drained(&self, i: usize) {
        if !self.slots[i].settled.swap(true, Ordering::AcqRel) {
            self.bump_done();
        }
    }

    fn bump_done(&self) {
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.parts {
            let mut complete = lock(&self.complete);
            *complete = true;
            self.completed.notify_all();
        }
    }

    /// Block until every partition settled. The caller has already run
    /// [`Wave::run`], so it only ever waits on tasks claimed by live pool
    /// workers — never on an unclaimed task.
    fn wait(&self) {
        let mut complete = lock(&self.complete);
        while !*complete {
            complete = self
                .completed
                .wait(complete)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Periodically scan for stragglers and race fresh attempts against
    /// them inline. Returns when the wave completes or fails; a no-op
    /// without a speculation policy (or for a stale runner job whose wave
    /// already finished).
    fn speculate_until_settled(&self) {
        let Some(spec) = self.policy.speculation.clone() else {
            return;
        };
        loop {
            {
                let complete = lock(&self.complete);
                if *complete {
                    return;
                }
                let (guard, _timed_out) = self
                    .completed
                    .wait_timeout(complete, spec.check_interval)
                    .unwrap_or_else(|poison| poison.into_inner());
                if *guard {
                    return;
                }
            }
            if self.failed.load(Ordering::Acquire) {
                return;
            }
            if let Some(i) = self.straggler(&spec) {
                self.run_speculative(i);
            }
        }
    }

    /// A claimed, unsettled, not-yet-speculated slot whose elapsed time
    /// exceeds both the policy floor and `multiplier ×` the median
    /// completed-task duration (just the floor until a task completes —
    /// on a serial context the straggler may be the *first* task).
    fn straggler(&self, spec: &SpeculationPolicy) -> Option<usize> {
        let mut durations = lock(&self.durations_us).clone();
        durations.sort_unstable();
        let median = durations.get(durations.len() / 2).copied().unwrap_or(0);
        let threshold =
            (spec.min_runtime.as_micros() as u64).max((median as f64 * spec.multiplier) as u64);
        let now = self.now_us();
        for (i, slot) in self.slots.iter().enumerate() {
            let started = slot.started_us.load(Ordering::Acquire);
            if started == 0
                || slot.settled.load(Ordering::Acquire)
                || slot.speculated.load(Ordering::Acquire)
            {
                continue;
            }
            if now.saturating_sub(started - 1) > threshold {
                return Some(i);
            }
        }
        None
    }

    /// Race one fresh attempt against the straggling original. Its
    /// attempt id is offset past the retry budget so fault decisions are
    /// independent of the original's. A speculative failure is recorded
    /// but never fails the wave — the original still owns the slot.
    fn run_speculative(&self, i: usize) {
        let slot = &self.slots[i];
        if slot.speculated.swap(true, Ordering::AcqRel) {
            // Another free runner already raced this slot.
            return;
        }
        self.metrics.record_speculative_launch();
        let attempt =
            self.policy.max_attempts.max(1) + slot.spec_attempts.fetch_add(1, Ordering::AcqRel);
        if self.tracer.enabled() {
            self.tracer.instant_under(
                "speculate",
                format!("part={i} attempt={attempt}"),
                self.span,
                self.root,
            );
        }
        if slot.settled.load(Ordering::Acquire) {
            return;
        }
        match self.execute_attempt(i, attempt, true) {
            Ok(v) => self.settle_value(i, v, true),
            Err(_) => self.metrics.record_task_failure(),
        }
    }

    /// Gather results in partition order, preferring the first recorded
    /// failure over the empty-slot placeholder.
    fn finish(self: Arc<Self>) -> Result<Vec<T>> {
        if let Some(err) = lock(&self.first_error).take() {
            return Err(err);
        }
        let mut out = Vec::with_capacity(self.parts);
        for slot in &self.slots {
            match lock(&slot.value).take() {
                Some(v) => out.push(v),
                // Unreachable in practice: a slot can only be empty when a
                // failure was recorded, which returns above.
                None => return Err(SjdfError::TaskPanic("task did not complete".into())),
            }
        }
        Ok(out)
    }
}

/// Recover from std mutex poisoning: wave slots hold plain values and the
/// failure bookkeeping is monotonic, so the data is always consistent.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_preserves_partition_order() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let out = ctx.run_wave(16, |i| i * 2).unwrap();
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_wave_is_ok() {
        let ctx = ExecCtx::local();
        let out: Vec<usize> = ctx.run_wave(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn serial_fast_path_works() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 1).unwrap());
        let out = ctx.run_wave(5, |i| i + 1).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn panics_are_converted_to_errors() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let res: Result<Vec<usize>> = ctx.run_wave(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
        match res {
            // The real payload must surface — not the generic
            // "task did not complete" placeholder.
            Err(SjdfError::TaskPanic(msg)) => {
                assert!(msg.contains("task 3 exploded"), "got: {msg}")
            }
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn first_panic_wins_over_later_panics() {
        // Every task panics with its own message; whatever surfaced must
        // be one of the real messages, never the placeholder.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let res: Result<Vec<usize>> = ctx.run_wave(8, |i| panic!("task {i} failed"));
        match res {
            Err(SjdfError::TaskPanic(msg)) => {
                assert!(
                    msg.starts_with("task ") && msg.ends_with(" failed"),
                    "{msg}"
                )
            }
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn nested_waves_do_not_deadlock() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
        let inner_ctx = ctx.clone();
        let outer = ctx
            .run_wave(4, move |i| {
                let inner = inner_ctx.run_wave(4, move |j| i * 10 + j).unwrap();
                inner.into_iter().sum::<usize>()
            })
            .unwrap();
        assert_eq!(outer, vec![6, 46, 86, 126]);
    }

    #[test]
    fn deeply_nested_waves_complete() {
        // Three levels of nesting on a 2-thread pool: progress must come
        // from caller-helping, not from free workers.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
        let c1 = ctx.clone();
        let sums = ctx
            .run_wave(3, move |i| {
                let c2 = c1.clone();
                c1.run_wave(3, move |j| {
                    let inner = c2.run_wave(3, move |k| i + j + k).unwrap();
                    inner.into_iter().sum::<usize>()
                })
                .unwrap()
                .into_iter()
                .sum::<usize>()
            })
            .unwrap();
        // sum over j,k in 0..3 of (i+j+k) = 9i + 18
        assert_eq!(sums, vec![18, 27, 36]);
    }

    #[test]
    fn pool_is_reused_across_waves() {
        // Two waves on the same context run on the same long-lived pool
        // threads (named sjdf-worker-*), not freshly spawned ones.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let names = |v: Vec<Option<String>>| {
            let mut v: Vec<String> = v.into_iter().flatten().collect();
            v.sort();
            v.dedup();
            v
        };
        let first = names(
            ctx.run_wave(8, |_| std::thread::current().name().map(String::from))
                .unwrap(),
        );
        let second = names(
            ctx.run_wave(8, |_| std::thread::current().name().map(String::from))
                .unwrap(),
        );
        let workers_seen = |v: &[String]| v.iter().any(|n| n.starts_with("sjdf-worker-"));
        if workers_seen(&first) && workers_seen(&second) {
            let w1: Vec<&String> = first
                .iter()
                .filter(|n| n.starts_with("sjdf-worker-"))
                .collect();
            assert!(
                w1.iter().all(|n| second.contains(n)),
                "{first:?} {second:?}"
            );
        }
    }

    #[test]
    fn wave_uses_multiple_threads_when_available() {
        // With 4 local threads and 2 barrier-synced tasks, two distinct
        // thread ids must appear (unless the host is single-core).
        if std::thread::available_parallelism().unwrap().get() < 2 {
            return;
        }
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let ids = ctx
            .run_wave(2, move |_| {
                barrier.wait();
                std::thread::current().id()
            })
            .unwrap();
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn concurrent_waves_share_one_pool() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let outputs: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let ctx = ctx.clone();
                    s.spawn(move || ctx.run_wave(16, move |i| w * 100 + i).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (w, out) in outputs.into_iter().enumerate() {
            assert_eq!(out, (0..16).map(|i| w * 100 + i).collect::<Vec<_>>());
        }
    }

    // ------------------------------------------------------------------
    // Retry / fault-injection behavior
    // ------------------------------------------------------------------

    #[test]
    fn injected_fault_with_budget_one_is_fail_fast() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap())
            .with_faults(FaultPlan::seeded(0).kill_attempt(1, 0));
        let res: Result<Vec<usize>> = ctx.run_wave(4, |i| i);
        match res {
            Err(SjdfError::TaskPanic(msg)) => assert!(msg.contains(INJECTED), "{msg}"),
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn retry_recovers_from_a_transient_fault() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap())
            .with_retry(RetryPolicy::retries(3))
            .with_faults(FaultPlan::seeded(0).kill_attempt(1, 0).kill_attempt(2, 0));
        let out = ctx.run_wave(4, |i| i * 10).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
        let failures = ctx.failure_report();
        assert_eq!(failures.injected_task_faults, 2);
        assert_eq!(failures.task_retries, 2);
        assert_eq!(failures.tasks_exhausted, 0);
        assert!(failures.backoff_secs > 0.0);
    }

    #[test]
    fn retry_recovers_on_a_serial_context_too() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 1).unwrap())
            .with_retry(RetryPolicy::retries(2))
            .with_faults(FaultPlan::seeded(0).kill_attempt(0, 0));
        let out = ctx.run_wave(3, |i| i + 1).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_partition_exhausts_its_budget() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap())
            .with_retry(RetryPolicy::retries(3))
            .with_faults(FaultPlan::seeded(0).poison_partition(2));
        let res: Result<Vec<usize>> = ctx.run_wave(4, |i| i);
        match res {
            Err(SjdfError::ExhaustedRetries {
                partition,
                attempts,
                last_error,
            }) => {
                assert_eq!(partition, 2);
                assert_eq!(attempts, 3);
                assert!(last_error.contains(INJECTED), "{last_error}");
            }
            other => panic!("expected ExhaustedRetries, got {other:?}"),
        }
        assert_eq!(ctx.failure_report().tasks_exhausted, 1);
    }

    #[test]
    fn genuine_panics_are_retried_under_a_budget() {
        use std::sync::atomic::AtomicUsize;
        let tries = Arc::new(AtomicUsize::new(0));
        let ctx = ExecCtx::new(ClusterSpec::new(1, 1).unwrap()).with_retry(RetryPolicy::retries(3));
        let t = Arc::clone(&tries);
        let out = ctx
            .run_wave(1, move |i| {
                if t.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("flaky once");
                }
                i + 7
            })
            .unwrap();
        assert_eq!(out, vec![7]);
        assert_eq!(tries.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::retries(8).with_backoff(
            Duration::from_millis(10),
            2.0,
            Duration::from_millis(35),
        );
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(35)); // capped
        assert_eq!(p.backoff_for(10), Duration::from_millis(35));
    }

    #[test]
    fn speculation_rescues_an_injected_straggler() {
        let spec = SpeculationPolicy {
            multiplier: 3.0,
            min_runtime: Duration::from_millis(30),
            check_interval: Duration::from_millis(2),
        };
        // Partition 0 attempt 0 is delayed far past the median; the
        // speculative attempt (id >= max_attempts) is not delayed.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
            .with_retry(RetryPolicy::retries(1).with_speculation(spec))
            .with_faults(
                FaultPlan::seeded(0).with_delays(0.0, Duration::ZERO), // inert rates
            );
        // Build the straggler with a task-side sleep keyed on attempt:
        // the original (attempt 0) sleeps, the speculative copy does not.
        let out = ctx
            .run_wave(8, |i| {
                if i == 0 && current_attempt() == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                i * 3
            })
            .unwrap();
        assert_eq!(out, (0..8).map(|i| i * 3).collect::<Vec<_>>());
        let failures = ctx.failure_report();
        assert!(failures.speculative_launched >= 1, "{failures:?}");
        assert_eq!(failures.speculative_wins, failures.speculative_launched);
    }

    #[test]
    fn current_attempt_is_zero_outside_tasks() {
        assert_eq!(current_attempt(), 0);
    }
}
