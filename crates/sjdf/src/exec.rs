//! Task execution: run per-partition tasks on a persistent executor pool.
//!
//! Each [`ExecCtx`] owns one long-lived [`WorkerPool`] (sized by
//! [`ClusterSpec::local_threads`]) that is shared by every clone of the
//! context — evaluation waves no longer spawn threads. A wave distributes
//! partition indices over runners with a shared atomic cursor; the thread
//! that starts the wave always runs tasks itself (caller-helping), which
//! is what keeps nested waves deadlock-free — see [`crate::pool`] for the
//! argument. The context also carries the [`StageCache`], the byte-
//! budgeted memory layer behind [`Rdd::persist`](crate::Rdd::persist) and
//! auto-persisted shuffle outputs.

use crate::cluster::ClusterSpec;
use crate::error::{Result, SjdfError};
use crate::metrics::MetricsCollector;
use crate::pool::WorkerPool;
use crate::stagecache::StageCache;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared execution context: the virtual cluster, the executor pool, the
/// stage cache, and the metrics sink.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// The virtual cluster this computation is configured (and costed) for.
    pub cluster: ClusterSpec,
    /// Sink that all tasks report metrics into.
    pub metrics: Arc<MetricsCollector>,
    pool: Arc<WorkerPool>,
    stage_cache: Arc<StageCache>,
}

impl ExecCtx {
    /// Context for the given virtual cluster, spawning its executor pool.
    pub fn new(cluster: ClusterSpec) -> Self {
        let pool = WorkerPool::new(cluster.local_threads());
        ExecCtx {
            cluster,
            metrics: MetricsCollector::new(),
            pool,
            stage_cache: StageCache::new(),
        }
    }

    /// Context for a single-machine cluster sized to the host.
    pub fn local() -> Self {
        ExecCtx::new(ClusterSpec::local())
    }

    /// The same cluster with a fresh, empty metrics sink. A query service
    /// hands each request one of these so per-request [`MetricsReport`]s
    /// are isolated instead of accumulating into one shared collector.
    /// The executor pool and stage cache are shared, not re-created.
    ///
    /// [`MetricsReport`]: crate::metrics::MetricsReport
    pub fn with_fresh_metrics(&self) -> Self {
        ExecCtx {
            cluster: self.cluster.clone(),
            metrics: MetricsCollector::new(),
            pool: Arc::clone(&self.pool),
            stage_cache: Arc::clone(&self.stage_cache),
        }
    }

    /// The byte-budgeted memory layer behind `persist()` and shuffle
    /// auto-persist, shared by all clones of this context.
    pub fn stage_cache(&self) -> &Arc<StageCache> {
        &self.stage_cache
    }

    /// Set the stage-cache byte budget (LRU entries beyond it are
    /// evicted and recomputed on next use). Convenience passthrough.
    pub fn set_cache_budget(&self, bytes: u64) {
        self.stage_cache.set_budget(bytes);
    }

    /// Run `task(i)` for every `i in 0..parts`, in parallel on up to
    /// [`ClusterSpec::local_threads`] runners (the calling thread plus
    /// pool workers), returning results in partition order.
    pub fn run_wave<T, F>(&self, parts: usize, task: F) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if parts == 0 {
            return Ok(Vec::new());
        }
        let threads = self.cluster.local_threads().min(parts);
        if threads <= 1 {
            // Fast path: no queue traffic for serial execution.
            let mut out = Vec::with_capacity(parts);
            for i in 0..parts {
                match catch_unwind(AssertUnwindSafe(|| task(i))) {
                    Ok(v) => out.push(v),
                    Err(p) => return Err(SjdfError::TaskPanic(panic_message(&*p))),
                }
            }
            return Ok(out);
        }

        let wave = Arc::new(Wave::new(parts, task));
        // One runner job per extra thread; the caller is the last runner.
        // Correctness never depends on a job being picked up — stale jobs
        // from an already-finished wave exit via the exhausted cursor.
        for _ in 0..threads - 1 {
            let wave = Arc::clone(&wave);
            self.pool.submit(Box::new(move || wave.run()));
        }
        wave.run();
        wave.wait();
        wave.finish()
    }
}

/// Shared state of one evaluation wave.
struct Wave<T, F> {
    task: F,
    parts: usize,
    /// Next unclaimed partition index.
    cursor: AtomicUsize,
    /// Results, one slot per partition.
    slots: Vec<Mutex<Option<T>>>,
    /// Count of settled partitions (completed, panicked, or drained).
    done: AtomicUsize,
    /// Set on the first panic; runners then drain instead of computing.
    failed: AtomicBool,
    /// The *first* panic's message — later panics never overwrite it.
    first_panic: Mutex<Option<String>>,
    complete: Mutex<bool>,
    completed: Condvar,
}

impl<T, F> Wave<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    fn new(parts: usize, task: F) -> Self {
        Wave {
            task,
            parts,
            cursor: AtomicUsize::new(0),
            slots: (0..parts).map(|_| Mutex::new(None)).collect(),
            done: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            first_panic: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
        }
    }

    /// Claim and run task indices until the cursor is exhausted. Called
    /// by pool workers and by the wave's initiating thread alike.
    fn run(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.parts {
                return;
            }
            if !self.failed.load(Ordering::Acquire) {
                match catch_unwind(AssertUnwindSafe(|| (self.task)(i))) {
                    Ok(v) => *lock(&self.slots[i]) = Some(v),
                    Err(p) => {
                        let msg = panic_message(&*p);
                        let mut first = lock(&self.first_panic);
                        if first.is_none() {
                            *first = Some(msg);
                        }
                        drop(first);
                        self.failed.store(true, Ordering::Release);
                    }
                }
            }
            // Settle the index whether it computed, panicked, or was
            // drained after a failure elsewhere.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.parts {
                let mut complete = lock(&self.complete);
                *complete = true;
                self.completed.notify_all();
            }
        }
    }

    /// Block until every partition settled. The caller has already run
    /// [`Wave::run`], so it only ever waits on tasks claimed by live pool
    /// workers — never on an unclaimed task.
    fn wait(&self) {
        let mut complete = lock(&self.complete);
        while !*complete {
            complete = self
                .completed
                .wait(complete)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Gather results in partition order, preferring the first real panic
    /// message over the empty-slot placeholder.
    fn finish(self: Arc<Self>) -> Result<Vec<T>> {
        if let Some(msg) = lock(&self.first_panic).take() {
            return Err(SjdfError::TaskPanic(msg));
        }
        let mut out = Vec::with_capacity(self.parts);
        for slot in &self.slots {
            match lock(slot).take() {
                Some(v) => out.push(v),
                // Unreachable in practice: a slot can only be empty when a
                // panic was recorded, which returns above.
                None => return Err(SjdfError::TaskPanic("task did not complete".into())),
            }
        }
        Ok(out)
    }
}

/// Recover from std mutex poisoning: wave slots hold plain values and the
/// panic bookkeeping is monotonic, so the data is always consistent.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_preserves_partition_order() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let out = ctx.run_wave(16, |i| i * 2).unwrap();
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_wave_is_ok() {
        let ctx = ExecCtx::local();
        let out: Vec<usize> = ctx.run_wave(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn serial_fast_path_works() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 1).unwrap());
        let out = ctx.run_wave(5, |i| i + 1).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn panics_are_converted_to_errors() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let res: Result<Vec<usize>> = ctx.run_wave(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
        match res {
            // The real payload must surface — not the generic
            // "task did not complete" placeholder.
            Err(SjdfError::TaskPanic(msg)) => {
                assert!(msg.contains("task 3 exploded"), "got: {msg}")
            }
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn first_panic_wins_over_later_panics() {
        // Every task panics with its own message; whatever surfaced must
        // be one of the real messages, never the placeholder.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let res: Result<Vec<usize>> = ctx.run_wave(8, |i| panic!("task {i} failed"));
        match res {
            Err(SjdfError::TaskPanic(msg)) => {
                assert!(
                    msg.starts_with("task ") && msg.ends_with(" failed"),
                    "{msg}"
                )
            }
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn nested_waves_do_not_deadlock() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
        let inner_ctx = ctx.clone();
        let outer = ctx
            .run_wave(4, move |i| {
                let inner = inner_ctx.run_wave(4, move |j| i * 10 + j).unwrap();
                inner.into_iter().sum::<usize>()
            })
            .unwrap();
        assert_eq!(outer, vec![6, 46, 86, 126]);
    }

    #[test]
    fn deeply_nested_waves_complete() {
        // Three levels of nesting on a 2-thread pool: progress must come
        // from caller-helping, not from free workers.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
        let c1 = ctx.clone();
        let sums = ctx
            .run_wave(3, move |i| {
                let c2 = c1.clone();
                c1.run_wave(3, move |j| {
                    let inner = c2.run_wave(3, move |k| i + j + k).unwrap();
                    inner.into_iter().sum::<usize>()
                })
                .unwrap()
                .into_iter()
                .sum::<usize>()
            })
            .unwrap();
        // sum over j,k in 0..3 of (i+j+k) = 9i + 18
        assert_eq!(sums, vec![18, 27, 36]);
    }

    #[test]
    fn pool_is_reused_across_waves() {
        // Two waves on the same context run on the same long-lived pool
        // threads (named sjdf-worker-*), not freshly spawned ones.
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let names = |v: Vec<Option<String>>| {
            let mut v: Vec<String> = v.into_iter().flatten().collect();
            v.sort();
            v.dedup();
            v
        };
        let first = names(
            ctx.run_wave(8, |_| std::thread::current().name().map(String::from))
                .unwrap(),
        );
        let second = names(
            ctx.run_wave(8, |_| std::thread::current().name().map(String::from))
                .unwrap(),
        );
        let workers_seen = |v: &[String]| v.iter().any(|n| n.starts_with("sjdf-worker-"));
        if workers_seen(&first) && workers_seen(&second) {
            let w1: Vec<&String> = first
                .iter()
                .filter(|n| n.starts_with("sjdf-worker-"))
                .collect();
            assert!(
                w1.iter().all(|n| second.contains(n)),
                "{first:?} {second:?}"
            );
        }
    }

    #[test]
    fn wave_uses_multiple_threads_when_available() {
        // With 4 local threads and 2 barrier-synced tasks, two distinct
        // thread ids must appear (unless the host is single-core).
        if std::thread::available_parallelism().unwrap().get() < 2 {
            return;
        }
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let ids = ctx
            .run_wave(2, move |_| {
                barrier.wait();
                std::thread::current().id()
            })
            .unwrap();
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn concurrent_waves_share_one_pool() {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 4).unwrap());
        let outputs: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let ctx = ctx.clone();
                    s.spawn(move || ctx.run_wave(16, move |i| w * 100 + i).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (w, out) in outputs.into_iter().enumerate() {
            assert_eq!(out, (0..16).map(|i| w * 100 + i).collect::<Vec<_>>());
        }
    }
}
