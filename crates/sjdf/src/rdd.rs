//! `Rdd<T>`: a lazy, lineage-based, partitioned in-memory dataset.
//!
//! This is the Rust analogue of the Spark RDD that backs the paper's
//! ScrubJayRDD (§4.1): a distributed collection of records on which
//! operations are *enqueued but not run until their results are explicitly
//! requested*. Narrow operations (`map`, `filter`, `flat_map`, `union`)
//! chain per-partition; wide operations (`group_by_key`, `join`,
//! `sort_by_key`, `repartition`) shuffle data between partitions and are
//! implemented in [`crate::ops`].
//!
//! Evaluation runs every partition as a task on the local thread pool
//! ([`crate::exec::ExecCtx`]), and all tasks report metrics that feed the
//! virtual-cluster cost model ([`crate::simtime`]).

use crate::bytesize::{slice_byte_size, ByteSize};
use crate::error::{Result, SjdfError};
use crate::exec::ExecCtx;
use crate::metrics::{OpKind, OpMetrics};
use crate::stagecache::{next_owner_id, EvictableSlot, StageCache};
use parking_lot::Mutex;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Marker for element types that can flow through a dataset.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// One node of a dataset lineage: computes a partition on demand.
pub trait PartitionOp<T: Data>: Send + Sync {
    /// Number of partitions this op produces.
    fn num_partitions(&self) -> usize;
    /// Compute partition `idx` (0-based). May recursively compute parents.
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T>;
    /// Short human-readable name for metrics and debugging.
    fn name(&self) -> &'static str;
    /// Narrow/wide/source classification.
    fn kind(&self) -> OpKind;
}

/// A lazy, partitioned, immutable dataset with recorded lineage.
pub struct Rdd<T: Data> {
    pub(crate) op: Arc<dyn PartitionOp<T>>,
    pub(crate) ctx: ExecCtx,
    /// Stage-cache owner id when this handle was produced by
    /// [`Rdd::persist`]; lets [`Rdd::unpersist`] release the entries.
    persist_id: Option<u64>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            op: Arc::clone(&self.op),
            ctx: self.ctx.clone(),
            persist_id: self.persist_id,
        }
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

struct ParallelizeOp<T> {
    parts: Vec<Arc<Vec<T>>>,
}

impl<T: Data> PartitionOp<T> for ParallelizeOp<T> {
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let out = self.parts[idx].as_ref().clone();
        ctx.metrics.record(
            self.name(),
            self.kind(),
            OpMetrics {
                records_out: out.len() as u64,
                tasks: 1,
                ..Default::default()
            },
        );
        out
    }
    fn name(&self) -> &'static str {
        "parallelize"
    }
    fn kind(&self) -> OpKind {
        OpKind::Source
    }
}

struct GenerateOp<T> {
    parts: usize,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
}

impl<T: Data> PartitionOp<T> for GenerateOp<T> {
    fn num_partitions(&self) -> usize {
        self.parts
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let out = (self.f)(idx);
        ctx.metrics.record(
            self.name(),
            self.kind(),
            OpMetrics {
                records_out: out.len() as u64,
                tasks: 1,
                ..Default::default()
            },
        );
        out
    }
    fn name(&self) -> &'static str {
        "generate"
    }
    fn kind(&self) -> OpKind {
        OpKind::Source
    }
}

// ---------------------------------------------------------------------------
// Narrow ops
// ---------------------------------------------------------------------------

struct MapPartitionsOp<S: Data, T: Data> {
    parent: Arc<dyn PartitionOp<S>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, Vec<S>) -> Vec<T> + Send + Sync>,
    op_name: &'static str,
}

impl<S: Data, T: Data> PartitionOp<T> for MapPartitionsOp<S, T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let input = self.parent.compute(idx, ctx);
        let n_in = input.len() as u64;
        let out = (self.f)(idx, input);
        ctx.metrics.record(
            self.op_name,
            OpKind::Narrow,
            OpMetrics {
                records_in: n_in,
                records_out: out.len() as u64,
                tasks: 1,
                ..Default::default()
            },
        );
        out
    }
    fn name(&self) -> &'static str {
        self.op_name
    }
    fn kind(&self) -> OpKind {
        OpKind::Narrow
    }
}

/// Narrow pairing of equal-partitioned parents: partition `i` of the
/// output is `f(left_i, right_i)`. The aligned-merge primitive behind
/// the columnar interpolation join (matches rejoin their left batch
/// without shuffling the left rows).
struct ZipPartitionsOp<A: Data, B: Data, T: Data> {
    left: Arc<dyn PartitionOp<A>>,
    right: Arc<dyn PartitionOp<B>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, Vec<A>, Vec<B>) -> Vec<T> + Send + Sync>,
    op_name: &'static str,
}

impl<A: Data, B: Data, T: Data> PartitionOp<T> for ZipPartitionsOp<A, B, T> {
    fn num_partitions(&self) -> usize {
        self.left.num_partitions()
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let a = self.left.compute(idx, ctx);
        let b = self.right.compute(idx, ctx);
        let n_in = (a.len() + b.len()) as u64;
        let out = (self.f)(idx, a, b);
        ctx.metrics.record(
            self.op_name,
            OpKind::Narrow,
            OpMetrics {
                records_in: n_in,
                records_out: out.len() as u64,
                tasks: 1,
                ..Default::default()
            },
        );
        out
    }
    fn name(&self) -> &'static str {
        self.op_name
    }
    fn kind(&self) -> OpKind {
        OpKind::Narrow
    }
}

struct UnionOp<T: Data> {
    parents: Vec<Arc<dyn PartitionOp<T>>>,
}

impl<T: Data> PartitionOp<T> for UnionOp<T> {
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let mut offset = idx;
        for p in &self.parents {
            if offset < p.num_partitions() {
                return p.compute(offset, ctx);
            }
            offset -= p.num_partitions();
        }
        panic!("union partition index {idx} out of range");
    }
    fn name(&self) -> &'static str {
        "union"
    }
    fn kind(&self) -> OpKind {
        OpKind::Narrow
    }
}

/// Narrow N→1 merge of adjacent partitions (no shuffle).
struct CoalesceOp<T: Data> {
    parent: Arc<dyn PartitionOp<T>>,
    target: usize,
}

impl<T: Data> PartitionOp<T> for CoalesceOp<T> {
    fn num_partitions(&self) -> usize {
        self.target.min(self.parent.num_partitions()).max(1)
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let n = self.parent.num_partitions();
        let target = self.num_partitions();
        // Partition idx owns the contiguous range of parent partitions
        // [idx*n/target, (idx+1)*n/target).
        let lo = idx * n / target;
        let hi = (idx + 1) * n / target;
        let mut out = Vec::new();
        for p in lo..hi {
            out.extend(self.parent.compute(p, ctx));
        }
        out
    }
    fn name(&self) -> &'static str {
        "coalesce"
    }
    fn kind(&self) -> OpKind {
        OpKind::Narrow
    }
}

/// Lazily caches each computed partition so repeated evaluations (or
/// multiple downstream consumers) compute the parent only once.
struct CacheOp<T: Data> {
    parent: Arc<dyn PartitionOp<T>>,
    slots: Vec<Mutex<Option<Arc<Vec<T>>>>>,
}

impl<T: Data> PartitionOp<T> for CacheOp<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let mut slot = self.slots[idx].lock();
        if let Some(cached) = slot.as_ref() {
            return cached.as_ref().clone();
        }
        let computed = Arc::new(self.parent.compute(idx, ctx));
        *slot = Some(Arc::clone(&computed));
        computed.as_ref().clone()
    }
    fn name(&self) -> &'static str {
        "cache"
    }
    fn kind(&self) -> OpKind {
        OpKind::Narrow
    }
}

// ---------------------------------------------------------------------------
// Persist: stage-cache backed per-partition memoization
// ---------------------------------------------------------------------------

enum SlotState<T> {
    /// Not cached; the next reader computes.
    Empty,
    /// Another task is computing this partition; readers wait.
    InProgress,
    /// Cached and accounted in the stage cache.
    Full(Arc<Vec<T>>),
}

/// The typed partition slots behind one persisted dataset. Lock order:
/// a slot lock is never held while calling into the [`StageCache`], and
/// never held across a parent compute — so eviction callbacks (which
/// take only the slot lock) can never deadlock against evaluation.
struct PersistSlots<T> {
    slots: Vec<(StdMutex<SlotState<T>>, Condvar)>,
}

/// Slot data stays consistent across panics (the in-progress marker is
/// rolled back by a guard), so poisoning is recoverable.
fn lock_slot<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl<T: Data> EvictableSlot for PersistSlots<T> {
    fn evict(&self, part: usize) {
        let (m, _) = &self.slots[part];
        let mut state = lock_slot(m);
        // Only a Full slot can be evicted; an InProgress slot will be
        // re-inserted (and re-accounted) by its computing task anyway.
        if let SlotState::Full(_) = &*state {
            *state = SlotState::Empty;
        }
    }
}

/// Rolls an `InProgress` slot back to `Empty` if the parent compute
/// unwinds, so waiting readers retry instead of hanging forever.
struct ResetOnUnwind<'a, T> {
    slots: &'a PersistSlots<T>,
    idx: usize,
    armed: bool,
}

impl<T> Drop for ResetOnUnwind<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let (m, cv) = &self.slots.slots[self.idx];
            *lock_slot(m) = SlotState::Empty;
            cv.notify_all();
        }
    }
}

/// `persist()`: memoizes each computed partition, registered with the
/// context's [`StageCache`] for byte accounting and LRU eviction.
struct CachedOp<T: Data + ByteSize> {
    parent: Arc<dyn PartitionOp<T>>,
    owner_id: u64,
    slots: Arc<PersistSlots<T>>,
    cache: Arc<StageCache>,
}

impl<T: Data + ByteSize> Drop for CachedOp<T> {
    fn drop(&mut self) {
        // Release the accounted bytes when the lineage itself goes away.
        self.cache.release_owner(self.owner_id);
    }
}

impl<T: Data + ByteSize> PartitionOp<T> for CachedOp<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let (m, cv) = &self.slots.slots[idx];
        let mut state = lock_slot(m);
        loop {
            match &*state {
                SlotState::Full(cached) => {
                    let cached = Arc::clone(cached);
                    drop(state);
                    self.cache.record_hit(self.owner_id, idx);
                    ctx.metrics.record_cache_hit();
                    if ctx.tracer().enabled() {
                        ctx.tracer()
                            .instant("cache_hit", format!("persist part={idx}"));
                    }
                    return cached.as_ref().clone();
                }
                SlotState::InProgress => {
                    state = cv.wait(state).unwrap_or_else(|poison| poison.into_inner());
                }
                SlotState::Empty => {
                    *state = SlotState::InProgress;
                    drop(state);
                    break;
                }
            }
        }
        let mut mspan = ctx.tracer().span("persist_materialize");
        if mspan.is_recording() {
            mspan.set_detail(format!("part={idx}"));
        }
        let mut guard = ResetOnUnwind {
            slots: &self.slots,
            idx,
            armed: true,
        };
        let value = Arc::new(self.parent.compute(idx, ctx));
        let bytes = slice_byte_size(&value);
        {
            let mut state = lock_slot(m);
            *state = SlotState::Full(Arc::clone(&value));
            cv.notify_all();
        }
        guard.armed = false;
        drop(mspan);
        ctx.metrics.record_cache_miss();
        if ctx.tracer().enabled() {
            ctx.tracer()
                .instant("cache_miss", format!("persist part={idx}"));
        }
        let erased: Arc<dyn EvictableSlot> = Arc::clone(&self.slots) as Arc<dyn EvictableSlot>;
        let evicted = self.cache.insert(self.owner_id, idx, bytes, &erased);
        if evicted > 0 {
            ctx.metrics.record_cache_evictions(evicted as u64);
            if ctx.tracer().enabled() {
                ctx.tracer()
                    .instant("cache_evict", format!("persist evicted={evicted}"));
            }
        }
        value.as_ref().clone()
    }

    fn name(&self) -> &'static str {
        "persist"
    }
    fn kind(&self) -> OpKind {
        OpKind::Narrow
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl<T: Data> Rdd<T> {
    /// Wrap a raw op into a dataset handle (used by `ops::*`).
    pub(crate) fn from_op(op: Arc<dyn PartitionOp<T>>, ctx: ExecCtx) -> Self {
        Rdd {
            op,
            ctx,
            persist_id: None,
        }
    }

    /// Distribute an in-memory collection over `parts` partitions.
    pub fn parallelize(ctx: &ExecCtx, data: Vec<T>, parts: usize) -> Self {
        let parts = parts.max(1);
        let per = data.len().div_ceil(parts).max(1);
        let mut chunks: Vec<Arc<Vec<T>>> = Vec::with_capacity(parts);
        let mut it = data.into_iter();
        for _ in 0..parts {
            let chunk: Vec<T> = it.by_ref().take(per).collect();
            chunks.push(Arc::new(chunk));
        }
        Rdd::from_op(Arc::new(ParallelizeOp { parts: chunks }), ctx.clone())
    }

    /// Create a dataset whose partition `i` is produced by `f(i)` — the
    /// preferred source for large synthetic workloads because nothing is
    /// materialized on the driver.
    pub fn generate<F>(ctx: &ExecCtx, parts: usize, f: F) -> Self
    where
        F: Fn(usize) -> Vec<T> + Send + Sync + 'static,
    {
        Rdd::from_op(
            Arc::new(GenerateOp {
                parts: parts.max(1),
                f: Arc::new(f),
            }),
            ctx.clone(),
        )
    }

    /// The execution context this dataset is bound to.
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// Number of partitions in this dataset.
    pub fn num_partitions(&self) -> usize {
        self.op.num_partitions()
    }

    /// Apply `f` to every element (narrow).
    pub fn map<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        self.map_partitions_named("map", move |part| part.into_iter().map(&f).collect())
    }

    /// Keep only elements matching `pred` (narrow).
    pub fn filter<F>(&self, pred: F) -> Rdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        self.map_partitions_named("filter", move |part| {
            part.into_iter().filter(|x| pred(x)).collect()
        })
    }

    /// Map each element to zero or more outputs (narrow). This is the
    /// workhorse behind the paper's explode transformations.
    pub fn flat_map<U: Data, I, F>(&self, f: F) -> Rdd<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        self.map_partitions_named("flat_map", move |part| {
            part.into_iter().flat_map(&f).collect()
        })
    }

    /// Apply a whole-partition function (narrow).
    pub fn map_partitions<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        self.map_partitions_named("map_partitions", f)
    }

    /// Apply a whole-partition function with a custom metrics name.
    pub fn map_partitions_named<U: Data, F>(&self, name: &'static str, f: F) -> Rdd<U>
    where
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        Rdd::from_op(
            Arc::new(MapPartitionsOp {
                parent: Arc::clone(&self.op),
                f: Arc::new(move |_idx, part| f(part)),
                op_name: name,
            }),
            self.ctx.clone(),
        )
    }

    /// Apply a whole-partition function that also sees the partition index.
    pub fn map_partitions_with_index<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        Rdd::from_op(
            Arc::new(MapPartitionsOp {
                parent: Arc::clone(&self.op),
                f: Arc::new(f),
                op_name: "map_partitions_with_index",
            }),
            self.ctx.clone(),
        )
    }

    /// Pair this dataset's partitions with another's, one to one, and
    /// merge each pair with `f` (narrow; no shuffle). Both datasets must
    /// have the same partition count.
    pub fn zip_partitions<B: Data, U: Data, F>(
        &self,
        other: &Rdd<B>,
        name: &'static str,
        f: F,
    ) -> Result<Rdd<U>>
    where
        F: Fn(usize, Vec<T>, Vec<B>) -> Vec<U> + Send + Sync + 'static,
    {
        if self.op.num_partitions() != other.op.num_partitions() {
            return Err(SjdfError::InvalidConfig(format!(
                "zip_partitions requires equal partition counts ({} vs {})",
                self.op.num_partitions(),
                other.op.num_partitions()
            )));
        }
        Ok(Rdd::from_op(
            Arc::new(ZipPartitionsOp {
                left: Arc::clone(&self.op),
                right: Arc::clone(&other.op),
                f: Arc::new(f),
                op_name: name,
            }),
            self.ctx.clone(),
        ))
    }

    /// Concatenate this dataset with another (narrow; partitions are
    /// appended).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        Rdd::from_op(
            Arc::new(UnionOp {
                parents: vec![Arc::clone(&self.op), Arc::clone(&other.op)],
            }),
            self.ctx.clone(),
        )
    }

    /// Reduce the partition count without a shuffle by merging adjacent
    /// partitions.
    pub fn coalesce(&self, target: usize) -> Rdd<T> {
        Rdd::from_op(
            Arc::new(CoalesceOp {
                parent: Arc::clone(&self.op),
                target: target.max(1),
            }),
            self.ctx.clone(),
        )
    }

    /// Cache computed partitions in memory for reuse across evaluations.
    pub fn cache(&self) -> Rdd<T> {
        let slots = (0..self.op.num_partitions())
            .map(|_| Mutex::new(None))
            .collect();
        Rdd::from_op(
            Arc::new(CacheOp {
                parent: Arc::clone(&self.op),
                slots,
            }),
            self.ctx.clone(),
        )
    }

    /// Persist computed partitions in the context's [`StageCache`]: each
    /// partition is computed at most once (even under concurrent
    /// evaluation), its bytes are accounted against the cache budget, and
    /// least-recently-used partitions are transparently evicted — and
    /// recomputed from lineage on next access — when the budget is
    /// exceeded. Compare [`Rdd::cache`], which memoizes unconditionally
    /// with no accounting or eviction.
    pub fn persist(&self) -> Rdd<T>
    where
        T: ByteSize,
    {
        let n = self.op.num_partitions();
        let slots = Arc::new(PersistSlots {
            slots: (0..n)
                .map(|_| (StdMutex::new(SlotState::Empty), Condvar::new()))
                .collect(),
        });
        let owner_id = next_owner_id();
        let mut rdd = Rdd::from_op(
            Arc::new(CachedOp {
                parent: Arc::clone(&self.op),
                owner_id,
                slots,
                cache: Arc::clone(self.ctx.stage_cache()),
            }),
            self.ctx.clone(),
        );
        rdd.persist_id = Some(owner_id);
        rdd
    }

    /// Drop this dataset's cached partitions from the stage cache,
    /// returning the bytes released. The handle stays usable: later
    /// evaluations recompute (and re-cache) from lineage. A no-op (0)
    /// on a dataset that was never [`persist`](Rdd::persist)ed.
    pub fn unpersist(&self) -> usize {
        match self.persist_id {
            Some(id) => self.ctx.stage_cache().release_owner(id),
            None => 0,
        }
    }

    /// Pair every element with a key (narrow).
    pub fn key_by<K: Data, F>(&self, f: F) -> Rdd<(K, T)>
    where
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        self.map_partitions_named("key_by", move |part| {
            part.into_iter().map(|x| (f(&x), x)).collect()
        })
    }

    // -- actions ------------------------------------------------------------

    /// Evaluate and gather all elements in partition order.
    pub fn collect(&self) -> Result<Vec<T>> {
        let parts = self.glom()?;
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        Ok(out)
    }

    /// Evaluate and return each partition separately.
    pub fn glom(&self) -> Result<Vec<Vec<T>>> {
        let _job = self.ctx.job_span("glom");
        let op = Arc::clone(&self.op);
        let ctx = self.ctx.clone();
        self.ctx
            .run_wave(self.op.num_partitions(), move |i| op.compute(i, &ctx))
    }

    /// Number of elements in the dataset.
    pub fn count(&self) -> Result<usize> {
        let _job = self.ctx.job_span("count");
        let op = Arc::clone(&self.op);
        let ctx = self.ctx.clone();
        let counts = self
            .ctx
            .run_wave(self.op.num_partitions(), move |i| op.compute(i, &ctx).len())?;
        Ok(counts.into_iter().sum())
    }

    /// Reduce all elements with an associative, commutative operator.
    pub fn reduce<F>(&self, f: F) -> Result<T>
    where
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let _job = self.ctx.job_span("reduce");
        let op = Arc::clone(&self.op);
        let ctx = self.ctx.clone();
        let f = Arc::new(f);
        let task_f = Arc::clone(&f);
        let partials = self.ctx.run_wave(self.op.num_partitions(), move |i| {
            op.compute(i, &ctx).into_iter().reduce(|a, b| task_f(a, b))
        })?;
        partials
            .into_iter()
            .flatten()
            .reduce(|a, b| f(a, b))
            .ok_or(SjdfError::EmptyDataset("reduce"))
    }

    /// Fold all elements starting from `zero` in each partition, then merge
    /// partials with `merge`.
    pub fn fold<A, F, G>(&self, zero: A, f: F, merge: G) -> Result<A>
    where
        A: Data,
        F: Fn(A, T) -> A + Send + Sync + 'static,
        G: Fn(A, A) -> A,
    {
        let _job = self.ctx.job_span("fold");
        let op = Arc::clone(&self.op);
        let ctx = self.ctx.clone();
        let f = Arc::new(f);
        let z = zero.clone();
        let partials = self.ctx.run_wave(self.op.num_partitions(), move |i| {
            op.compute(i, &ctx)
                .into_iter()
                .fold(z.clone(), |a, x| f(a, x))
        })?;
        Ok(partials.into_iter().fold(zero, merge))
    }

    /// First `n` elements in partition order.
    pub fn take(&self, n: usize) -> Result<Vec<T>> {
        // Evaluate partitions lazily from the front until n are gathered.
        // Each compute runs through `run_inline` so a task panic (genuine
        // or injected) becomes a retried/reported error instead of
        // unwinding through the caller.
        let _job = self.ctx.job_span("take");
        let mut out = Vec::with_capacity(n);
        for i in 0..self.op.num_partitions() {
            if out.len() >= n {
                break;
            }
            let part = self.ctx.run_inline(i, || self.op.compute(i, &self.ctx))?;
            out.extend(part.into_iter().take(n - out.len()));
        }
        Ok(out)
    }

    /// The first element, if any.
    pub fn first(&self) -> Result<Option<T>> {
        Ok(self.take(1)?.into_iter().next())
    }

    /// True if the dataset has no elements.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.first()?.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExecCtx {
        ExecCtx::new(crate::cluster::ClusterSpec::new(1, 4).unwrap())
    }

    #[test]
    fn parallelize_splits_evenly_and_collect_round_trips() {
        let c = ctx();
        let data: Vec<u64> = (0..100).collect();
        let rdd = Rdd::parallelize(&c, data.clone(), 8);
        assert_eq!(rdd.num_partitions(), 8);
        assert_eq!(rdd.collect().unwrap(), data);
    }

    #[test]
    fn parallelize_handles_fewer_elements_than_partitions() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, vec![1, 2, 3], 10);
        assert_eq!(rdd.collect().unwrap(), vec![1, 2, 3]);
        assert_eq!(rdd.count().unwrap(), 3);
    }

    #[test]
    fn generate_produces_per_partition_data() {
        let c = ctx();
        let rdd = Rdd::generate(&c, 4, |i| vec![i as u64; 2]);
        assert_eq!(rdd.collect().unwrap(), vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn map_filter_flat_map_chain() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0u64..20).collect(), 4)
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .flat_map(|x| vec![x, x + 1]);
        let got = rdd.collect().unwrap();
        assert_eq!(got.len(), 20);
        assert_eq!(got[0], 0);
        assert_eq!(got[1], 1);
    }

    #[test]
    fn lazy_until_action() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let c = ctx();
        let rdd = Rdd::parallelize(&c, vec![1u64, 2, 3], 1).map(|x| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(CALLS.load(Ordering::SeqCst), 0);
        rdd.collect().unwrap();
        assert_eq!(CALLS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = Rdd::parallelize(&c, vec![1, 2], 2);
        let b = Rdd::parallelize(&c, vec![3, 4], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 4);
        assert_eq!(u.collect().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn coalesce_reduces_partitions_preserving_order() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0..16).collect::<Vec<i32>>(), 8).coalesce(3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.collect().unwrap(), (0..16).collect::<Vec<i32>>());
    }

    #[test]
    fn cache_computes_parent_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let c = ctx();
        let calls2 = Arc::clone(&calls);
        let rdd = Rdd::parallelize(&c, vec![1u64, 2, 3, 4], 2)
            .map(move |x| {
                calls2.fetch_add(1, Ordering::SeqCst);
                x
            })
            .cache();
        rdd.collect().unwrap();
        rdd.collect().unwrap();
        rdd.count().unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn reduce_and_fold() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (1u64..=10).collect(), 3);
        assert_eq!(rdd.reduce(|a, b| a + b).unwrap(), 55);
        assert_eq!(rdd.fold(0u64, |a, x| a + x, |a, b| a + b).unwrap(), 55);
    }

    #[test]
    fn reduce_on_empty_errors() {
        let c = ctx();
        let rdd: Rdd<u64> = Rdd::parallelize(&c, vec![], 2);
        assert_eq!(
            rdd.reduce(|a, b| a + b).unwrap_err(),
            SjdfError::EmptyDataset("reduce")
        );
    }

    #[test]
    fn take_stops_early() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0..1000).collect::<Vec<i32>>(), 10);
        assert_eq!(rdd.take(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(rdd.first().unwrap(), Some(0));
        assert!(!rdd.is_empty().unwrap());
    }

    #[test]
    fn zip_partitions_merges_aligned_partitions() {
        let c = ctx();
        let a = Rdd::parallelize(&c, (0..8u64).collect(), 4);
        let b = Rdd::parallelize(&c, (100..108u64).collect(), 4);
        let z = a
            .zip_partitions(&b, "zip_test", |_idx, xs, ys| {
                xs.into_iter().zip(ys).map(|(x, y)| x + y).collect()
            })
            .unwrap();
        assert_eq!(z.num_partitions(), 4);
        assert_eq!(
            z.collect().unwrap(),
            (0..8).map(|i| 100 + 2 * i).collect::<Vec<u64>>()
        );
        // Mismatched partition counts are rejected at build time.
        let w = Rdd::parallelize(&c, vec![1u64], 1);
        assert!(a.zip_partitions(&w, "zip_bad", |_, x, _| x).is_err());
    }

    #[test]
    fn key_by_pairs_elements() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, vec![1u64, 2, 3], 1).key_by(|x| x % 2);
        assert_eq!(rdd.collect().unwrap(), vec![(1, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn metrics_are_recorded() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0..50u64).collect(), 4).map(|x| x + 1);
        rdd.collect().unwrap();
        let report = c.metrics.report();
        let map = report.op("map").unwrap();
        assert_eq!(map.metrics.records_in, 50);
        assert_eq!(map.metrics.records_out, 50);
        assert_eq!(map.metrics.tasks, 4);
    }

    #[test]
    fn glom_exposes_partition_structure() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0..10).collect::<Vec<i32>>(), 5);
        let parts = rdd.glom().unwrap();
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.len() == 2));
    }
}
