//! Error type for the data-parallel framework.

use std::fmt;

/// Errors produced while building or evaluating distributed datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SjdfError {
    /// An evaluation was requested on a dataset with zero partitions where
    /// at least one is required (e.g. `reduce` on an empty lineage).
    EmptyDataset(&'static str),
    /// A worker task panicked; the payload message is preserved.
    TaskPanic(String),
    /// A task failed on every attempt its retry budget allowed. The
    /// Display form always contains the phrase `exhausted retry budget`,
    /// which downstream crates (receiving this flattened to a string)
    /// rely on to classify the failure — keep it stable.
    ExhaustedRetries {
        /// Partition index whose task could not be completed.
        partition: usize,
        /// Number of attempts made (the full budget).
        attempts: u32,
        /// Panic message of the last failed attempt.
        last_error: String,
    },
    /// An invalid configuration value (e.g. a cluster with zero nodes).
    InvalidConfig(String),
}

impl fmt::Display for SjdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SjdfError::EmptyDataset(what) => {
                write!(f, "operation `{what}` requires a non-empty dataset")
            }
            SjdfError::TaskPanic(msg) => write!(f, "worker task panicked: {msg}"),
            SjdfError::ExhaustedRetries {
                partition,
                attempts,
                last_error,
            } => write!(
                f,
                "task for partition {partition} exhausted retry budget \
                 after {attempts} attempts; last error: {last_error}"
            ),
            SjdfError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SjdfError {}

/// Convenience result alias used throughout `sjdf`.
pub type Result<T> = std::result::Result<T, SjdfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SjdfError::EmptyDataset("reduce");
        assert!(e.to_string().contains("reduce"));
        let e = SjdfError::TaskPanic("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = SjdfError::InvalidConfig("nodes=0".into());
        assert!(e.to_string().contains("nodes=0"));
    }

    #[test]
    fn exhausted_retries_display_keeps_its_stable_marker() {
        let e = SjdfError::ExhaustedRetries {
            partition: 3,
            attempts: 4,
            last_error: "injected fault: task failure".into(),
        };
        let s = e.to_string();
        // Downstream crates detect this failure class by substring after
        // the error has been flattened to a string; the phrase is API.
        assert!(s.contains("exhausted retry budget"), "{s}");
        assert!(s.contains("partition 3"), "{s}");
        assert!(s.contains("injected fault"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SjdfError::EmptyDataset("x"), SjdfError::EmptyDataset("x"));
        assert_ne!(
            SjdfError::TaskPanic("a".into()),
            SjdfError::TaskPanic("b".into())
        );
    }
}
