//! # sjdf — ScrubJay data-parallel framework
//!
//! A from-scratch, in-process reproduction of the data-parallel substrate
//! the ScrubJay paper (SC '17) builds on (Apache Spark): lazy,
//! lineage-based partitioned datasets ([`Rdd`]) with narrow operations
//! (`map`, `filter`, `flat_map`, `union`, `coalesce`, `cache`) and wide
//! shuffle operations (`group_by_key`, `reduce_by_key`, `cogroup`, `join`,
//! `sort_by_key`, `repartition`), executed on a local thread pool.
//!
//! Because the paper's evaluation ran on a 10-node × 32-core cluster, the
//! crate also provides a *virtual cluster*: every evaluation records task
//! metrics ([`metrics::MetricsReport`]), and [`simtime`] costs the recorded
//! task graph against an arbitrary [`ClusterSpec`] to produce simulated
//! wall-clock times for scaling studies.
//!
//! ```
//! use sjdf::{ExecCtx, Rdd};
//!
//! let ctx = ExecCtx::local();
//! let squares = Rdd::parallelize(&ctx, (0u64..100).collect(), 8)
//!     .map(|x| x * x)
//!     .filter(|x| x % 2 == 0);
//! assert_eq!(squares.count().unwrap(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bytesize;
pub mod cluster;
pub mod error;
pub mod exec;
pub mod faults;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod rdd;
pub mod simtime;
pub mod stagecache;

/// The span-tracing subsystem ([`sjtrace`]), re-exported so downstream
/// crates reach the executor's tracer types without a separate
/// dependency edge.
pub use sjtrace as trace;

pub use arena::{ArenaGuard, ArenaPool, Bump, BumpRange};
pub use bytesize::{pod_vec_byte_size, ByteSize};
pub use cluster::ClusterSpec;
pub use error::{Result, SjdfError};
pub use exec::{ExecCtx, RetryPolicy, SpeculationPolicy};
pub use faults::{Fault, FaultPlan, FaultSite};
pub use metrics::{FailureReport, MetricsCollector, MetricsReport, OpKind};
pub use pool::WorkerPool;
pub use rdd::{Data, Rdd};
pub use simtime::{estimate, CostParams, SimTime};
pub use stagecache::{mint_owner_id, EvictableSlot, StageCache, StageCacheStats};
