//! `exchange`: an explicit-destination shuffle that moves whole cells.
//!
//! The hash shuffles in [`crate::ops::shuffle`] scatter individual
//! *records* by key — the right shape for rowwise data, but wasteful for
//! columnar partitions, where a map task has already packed the rows
//! bound for one destination into a single typed batch. `exchange` takes
//! `(destination, cell)` pairs and delivers every cell to its destination
//! partition *without opening it*: a `ColumnarPartition` (or any other
//! `T`) crosses the shuffle as one value, so shuffled data stays columnar
//! end to end. Like every wide op, the materialized buckets live in an
//! auto-persisted [`ShuffleCell`] accounted by the stage cache.

use crate::bytesize::{slice_byte_size, ByteSize};
use crate::exec::ExecCtx;
use crate::metrics::{OpKind, OpMetrics};
use crate::ops::shuffle::ShuffleCell;
use crate::rdd::{Data, PartitionOp, Rdd};
use std::sync::Arc;

struct ExchangeOp<T: Data> {
    parent: Arc<dyn PartitionOp<(usize, T)>>,
    out_parts: usize,
    cell: ShuffleCell<T>,
}

impl<T> PartitionOp<T> for ExchangeOp<T>
where
    T: Data + ByteSize,
{
    fn num_partitions(&self) -> usize {
        self.out_parts
    }

    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let buckets = self.cell.get_or_materialize(ctx, || {
            let parent = Arc::clone(&self.parent);
            let out_parts = self.out_parts;
            let ctx2 = ctx.clone();
            let map_outputs = ctx
                .run_wave(parent.num_partitions(), move |i| {
                    let records = parent.compute(i, &ctx2);
                    let mut buckets: Vec<Vec<T>> = (0..out_parts).map(|_| Vec::new()).collect();
                    for (dest, cell) in records {
                        buckets[dest % out_parts].push(cell);
                    }
                    buckets
                })
                .expect("exchange map stage failed");
            let mut merged: Vec<Vec<T>> = (0..self.out_parts).map(|_| Vec::new()).collect();
            let mut shuffle_records = 0u64;
            let mut shuffle_bytes = 0u64;
            for map_out in map_outputs {
                for (o, bucket) in map_out.into_iter().enumerate() {
                    shuffle_records += bucket.len() as u64;
                    shuffle_bytes += slice_byte_size(&bucket) as u64;
                    merged[o].extend(bucket);
                }
            }
            ctx.metrics.record(
                "exchange",
                OpKind::Wide,
                OpMetrics {
                    records_in: shuffle_records,
                    records_out: shuffle_records,
                    shuffle_bytes,
                    shuffle_records,
                    tasks: self.out_parts as u64,
                },
            );
            merged
        });
        let _fetch = ctx.shuffle_fetch_span("exchange", idx);
        ctx.check_shuffle_fetch("exchange", idx);
        buckets[idx].as_ref().clone()
    }

    fn name(&self) -> &'static str {
        "exchange"
    }
    fn kind(&self) -> OpKind {
        OpKind::Wide
    }
}

impl<T> Rdd<(usize, T)>
where
    T: Data + ByteSize,
{
    /// Deliver each `(destination, cell)` pair to output partition
    /// `destination % out_parts`, preserving, within each destination,
    /// the source-partition order followed by the within-partition
    /// emission order (so downstream stages are deterministic). Wide.
    pub fn exchange(&self, out_parts: usize) -> Rdd<T> {
        Rdd::from_op(
            Arc::new(ExchangeOp {
                parent: Arc::clone(&self.op),
                out_parts: out_parts.max(1),
                cell: ShuffleCell::new(&self.ctx),
            }),
            self.ctx.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn ctx() -> ExecCtx {
        ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
    }

    #[test]
    fn cells_land_on_their_destination() {
        let c = ctx();
        let pairs: Vec<(usize, u64)> = (0..40).map(|i| ((i % 4) as usize, i)).collect();
        let parts = Rdd::parallelize(&c, pairs, 4).exchange(4).glom().unwrap();
        assert_eq!(parts.len(), 4);
        for (p, cells) in parts.iter().enumerate() {
            assert_eq!(cells.len(), 10);
            assert!(cells.iter().all(|v| (*v % 4) as usize == p));
        }
    }

    #[test]
    fn destination_wraps_modulo_out_parts() {
        let c = ctx();
        let pairs: Vec<(usize, u64)> = vec![(7, 1), (2, 2)];
        let parts = Rdd::parallelize(&c, pairs, 1).exchange(3).glom().unwrap();
        assert_eq!(parts[1], vec![1]); // 7 % 3
        assert_eq!(parts[2], vec![2]);
    }

    #[test]
    fn order_is_source_partition_then_emission_order() {
        let c = ctx();
        // Two source partitions, both targeting destination 0.
        let rdd = Rdd::generate(&c, 2, |i| {
            (0..3u64).map(|j| (0usize, (i as u64) * 10 + j)).collect()
        });
        let parts = rdd.exchange(2).glom().unwrap();
        assert_eq!(parts[0], vec![0, 1, 2, 10, 11, 12]);
        assert!(parts[1].is_empty());
    }

    #[test]
    fn exchange_records_wide_metrics_once() {
        let c = ctx();
        let pairs: Vec<(usize, u64)> = (0..20).map(|i| (i as usize % 2, i)).collect();
        let rdd = Rdd::parallelize(&c, pairs, 2).exchange(2);
        rdd.collect().unwrap();
        rdd.count().unwrap();
        let m = c.metrics.report();
        let e = m.op("exchange").unwrap();
        assert_eq!(e.kind, OpKind::Wide);
        assert_eq!(e.metrics.shuffle_records, 20);
        assert!(e.metrics.shuffle_bytes > 0);
    }

    #[test]
    fn empty_input_exchanges_cleanly() {
        let c = ctx();
        let empty: Vec<(usize, u64)> = vec![];
        assert!(Rdd::parallelize(&c, empty, 2)
            .exchange(3)
            .collect()
            .unwrap()
            .is_empty());
    }
}
