//! Distributed sort via sampled range partitioning.
//!
//! `sort_by_key` samples the input to pick partition boundaries, scatters
//! records into contiguous key ranges (the shuffle), and sorts each range
//! locally — so concatenating output partitions in order yields a globally
//! sorted dataset. Ordered-domain derivations (and the interpolation join's
//! validation path) build on this.

use crate::bytesize::{slice_byte_size, ByteSize};
use crate::exec::ExecCtx;
use crate::metrics::{OpKind, OpMetrics};
use crate::ops::shuffle::ShuffleCell;
use crate::rdd::{Data, PartitionOp, Rdd};
use std::sync::Arc;

struct SortByKeyOp<K: Data, V: Data> {
    parent: Arc<dyn PartitionOp<(K, V)>>,
    out_parts: usize,
    cell: ShuffleCell<(K, V)>,
}

impl<K, V> PartitionOp<(K, V)> for SortByKeyOp<K, V>
where
    K: Data + Ord + ByteSize,
    V: Data + ByteSize,
{
    fn num_partitions(&self) -> usize {
        self.out_parts
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<(K, V)> {
        let buckets = self.cell.get_or_materialize(ctx, || {
            // Stage 1: compute parent partitions once and hold them.
            let parent = Arc::clone(&self.parent);
            let ctx2 = ctx.clone();
            let parts = ctx
                .run_wave(parent.num_partitions(), move |i| parent.compute(i, &ctx2))
                .expect("sort input stage failed");

            // Stage 2: sample keys to choose out_parts-1 range boundaries.
            // A deterministic stride sample (every k-th record) is adequate
            // and keeps results reproducible.
            let total: usize = parts.iter().map(Vec::len).sum();
            let sample_target = (self.out_parts * 20).max(1);
            let stride = (total / sample_target).max(1);
            let mut sample: Vec<K> = parts
                .iter()
                .flatten()
                .step_by(stride)
                .map(|(k, _)| k.clone())
                .collect();
            sample.sort();
            let boundaries: Vec<K> = (1..self.out_parts)
                .filter_map(|i| {
                    let pos = i * sample.len() / self.out_parts;
                    sample.get(pos).cloned()
                })
                .collect();

            // Stage 3: scatter records into range buckets.
            let mut merged: Vec<Vec<(K, V)>> = (0..self.out_parts).map(|_| Vec::new()).collect();
            let mut shuffle_records = 0u64;
            let mut shuffle_bytes = 0u64;
            for part in parts {
                shuffle_records += part.len() as u64;
                shuffle_bytes += slice_byte_size(&part) as u64;
                for (k, v) in part {
                    let bucket = boundaries.partition_point(|b| *b <= k);
                    merged[bucket].push((k, v));
                }
            }
            ctx.metrics.record(
                "sort_by_key",
                OpKind::Wide,
                OpMetrics {
                    records_in: shuffle_records,
                    records_out: shuffle_records,
                    shuffle_bytes,
                    shuffle_records,
                    tasks: self.out_parts as u64,
                },
            );

            // Stage 4: local sort per bucket (parallel). The buckets are
            // shared with the wave tasks via Arc'd mutexes so the task
            // closure is 'static for the executor pool.
            type SharedBuckets<K, V> = Arc<Vec<parking_lot::Mutex<Vec<(K, V)>>>>;
            let merged: SharedBuckets<K, V> =
                Arc::new(merged.into_iter().map(parking_lot::Mutex::new).collect());
            let buckets = Arc::clone(&merged);
            let sorted = ctx
                .run_wave(merged.len(), move |i| {
                    let mut bucket = std::mem::take(&mut *buckets[i].lock());
                    bucket.sort_by(|(a, _), (b, _)| a.cmp(b));
                    bucket
                })
                .expect("sort stage failed");
            sorted
        });
        let _fetch = ctx.shuffle_fetch_span("sort_by_key", idx);
        ctx.check_shuffle_fetch("sort_by_key", idx);
        buckets[idx].as_ref().clone()
    }
    fn name(&self) -> &'static str {
        "sort_by_key"
    }
    fn kind(&self) -> OpKind {
        OpKind::Wide
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Ord + ByteSize,
    V: Data + ByteSize,
{
    /// Globally sort by key: output partition `i` holds a contiguous,
    /// locally sorted key range, and ranges are ordered across partitions.
    /// Wide (one shuffle).
    pub fn sort_by_key(&self, out_parts: usize) -> Rdd<(K, V)> {
        Rdd::from_op(
            Arc::new(SortByKeyOp {
                parent: Arc::clone(&self.op),
                out_parts: out_parts.max(1),
                cell: ShuffleCell::new(&self.ctx),
            }),
            self.ctx.clone(),
        )
    }
}

impl<T> Rdd<T>
where
    T: Data + Ord + ByteSize,
{
    /// Globally sort elements (via `sort_by_key` on the identity key).
    pub fn sort(&self, out_parts: usize) -> Rdd<T> {
        self.map(|x| (x, ()))
            .sort_by_key(out_parts)
            .map(|(x, ())| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn ctx() -> ExecCtx {
        ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
    }

    #[test]
    fn sort_by_key_yields_global_order() {
        let c = ctx();
        let data: Vec<(i64, u64)> = (0..500)
            .map(|i| (((i * 7919) % 500) as i64, i as u64))
            .collect();
        let sorted = Rdd::parallelize(&c, data, 8).sort_by_key(4);
        let got = sorted.collect().unwrap();
        assert_eq!(got.len(), 500);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn sort_partitions_hold_contiguous_ranges() {
        let c = ctx();
        let data: Vec<(i64, ())> = (0..1000).rev().map(|i| (i as i64, ())).collect();
        let parts = Rdd::parallelize(&c, data, 8).sort_by_key(4).glom().unwrap();
        assert_eq!(parts.len(), 4);
        let mut last_max: Option<i64> = None;
        for p in &parts {
            if p.is_empty() {
                continue;
            }
            let min = p.first().unwrap().0;
            let max = p.last().unwrap().0;
            if let Some(lm) = last_max {
                assert!(min >= lm);
            }
            last_max = Some(max);
        }
        // With 1000 uniform keys, every range should be populated.
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn sort_plain_elements() {
        let c = ctx();
        let got = Rdd::parallelize(&c, vec![5u64, 3, 1, 4, 2], 3)
            .sort(2)
            .collect()
            .unwrap();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn sort_with_duplicate_keys() {
        let c = ctx();
        let data: Vec<(u64, u64)> = (0..100).map(|i| (i % 3, i)).collect();
        let got = Rdd::parallelize(&c, data, 5)
            .sort_by_key(3)
            .collect()
            .unwrap();
        assert_eq!(got.len(), 100);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn sort_empty_dataset() {
        let c = ctx();
        let got: Vec<(u64, u64)> = Rdd::parallelize(&c, vec![], 3)
            .sort_by_key(3)
            .collect()
            .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn sort_records_shuffle_metrics() {
        let c = ctx();
        let data: Vec<(u64, u64)> = (0..200).map(|i| (i, i)).collect();
        Rdd::parallelize(&c, data, 4)
            .sort_by_key(4)
            .collect()
            .unwrap();
        let r = c.metrics.report();
        assert_eq!(r.op("sort_by_key").unwrap().metrics.shuffle_records, 200);
    }
}
