//! Hash-shuffle operations: `group_by_key`, `reduce_by_key`, `distinct`,
//! `repartition`, and `count_by_key`.

use crate::bytesize::{slice_byte_size, ByteSize};
use crate::exec::ExecCtx;
use crate::metrics::{OpKind, OpMetrics};
use crate::ops::{bucket_of, group_in_order, OrderedReduce};
use crate::rdd::{Data, PartitionOp, Rdd};
use crate::stagecache::{next_owner_id, EvictableSlot, StageCache};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// Shared materialization slot for a shuffle's reduce-side buckets.
type Buckets<T> = Arc<Vec<Arc<Vec<T>>>>;

enum CellState<T> {
    Empty,
    InProgress,
    Full(Buckets<T>),
}

/// The shareable half of a [`ShuffleCell`]: the state machine the stage
/// cache clears on eviction. The lock is never held across the shuffle
/// itself (waiters park on the condvar), and never while calling into
/// the [`StageCache`].
struct CellInner<T> {
    state: Mutex<CellState<T>>,
    ready: Condvar,
}

/// Cell state transitions are rolled back on unwind, so poisoning never
/// leaves an inconsistent value behind.
fn lock_cell<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl<T: Send + Sync> EvictableSlot for CellInner<T> {
    fn evict(&self, _part: usize) {
        let mut state = lock_cell(&self.state);
        if let CellState::Full(_) = &*state {
            *state = CellState::Empty;
        }
    }
}

/// Rolls an `InProgress` cell back to `Empty` if the shuffle unwinds.
struct CellResetOnUnwind<'a, T> {
    inner: &'a CellInner<T>,
    armed: bool,
}

impl<T> Drop for CellResetOnUnwind<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            *lock_cell(&self.inner.state) = CellState::Empty;
            self.inner.ready.notify_all();
        }
    }
}

/// Auto-persisted materialization slot for a shuffle's reduce-side
/// buckets. Every wide op's output registers with the context's
/// [`StageCache`] (one entry per cell, sized by [`slice_byte_size`]), so
/// a lineage evaluated twice shuffles once, and an evicted shuffle is
/// transparently re-materialized on its next access.
pub(crate) struct ShuffleCell<T> {
    inner: Arc<CellInner<T>>,
    owner_id: u64,
    cache: Arc<StageCache>,
}

impl<T> Drop for ShuffleCell<T> {
    fn drop(&mut self) {
        self.cache.release_owner(self.owner_id);
    }
}

impl<T: Data + ByteSize> ShuffleCell<T> {
    pub(crate) fn new(ctx: &ExecCtx) -> Self {
        ShuffleCell {
            inner: Arc::new(CellInner {
                state: Mutex::new(CellState::Empty),
                ready: Condvar::new(),
            }),
            owner_id: next_owner_id(),
            cache: Arc::clone(ctx.stage_cache()),
        }
    }

    /// Compute-once accessor: the first caller materializes (concurrent
    /// callers wait on the condvar rather than re-shuffling), later
    /// callers — and later evaluations, until eviction — reuse the
    /// buckets straight from memory.
    pub(crate) fn get_or_materialize<F>(&self, ctx: &ExecCtx, init: F) -> Buckets<T>
    where
        F: FnOnce() -> Vec<Vec<T>>,
    {
        let mut state = lock_cell(&self.inner.state);
        loop {
            match &*state {
                CellState::Full(b) => {
                    let b = Arc::clone(b);
                    drop(state);
                    self.cache.record_hit(self.owner_id, 0);
                    ctx.metrics.record_cache_hit();
                    ctx.tracer().instant("cache_hit", "shuffle");
                    return b;
                }
                CellState::InProgress => {
                    state = self
                        .inner
                        .ready
                        .wait(state)
                        .unwrap_or_else(|poison| poison.into_inner());
                }
                CellState::Empty => {
                    *state = CellState::InProgress;
                    drop(state);
                    break;
                }
            }
        }
        let mspan = ctx.tracer().span("shuffle_materialize");
        let mut guard = CellResetOnUnwind {
            inner: &self.inner,
            armed: true,
        };
        let buckets: Buckets<T> = Arc::new(init().into_iter().map(Arc::new).collect());
        let bytes: usize = buckets.iter().map(|b| slice_byte_size(b)).sum();
        {
            let mut state = lock_cell(&self.inner.state);
            *state = CellState::Full(Arc::clone(&buckets));
            self.inner.ready.notify_all();
        }
        guard.armed = false;
        drop(mspan);
        ctx.metrics.record_cache_miss();
        ctx.tracer().instant("cache_miss", "shuffle");
        let erased: Arc<dyn EvictableSlot> = Arc::clone(&self.inner) as Arc<dyn EvictableSlot>;
        let evicted = self.cache.insert(self.owner_id, 0, bytes, &erased);
        if evicted > 0 {
            ctx.metrics.record_cache_evictions(evicted as u64);
            if ctx.tracer().enabled() {
                ctx.tracer()
                    .instant("cache_evict", format!("shuffle evicted={evicted}"));
            }
        }
        buckets
    }
}

/// Map-side shuffle: compute every parent partition and scatter its records
/// into `out_parts` buckets by key hash. Returns the per-output-partition
/// record lists and records shuffle metrics.
fn scatter_by_key<K, V>(
    name: &'static str,
    parent: &Arc<dyn PartitionOp<(K, V)>>,
    out_parts: usize,
    ctx: &ExecCtx,
) -> Vec<Vec<(K, V)>>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
{
    let parent = Arc::clone(parent);
    let ctx2 = ctx.clone();
    let map_outputs = ctx
        .run_wave(parent.num_partitions(), move |i| {
            let records = parent.compute(i, &ctx2);
            let mut buckets: Vec<Vec<(K, V)>> = (0..out_parts).map(|_| Vec::new()).collect();
            for (k, v) in records {
                buckets[bucket_of(&k, out_parts)].push((k, v));
            }
            buckets
        })
        .expect("shuffle map stage failed");

    let mut merged: Vec<Vec<(K, V)>> = (0..out_parts).map(|_| Vec::new()).collect();
    let mut shuffle_records = 0u64;
    let mut shuffle_bytes = 0u64;
    for map_out in map_outputs {
        for (o, bucket) in map_out.into_iter().enumerate() {
            shuffle_records += bucket.len() as u64;
            shuffle_bytes += slice_byte_size(&bucket) as u64;
            merged[o].extend(bucket);
        }
    }
    ctx.metrics.record(
        name,
        OpKind::Wide,
        OpMetrics {
            records_in: shuffle_records,
            records_out: 0,
            shuffle_bytes,
            shuffle_records,
            tasks: out_parts as u64,
        },
    );
    merged
}

// ---------------------------------------------------------------------------
// group_by_key
// ---------------------------------------------------------------------------

struct GroupByKeyOp<K: Data, V: Data> {
    parent: Arc<dyn PartitionOp<(K, V)>>,
    out_parts: usize,
    cell: ShuffleCell<(K, Vec<V>)>,
}

impl<K, V> PartitionOp<(K, Vec<V>)> for GroupByKeyOp<K, V>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
{
    fn num_partitions(&self) -> usize {
        self.out_parts
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<(K, Vec<V>)> {
        let buckets = self.cell.get_or_materialize(ctx, || {
            let scattered = scatter_by_key("group_by_key", &self.parent, self.out_parts, ctx);
            // Insertion-order grouping keeps the bucket deterministic, so
            // a fault-triggered re-materialization reproduces it exactly.
            scattered.into_iter().map(group_in_order).collect()
        });
        let _fetch = ctx.shuffle_fetch_span("group_by_key", idx);
        ctx.check_shuffle_fetch("group_by_key", idx);
        buckets[idx].as_ref().clone()
    }
    fn name(&self) -> &'static str {
        "group_by_key"
    }
    fn kind(&self) -> OpKind {
        OpKind::Wide
    }
}

// ---------------------------------------------------------------------------
// reduce_by_key (map-side combine)
// ---------------------------------------------------------------------------

struct ReduceByKeyOp<K: Data, V: Data> {
    parent: Arc<dyn PartitionOp<(K, V)>>,
    out_parts: usize,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(V, V) -> V + Send + Sync>,
    cell: ShuffleCell<(K, V)>,
}

impl<K, V> PartitionOp<(K, V)> for ReduceByKeyOp<K, V>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
{
    fn num_partitions(&self) -> usize {
        self.out_parts
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<(K, V)> {
        let buckets = self.cell.get_or_materialize(ctx, || {
            // Map-side combine first: shrink each parent partition to one
            // record per key before shuffling — the classic reduceByKey
            // optimization that cuts shuffle volume.
            let parent = Arc::clone(&self.parent);
            let f = Arc::clone(&self.f);
            let out_parts = self.out_parts;
            let ctx2 = ctx.clone();
            let combined = ctx
                .run_wave(parent.num_partitions(), move |i| {
                    // First-occurrence-ordered combine: the map output must
                    // be a pure function of the input sequence so a retried
                    // stage reproduces it byte for byte.
                    let mut acc: OrderedReduce<K, V> = OrderedReduce::new();
                    for (k, v) in parent.compute(i, &ctx2) {
                        acc.push(k, v, &*f);
                    }
                    let mut buckets: Vec<Vec<(K, V)>> =
                        (0..out_parts).map(|_| Vec::new()).collect();
                    for (k, v) in acc.into_pairs() {
                        buckets[bucket_of(&k, out_parts)].push((k, v));
                    }
                    buckets
                })
                .expect("reduce_by_key map stage failed");

            let mut shuffle_records = 0u64;
            let mut shuffle_bytes = 0u64;
            let mut merged: Vec<OrderedReduce<K, V>> =
                (0..self.out_parts).map(|_| OrderedReduce::new()).collect();
            for map_out in combined {
                for (o, bucket) in map_out.into_iter().enumerate() {
                    shuffle_records += bucket.len() as u64;
                    shuffle_bytes += slice_byte_size(&bucket) as u64;
                    for (k, v) in bucket {
                        merged[o].push(k, v, &*self.f);
                    }
                }
            }
            ctx.metrics.record(
                "reduce_by_key",
                OpKind::Wide,
                OpMetrics {
                    records_in: shuffle_records,
                    records_out: merged.iter().map(|m| m.len() as u64).sum(),
                    shuffle_bytes,
                    shuffle_records,
                    tasks: self.out_parts as u64,
                },
            );
            merged.into_iter().map(|m| m.into_pairs()).collect()
        });
        let _fetch = ctx.shuffle_fetch_span("reduce_by_key", idx);
        ctx.check_shuffle_fetch("reduce_by_key", idx);
        buckets[idx].as_ref().clone()
    }
    fn name(&self) -> &'static str {
        "reduce_by_key"
    }
    fn kind(&self) -> OpKind {
        OpKind::Wide
    }
}

// ---------------------------------------------------------------------------
// repartition (round-robin shuffle)
// ---------------------------------------------------------------------------

struct RepartitionOp<T: Data> {
    parent: Arc<dyn PartitionOp<T>>,
    out_parts: usize,
    cell: ShuffleCell<T>,
}

impl<T> PartitionOp<T> for RepartitionOp<T>
where
    T: Data + ByteSize,
{
    fn num_partitions(&self) -> usize {
        self.out_parts
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<T> {
        let buckets = self.cell.get_or_materialize(ctx, || {
            let parent = Arc::clone(&self.parent);
            let out_parts = self.out_parts;
            let ctx2 = ctx.clone();
            let map_outputs = ctx
                .run_wave(parent.num_partitions(), move |i| {
                    let records = parent.compute(i, &ctx2);
                    let mut buckets: Vec<Vec<T>> = (0..out_parts).map(|_| Vec::new()).collect();
                    // Offset round-robin by the partition index so data from
                    // different partitions interleaves across buckets.
                    for (j, r) in records.into_iter().enumerate() {
                        buckets[(i + j) % out_parts].push(r);
                    }
                    buckets
                })
                .expect("repartition map stage failed");
            let mut merged: Vec<Vec<T>> = (0..self.out_parts).map(|_| Vec::new()).collect();
            let mut shuffle_records = 0u64;
            let mut shuffle_bytes = 0u64;
            for map_out in map_outputs {
                for (o, bucket) in map_out.into_iter().enumerate() {
                    shuffle_records += bucket.len() as u64;
                    shuffle_bytes += slice_byte_size(&bucket) as u64;
                    merged[o].extend(bucket);
                }
            }
            ctx.metrics.record(
                "repartition",
                OpKind::Wide,
                OpMetrics {
                    records_in: shuffle_records,
                    records_out: shuffle_records,
                    shuffle_bytes,
                    shuffle_records,
                    tasks: self.out_parts as u64,
                },
            );
            merged
        });
        let _fetch = ctx.shuffle_fetch_span("repartition", idx);
        ctx.check_shuffle_fetch("repartition", idx);
        buckets[idx].as_ref().clone()
    }
    fn name(&self) -> &'static str {
        "repartition"
    }
    fn kind(&self) -> OpKind {
        OpKind::Wide
    }
}

// ---------------------------------------------------------------------------
// Public extension methods
// ---------------------------------------------------------------------------

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
{
    /// Group all values sharing a key into one record. Wide (shuffle).
    pub fn group_by_key(&self, out_parts: usize) -> Rdd<(K, Vec<V>)> {
        Rdd::from_op(
            Arc::new(GroupByKeyOp {
                parent: Arc::clone(&self.op),
                out_parts: out_parts.max(1),
                cell: ShuffleCell::new(&self.ctx),
            }),
            self.ctx.clone(),
        )
    }

    /// Merge values per key with an associative, commutative operator,
    /// combining map-side before the shuffle. Wide.
    pub fn reduce_by_key<F>(&self, out_parts: usize, f: F) -> Rdd<(K, V)>
    where
        F: Fn(V, V) -> V + Send + Sync + 'static,
    {
        Rdd::from_op(
            Arc::new(ReduceByKeyOp {
                parent: Arc::clone(&self.op),
                out_parts: out_parts.max(1),
                f: Arc::new(f),
                cell: ShuffleCell::new(&self.ctx),
            }),
            self.ctx.clone(),
        )
    }

    /// Number of records per key (built on `reduce_by_key`).
    pub fn count_by_key(&self, out_parts: usize) -> Rdd<(K, u64)> {
        self.map(|(k, _)| (k, 1u64))
            .reduce_by_key(out_parts, |a, b| a + b)
    }

    /// Apply `f` to each value, preserving keys (narrow).
    pub fn map_values<W: Data, F>(&self, f: F) -> Rdd<(K, W)>
    where
        F: Fn(V) -> W + Send + Sync + 'static,
    {
        self.map_partitions_named("map_values", move |part| {
            part.into_iter().map(|(k, v)| (k, f(v))).collect()
        })
    }
}

impl<T> Rdd<T>
where
    T: Data + ByteSize + Hash + Eq,
{
    /// Remove duplicate elements. Wide (one shuffle).
    pub fn distinct(&self, out_parts: usize) -> Rdd<T> {
        self.map(|x| (x, ()))
            .reduce_by_key(out_parts, |a, _| a)
            .map(|(x, ())| x)
    }
}

impl<T> Rdd<T>
where
    T: Data + ByteSize,
{
    /// Redistribute records round-robin over `out_parts` partitions. Wide.
    pub fn repartition(&self, out_parts: usize) -> Rdd<T> {
        Rdd::from_op(
            Arc::new(RepartitionOp {
                parent: Arc::clone(&self.op),
                out_parts: out_parts.max(1),
                cell: ShuffleCell::new(&self.ctx),
            }),
            self.ctx.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn ctx() -> ExecCtx {
        ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
    }

    #[test]
    fn group_by_key_groups_all_values() {
        let c = ctx();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, i)).collect();
        let grouped = Rdd::parallelize(&c, pairs, 8).group_by_key(4);
        let mut got = grouped.collect().unwrap();
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got.len(), 5);
        for (k, vs) in got {
            assert_eq!(vs.len(), 20);
            assert!(vs.iter().all(|v| v % 5 == k));
        }
    }

    #[test]
    fn group_by_key_records_shuffle_metrics() {
        let c = ctx();
        let pairs: Vec<(u64, String)> = (0..50).map(|i| (i % 3, format!("v{i}"))).collect();
        Rdd::parallelize(&c, pairs, 4)
            .group_by_key(4)
            .collect()
            .unwrap();
        let r = c.metrics.report();
        let g = r.op("group_by_key").unwrap();
        assert_eq!(g.kind, OpKind::Wide);
        assert_eq!(g.metrics.shuffle_records, 50);
        assert!(g.metrics.shuffle_bytes > 0);
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = ctx();
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, 1)).collect();
        let mut got = Rdd::parallelize(&c, pairs, 8)
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .unwrap();
        got.sort();
        assert_eq!(got, (0..10).map(|k| (k, 100u64)).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_by_key_shuffles_less_than_group_by_key() {
        // Map-side combine: 1000 records with 10 keys over 8 partitions
        // should shuffle at most 80 combined records.
        let c = ctx();
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, 1)).collect();
        Rdd::parallelize(&c, pairs, 8)
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .unwrap();
        let r = c.metrics.report();
        let m = r.op("reduce_by_key").unwrap();
        assert!(
            m.metrics.shuffle_records <= 80,
            "{}",
            m.metrics.shuffle_records
        );
    }

    #[test]
    fn count_by_key_counts() {
        let c = ctx();
        let pairs: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2), ("a".into(), 3)];
        let mut got = Rdd::parallelize(&c, pairs, 2)
            .count_by_key(2)
            .collect()
            .unwrap();
        got.sort();
        assert_eq!(got, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
    }

    #[test]
    fn map_values_preserves_keys() {
        let c = ctx();
        let got = Rdd::parallelize(&c, vec![(1u64, 2u64), (3, 4)], 1)
            .map_values(|v| v * 10)
            .collect()
            .unwrap();
        assert_eq!(got, vec![(1, 20), (3, 40)]);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = ctx();
        let mut got = Rdd::parallelize(&c, vec![1u64, 2, 2, 3, 3, 3], 3)
            .distinct(2)
            .collect()
            .unwrap();
        got.sort();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn repartition_changes_partition_count_not_content() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0..100u64).collect(), 2).repartition(7);
        assert_eq!(rdd.num_partitions(), 7);
        let mut got = rdd.collect().unwrap();
        got.sort();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        // All partitions should receive data.
        assert!(rdd.glom().unwrap().iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn shuffle_materializes_once_across_partitions_and_evaluations() {
        let c = ctx();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, i)).collect();
        let grouped = Rdd::parallelize(&c, pairs, 4).group_by_key(4);
        grouped.collect().unwrap();
        grouped.count().unwrap();
        let r = c.metrics.report();
        // Shuffle metrics recorded exactly once (50*2 would mean twice).
        assert_eq!(r.op("group_by_key").unwrap().metrics.shuffle_records, 100);
    }

    #[test]
    fn empty_input_shuffles_cleanly() {
        let c = ctx();
        let empty: Vec<(u64, u64)> = vec![];
        let got = Rdd::parallelize(&c, empty, 3)
            .group_by_key(3)
            .collect()
            .unwrap();
        assert!(got.is_empty());
    }
}
