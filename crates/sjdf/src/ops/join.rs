//! Keyed joins: `cogroup`, inner `join`, and `left_outer_join`.
//!
//! These are the substrate under ScrubJay's Natural Join combination: both
//! sides are hash-shuffled on the key, then matching groups are paired
//! within each reduce partition.

use crate::bytesize::{slice_byte_size, ByteSize};
use crate::exec::ExecCtx;
use crate::metrics::{OpKind, OpMetrics};
use crate::ops::bucket_of;
use crate::ops::shuffle::ShuffleCell;
use crate::rdd::{Data, PartitionOp, Rdd};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Pair each key's left and right values, keeping keys in first-seen
/// order (left bucket first) so re-materialization after a fault or
/// eviction reproduces the bucket exactly — `HashMap` drain order would
/// differ per instance.
fn cogroup_in_order<K, V, W>(lbucket: Vec<(K, V)>, rbucket: Vec<(K, W)>) -> Vec<CoGrouped<K, V, W>>
where
    K: Hash + Eq + Clone,
{
    let mut index: HashMap<K, usize> = HashMap::new();
    let mut out: Vec<CoGrouped<K, V, W>> = Vec::new();
    for (k, v) in lbucket {
        match index.get(&k) {
            Some(&i) => out[i].1 .0.push(v),
            None => {
                index.insert(k.clone(), out.len());
                out.push((k, (vec![v], Vec::new())));
            }
        }
    }
    for (k, w) in rbucket {
        match index.get(&k) {
            Some(&i) => out[i].1 .1.push(w),
            None => {
                index.insert(k.clone(), out.len());
                out.push((k, (Vec::new(), vec![w])));
            }
        }
    }
    out
}

/// A cogrouped record: all left and right values for one key.
pub type CoGrouped<K, V, W> = (K, (Vec<V>, Vec<W>));

struct CoGroupOp<K: Data, V: Data, W: Data> {
    left: Arc<dyn PartitionOp<(K, V)>>,
    right: Arc<dyn PartitionOp<(K, W)>>,
    out_parts: usize,
    cell: ShuffleCell<CoGrouped<K, V, W>>,
}

/// Scatter one side of a cogroup into per-output-partition buckets,
/// returning the buckets plus (records, bytes) shuffled.
type Scattered<K, X> = (Vec<Vec<(K, X)>>, u64, u64);

fn scatter_side<K, X>(
    parent: &Arc<dyn PartitionOp<(K, X)>>,
    out_parts: usize,
    ctx: &ExecCtx,
) -> Scattered<K, X>
where
    K: Data + Hash + Eq + ByteSize,
    X: Data + ByteSize,
{
    let parent = Arc::clone(parent);
    let ctx2 = ctx.clone();
    let map_outputs = ctx
        .run_wave(parent.num_partitions(), move |i| {
            let records = parent.compute(i, &ctx2);
            let mut buckets: Vec<Vec<(K, X)>> = (0..out_parts).map(|_| Vec::new()).collect();
            for (k, v) in records {
                buckets[bucket_of(&k, out_parts)].push((k, v));
            }
            buckets
        })
        .expect("cogroup map stage failed");
    let mut merged: Vec<Vec<(K, X)>> = (0..out_parts).map(|_| Vec::new()).collect();
    let mut records = 0u64;
    let mut bytes = 0u64;
    for map_out in map_outputs {
        for (o, bucket) in map_out.into_iter().enumerate() {
            records += bucket.len() as u64;
            bytes += slice_byte_size(&bucket) as u64;
            merged[o].extend(bucket);
        }
    }
    (merged, records, bytes)
}

impl<K, V, W> PartitionOp<(K, (Vec<V>, Vec<W>))> for CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
    W: Data + ByteSize,
{
    fn num_partitions(&self) -> usize {
        self.out_parts
    }
    fn compute(&self, idx: usize, ctx: &ExecCtx) -> Vec<(K, (Vec<V>, Vec<W>))> {
        let buckets = self.cell.get_or_materialize(ctx, || {
            let (left, lrec, lbytes) = scatter_side(&self.left, self.out_parts, ctx);
            let (right, rrec, rbytes) = scatter_side(&self.right, self.out_parts, ctx);
            ctx.metrics.record(
                "cogroup",
                OpKind::Wide,
                OpMetrics {
                    records_in: lrec + rrec,
                    records_out: 0,
                    shuffle_bytes: lbytes + rbytes,
                    shuffle_records: lrec + rrec,
                    tasks: self.out_parts as u64,
                },
            );
            left.into_iter()
                .zip(right)
                .map(|(lbucket, rbucket)| cogroup_in_order(lbucket, rbucket))
                .collect()
        });
        let _fetch = ctx.shuffle_fetch_span("cogroup", idx);
        ctx.check_shuffle_fetch("cogroup", idx);
        buckets[idx].as_ref().clone()
    }
    fn name(&self) -> &'static str {
        "cogroup"
    }
    fn kind(&self) -> OpKind {
        OpKind::Wide
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
{
    /// Group this dataset with another by key: each output record carries
    /// all left values and all right values for one key. Wide.
    pub fn cogroup<W>(&self, other: &Rdd<(K, W)>, out_parts: usize) -> Rdd<CoGrouped<K, V, W>>
    where
        W: Data + ByteSize,
    {
        Rdd::from_op(
            Arc::new(CoGroupOp {
                left: Arc::clone(&self.op),
                right: Arc::clone(&other.op),
                out_parts: out_parts.max(1),
                cell: ShuffleCell::new(&self.ctx),
            }),
            self.ctx.clone(),
        )
    }

    /// Inner equi-join: the cross product of left and right values per key.
    /// Wide (one shuffle per side).
    pub fn join<W>(&self, other: &Rdd<(K, W)>, out_parts: usize) -> Rdd<(K, (V, W))>
    where
        W: Data + ByteSize,
    {
        self.cogroup(other, out_parts)
            .map_partitions_named("join", |part| {
                part.into_iter()
                    .flat_map(|(k, (vs, ws))| {
                        let mut out = Vec::with_capacity(vs.len() * ws.len());
                        for v in &vs {
                            for w in &ws {
                                out.push((k.clone(), (v.clone(), w.clone())));
                            }
                        }
                        out
                    })
                    .collect()
            })
    }

    /// Left outer join: every left value appears; unmatched keys pair with
    /// `None`. Wide.
    pub fn left_outer_join<W>(
        &self,
        other: &Rdd<(K, W)>,
        out_parts: usize,
    ) -> Rdd<(K, (V, Option<W>))>
    where
        W: Data + ByteSize,
    {
        self.cogroup(other, out_parts)
            .map_partitions_named("left_outer_join", |part| {
                part.into_iter()
                    .flat_map(|(k, (vs, ws))| {
                        let mut out = Vec::new();
                        for v in &vs {
                            if ws.is_empty() {
                                out.push((k.clone(), (v.clone(), None)));
                            } else {
                                for w in &ws {
                                    out.push((k.clone(), (v.clone(), Some(w.clone()))));
                                }
                            }
                        }
                        out
                    })
                    .collect()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn ctx() -> ExecCtx {
        ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
    }

    #[test]
    fn cogroup_collects_both_sides() {
        let c = ctx();
        let left = Rdd::parallelize(&c, vec![(1u64, 10u64), (1, 11), (2, 20)], 2);
        let right = Rdd::parallelize(&c, vec![(1u64, 100u64), (3, 300)], 2);
        let mut got = left.cogroup(&right, 3).collect().unwrap();
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got.len(), 3);
        let (k1, (vs1, ws1)) = &got[0];
        assert_eq!(*k1, 1);
        let mut vs1 = vs1.clone();
        vs1.sort();
        assert_eq!(vs1, vec![10, 11]);
        assert_eq!(ws1, &vec![100]);
        assert_eq!(got[1], (2, (vec![20], vec![])));
        assert_eq!(got[2], (3, (vec![], vec![300])));
    }

    #[test]
    fn inner_join_is_cross_product_per_key() {
        let c = ctx();
        let left = Rdd::parallelize(&c, vec![(1u64, "a"), (1, "b"), (2, "c")], 2);
        let right = Rdd::parallelize(&c, vec![(1u64, 10u64), (1, 20)], 2);
        let mut got = left
            .map(|(k, v)| (k, v.to_string()))
            .join(&right, 2)
            .collect()
            .unwrap();
        got.sort();
        assert_eq!(
            got,
            vec![
                (1, ("a".to_string(), 10)),
                (1, ("a".to_string(), 20)),
                (1, ("b".to_string(), 10)),
                (1, ("b".to_string(), 20)),
            ]
        );
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left() {
        let c = ctx();
        let left = Rdd::parallelize(&c, vec![(1u64, 1u64), (2, 2)], 1);
        let right = Rdd::parallelize(&c, vec![(1u64, 10u64)], 1);
        let mut got = left.left_outer_join(&right, 2).collect().unwrap();
        got.sort();
        assert_eq!(got, vec![(1, (1, Some(10))), (2, (2, None))]);
    }

    #[test]
    fn join_on_disjoint_keys_is_empty() {
        let c = ctx();
        let left = Rdd::parallelize(&c, vec![(1u64, 1u64)], 1);
        let right = Rdd::parallelize(&c, vec![(2u64, 2u64)], 1);
        assert!(left.join(&right, 2).collect().unwrap().is_empty());
    }

    #[test]
    fn join_records_shuffle_from_both_sides() {
        let c = ctx();
        let left = Rdd::parallelize(&c, (0..30u64).map(|i| (i, i)).collect::<Vec<_>>(), 3);
        let right = Rdd::parallelize(&c, (0..20u64).map(|i| (i, i)).collect::<Vec<_>>(), 2);
        left.join(&right, 4).collect().unwrap();
        let r = c.metrics.report();
        assert_eq!(r.op("cogroup").unwrap().metrics.shuffle_records, 50);
    }

    #[test]
    fn join_with_string_keys() {
        let c = ctx();
        let left = Rdd::parallelize(
            &c,
            vec![("node1".to_string(), 1u64), ("node2".to_string(), 2)],
            2,
        );
        let right = Rdd::parallelize(&c, vec![("node1".to_string(), "rack A".to_string())], 1);
        let got = left.join(&right, 2).collect().unwrap();
        assert_eq!(got, vec![("node1".to_string(), (1, "rack A".to_string()))]);
    }
}
