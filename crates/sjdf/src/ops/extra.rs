//! Additional dataset operations: indexing, sampling, and top-k.

use crate::bytesize::ByteSize;
use crate::error::Result;
use crate::rdd::{Data, Rdd};
use std::hash::Hash;

impl<T: Data> Rdd<T> {
    /// Pair every element with its global index (two passes: a count wave
    /// to compute partition offsets, then a narrow map).
    pub fn zip_with_index(&self) -> Result<Rdd<(u64, T)>> {
        let op = std::sync::Arc::clone(&self.op);
        let ctx = self.ctx.clone();
        let counts = self.ctx.run_wave(self.op.num_partitions(), move |i| {
            op.compute(i, &ctx).len() as u64
        })?;
        let mut offsets = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for c in counts {
            offsets.push(acc);
            acc += c;
        }
        Ok(self.map_partitions_with_index(move |p, rows| {
            let base = offsets[p];
            rows.into_iter()
                .enumerate()
                .map(|(i, r)| (base + i as u64, r))
                .collect()
        }))
    }

    /// Deterministic pseudo-random sample keeping roughly `fraction` of
    /// the elements (seeded; narrow).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        let fraction = fraction.clamp(0.0, 1.0);
        let threshold = (fraction * u64::MAX as f64) as u64;
        self.map_partitions_with_index(move |p, rows| {
            rows.into_iter()
                .enumerate()
                .filter(|(i, _)| {
                    // splitmix64 over (seed, partition, index).
                    let mut x = seed
                        .wrapping_add((p as u64) << 32)
                        .wrapping_add(*i as u64)
                        .wrapping_add(0x9E37_79B9_7F4A_7C15);
                    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    (x ^ (x >> 31)) <= threshold
                })
                .map(|(_, r)| r)
                .collect()
        })
    }
}

impl<T> Rdd<T>
where
    T: Data + Ord,
{
    /// The `k` smallest elements (per-partition top-k then a driver-side
    /// merge — no shuffle).
    pub fn take_ordered(&self, k: usize) -> Result<Vec<T>> {
        let partials = self
            .map_partitions_named("take_ordered", move |mut rows| {
                rows.sort();
                rows.truncate(k);
                rows
            })
            .glom()?;
        let mut all: Vec<T> = partials.into_iter().flatten().collect();
        all.sort();
        all.truncate(k);
        Ok(all)
    }

    /// The `k` largest elements.
    pub fn top(&self, k: usize) -> Result<Vec<T>> {
        let partials = self
            .map_partitions_named("top", move |mut rows| {
                rows.sort_by(|a, b| b.cmp(a));
                rows.truncate(k);
                rows
            })
            .glom()?;
        let mut all: Vec<T> = partials.into_iter().flatten().collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        Ok(all)
    }
}

impl<T> Rdd<T>
where
    T: Data + Hash + Eq + ByteSize,
{
    /// Count occurrences of each distinct element. Wide (one shuffle of
    /// map-side-combined counts).
    pub fn count_by_value(&self, out_parts: usize) -> Rdd<(T, u64)> {
        self.map(|x| (x, 1u64))
            .reduce_by_key(out_parts, |a, b| a + b)
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq + ByteSize,
    V: Data + ByteSize,
{
    /// Aggregate values per key with a per-partition fold and a merge of
    /// partial aggregates (Spark's `aggregateByKey`). Wide, but only the
    /// combined partials are shuffled.
    pub fn aggregate_by_key<A, F, G>(
        &self,
        out_parts: usize,
        zero: A,
        fold: F,
        merge: G,
    ) -> Rdd<(K, A)>
    where
        A: Data + ByteSize,
        F: Fn(A, V) -> A + Send + Sync + 'static,
        G: Fn(A, A) -> A + Send + Sync + 'static,
    {
        use std::collections::HashMap;
        let pre = self.map_partitions_named("aggregate_by_key_fold", move |rows| {
            // First-occurrence key order, not HashMap drain order, so the
            // partials are a pure function of the input sequence (see
            // `ops::group_in_order`).
            let mut index: HashMap<K, usize> = HashMap::new();
            let mut acc: Vec<(K, A)> = Vec::new();
            for (k, v) in rows {
                match index.get(&k) {
                    Some(&i) => {
                        let slot = &mut acc[i].1;
                        *slot = fold(std::mem::replace(slot, zero.clone()), v);
                    }
                    None => {
                        index.insert(k.clone(), acc.len());
                        acc.push((k, fold(zero.clone(), v)));
                    }
                }
            }
            acc
        });
        pre.reduce_by_key(out_parts, merge)
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::ClusterSpec;
    use crate::exec::ExecCtx;
    use crate::rdd::Rdd;

    fn ctx() -> ExecCtx {
        ExecCtx::new(ClusterSpec::new(1, 4).unwrap())
    }

    #[test]
    fn zip_with_index_is_global_and_ordered() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (100..150u64).collect(), 7);
        let indexed = rdd.zip_with_index().unwrap().collect().unwrap();
        for (i, (idx, v)) in indexed.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*v, 100 + i as u64);
        }
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, (0..10_000u64).collect(), 8);
        let a = rdd.sample(0.3, 7).collect().unwrap();
        let b = rdd.sample(0.3, 7).collect().unwrap();
        assert_eq!(a, b);
        assert!((2_000..4_000).contains(&a.len()), "{}", a.len());
        assert!(rdd.sample(0.0, 7).collect().unwrap().is_empty());
        assert_eq!(rdd.sample(1.0, 7).count().unwrap(), 10_000);
    }

    #[test]
    fn take_ordered_and_top() {
        let c = ctx();
        let data: Vec<i64> = vec![5, 3, 9, 1, 7, 2, 8, 4, 6, 0];
        let rdd = Rdd::parallelize(&c, data, 3);
        assert_eq!(rdd.take_ordered(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(rdd.top(2).unwrap(), vec![9, 8]);
        assert_eq!(rdd.take_ordered(100).unwrap().len(), 10);
    }

    #[test]
    fn count_by_value_counts() {
        let c = ctx();
        let rdd = Rdd::parallelize(&c, vec!["a", "b", "a", "a", "c"], 2).map(|s| s.to_string());
        let mut got = rdd.count_by_value(2).collect().unwrap();
        got.sort();
        assert_eq!(
            got,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 1),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn aggregate_by_key_computes_means() {
        let c = ctx();
        let pairs: Vec<(u64, f64)> = (0..100).map(|i| (i % 4, i as f64)).collect();
        let rdd = Rdd::parallelize(&c, pairs, 8);
        let sums = rdd.aggregate_by_key(
            2,
            (0.0f64, 0u64),
            |(s, n), v| (s + v, n + 1),
            |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2),
        );
        let mut got: Vec<(u64, f64)> = sums.map(|(k, (s, n))| (k, s / n as f64)).collect().unwrap();
        got.sort_by_key(|a| a.0);
        assert_eq!(got.len(), 4);
        // Keys 0..3 hold arithmetic progressions with means 48..51.
        assert_eq!(got[0].1, 48.0);
        assert_eq!(got[3].1, 51.0);
    }
}
