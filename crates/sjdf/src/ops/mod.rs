//! Wide (shuffle) operations over key-value datasets.
//!
//! These mirror the Spark operations ScrubJay's derivations are built on:
//! `group_by_key`, `reduce_by_key`, `cogroup`, `join`, `sort_by_key`, and
//! `repartition`. Each materializes its parents, hash- or range-partitions
//! the records into output buckets (the "shuffle"), and serves output
//! partitions from the materialized buckets. Shuffle volume is recorded for
//! the virtual-cluster cost model.

mod exchange;
mod extra;
mod join;
pub(crate) mod shuffle;
mod sort;

pub use join::CoGrouped;

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Deterministic 64-bit hash (fixed-key SipHash via `DefaultHasher::new`),
/// so partition placement is stable across runs and processes.
pub fn hash64<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Bucket index for a key under `parts` output partitions.
#[inline]
pub fn bucket_of<K: Hash + ?Sized>(key: &K, parts: usize) -> usize {
    (hash64(key) % parts as u64) as usize
}

/// Group pairs by key, keeping keys in first-occurrence order.
///
/// `HashMap::into_iter()` order is per-instance random (the std hasher is
/// seeded), so building shuffle output by draining a map makes the row
/// order differ every time a stage is (re)materialized — which breaks
/// byte-identical replay after a fault-triggered recompute. Grouping via
/// an index into an insertion-ordered vector keeps the output a pure
/// function of the input sequence.
pub(crate) fn group_in_order<K, V>(pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)>
where
    K: Hash + Eq + Clone,
{
    let mut index: HashMap<K, usize> = HashMap::with_capacity(pairs.len().min(64));
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in pairs {
        match index.get(&k) {
            Some(&i) => out[i].1.push(v),
            None => {
                index.insert(k.clone(), out.len());
                out.push((k, vec![v]));
            }
        }
    }
    out
}

/// Reduce pairs by key with `f`, keeping keys in first-occurrence order —
/// the combining analogue of [`group_in_order`], for the same
/// determinism reason.
pub(crate) struct OrderedReduce<K, V> {
    index: HashMap<K, usize>,
    // `Option` is a placeholder so merged values can be taken by value;
    // every slot is `Some` outside `push`.
    items: Vec<(K, Option<V>)>,
}

impl<K: Hash + Eq + Clone, V> OrderedReduce<K, V> {
    pub(crate) fn new() -> Self {
        OrderedReduce {
            index: HashMap::new(),
            items: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, k: K, v: V, f: impl Fn(V, V) -> V) {
        match self.index.get(&k) {
            Some(&i) => {
                let slot = &mut self.items[i].1;
                let prev = slot.take().expect("slot holds a value");
                *slot = Some(f(prev, v));
            }
            None => {
                self.index.insert(k.clone(), self.items.len());
                self.items.push((k, Some(v)));
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn into_pairs(self) -> Vec<(K, V)> {
        self.items
            .into_iter()
            .map(|(k, v)| (k, v.expect("slot holds a value")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash64(&"node17"), hash64(&"node17"));
        assert_eq!(hash64(&42u64), hash64(&42u64));
    }

    #[test]
    fn buckets_are_in_range() {
        for k in 0u64..1000 {
            assert!(bucket_of(&k, 7) < 7);
        }
    }

    #[test]
    fn group_in_order_is_first_occurrence_ordered() {
        let pairs = vec![(3, 'a'), (1, 'b'), (3, 'c'), (2, 'd'), (1, 'e')];
        let grouped = group_in_order(pairs);
        assert_eq!(
            grouped,
            vec![(3, vec!['a', 'c']), (1, vec!['b', 'e']), (2, vec!['d'])]
        );
    }

    #[test]
    fn ordered_reduce_combines_in_first_occurrence_order() {
        let mut r = OrderedReduce::new();
        for (k, v) in [("b", 1u64), ("a", 2), ("b", 3), ("a", 4)] {
            r.push(k, v, |x, y| x + y);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.into_pairs(), vec![("b", 4), ("a", 6)]);
    }

    #[test]
    fn buckets_spread_keys() {
        let mut counts = [0usize; 8];
        for k in 0u64..8000 {
            counts[bucket_of(&k, 8)] += 1;
        }
        // Each bucket should receive a reasonable share (no empty bucket).
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }
}
