//! Wide (shuffle) operations over key-value datasets.
//!
//! These mirror the Spark operations ScrubJay's derivations are built on:
//! `group_by_key`, `reduce_by_key`, `cogroup`, `join`, `sort_by_key`, and
//! `repartition`. Each materializes its parents, hash- or range-partitions
//! the records into output buckets (the "shuffle"), and serves output
//! partitions from the materialized buckets. Shuffle volume is recorded for
//! the virtual-cluster cost model.

mod extra;
mod join;
pub(crate) mod shuffle;
mod sort;

pub use join::CoGrouped;

use std::hash::{Hash, Hasher};

/// Deterministic 64-bit hash (fixed-key SipHash via `DefaultHasher::new`),
/// so partition placement is stable across runs and processes.
pub fn hash64<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Bucket index for a key under `parts` output partitions.
#[inline]
pub fn bucket_of<K: Hash + ?Sized>(key: &K, parts: usize) -> usize {
    (hash64(key) % parts as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash64(&"node17"), hash64(&"node17"));
        assert_eq!(hash64(&42u64), hash64(&42u64));
    }

    #[test]
    fn buckets_are_in_range() {
        for k in 0u64..1000 {
            assert!(bucket_of(&k, 7) < 7);
        }
    }

    #[test]
    fn buckets_spread_keys() {
        let mut counts = [0usize; 8];
        for k in 0u64..8000 {
            counts[bucket_of(&k, 8)] += 1;
        }
        // Each bucket should receive a reasonable share (no empty bucket).
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }
}
