//! Per-task bump allocation for kernel scratch space.
//!
//! The columnar derivation kernels (sjcore) build large amounts of
//! short-lived scratch per task: encoded group keys, sort index vectors,
//! per-destination row lists. Allocating those through the global
//! allocator once per row is exactly the churn the columnar refactor
//! removes from the data path, so the scratch goes through a [`Bump`]
//! arena instead: allocation is a pointer increment into a chunk, and the
//! whole arena is recycled with one `reset()` when the task finishes.
//!
//! Arenas are pooled per [`ExecCtx`](crate::ExecCtx): a task borrows one
//! with [`ExecCtx::arena`](crate::ExecCtx::arena), and the guard returns
//! it (reset, capacity kept) when dropped — so steady-state kernel
//! execution performs no chunk allocations at all.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

/// Minimum chunk size; grows geometrically for larger requests.
const MIN_CHUNK: usize = 64 * 1024;

/// A chunked bump allocator for byte scratch.
///
/// `Bump` hands out offsets into append-only byte chunks. It is
/// deliberately minimal: only byte slices are stored (kernels encode
/// keys and indices into bytes), and nothing is dropped — `reset()`
/// rewinds every chunk cursor without releasing capacity.
#[derive(Debug, Default)]
pub struct Bump {
    chunks: RefCell<Vec<Chunk>>,
}

#[derive(Debug)]
struct Chunk {
    buf: Vec<u8>,
}

/// A range handed out by [`Bump::alloc`]: chunk index plus byte range.
/// Resolved back to a slice with [`Bump::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpRange {
    chunk: u32,
    start: u32,
    len: u32,
}

impl BumpRange {
    /// Number of bytes in the range.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the range holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Bump {
    /// A fresh arena with no capacity (chunks allocate lazily).
    pub fn new() -> Self {
        Bump::default()
    }

    /// Copy `bytes` into the arena, returning a stable handle.
    pub fn alloc(&self, bytes: &[u8]) -> BumpRange {
        let mut chunks = self.chunks.borrow_mut();
        let need = bytes.len();
        let fits = chunks
            .last()
            .map(|c| c.buf.capacity() - c.buf.len() >= need)
            .unwrap_or(false);
        if !fits {
            let cap = chunks
                .last()
                .map(|c| (c.buf.capacity() * 2).max(MIN_CHUNK))
                .unwrap_or(MIN_CHUNK)
                .max(need);
            chunks.push(Chunk {
                buf: Vec::with_capacity(cap),
            });
        }
        let idx = chunks.len() - 1;
        let chunk = &mut chunks[idx];
        let start = chunk.buf.len();
        chunk.buf.extend_from_slice(bytes);
        BumpRange {
            chunk: idx as u32,
            start: start as u32,
            len: need as u32,
        }
    }

    /// Run `f` over the bytes behind a handle.
    pub fn with<R>(&self, range: BumpRange, f: impl FnOnce(&[u8]) -> R) -> R {
        let chunks = self.chunks.borrow();
        let chunk = &chunks[range.chunk as usize];
        f(&chunk.buf[range.start as usize..(range.start + range.len) as usize])
    }

    /// Compare the bytes behind two handles (for sort/group by encoded key).
    pub fn cmp(&self, a: BumpRange, b: BumpRange) -> std::cmp::Ordering {
        let chunks = self.chunks.borrow();
        let sa = &chunks[a.chunk as usize].buf[a.start as usize..(a.start + a.len) as usize];
        let sb = &chunks[b.chunk as usize].buf[b.start as usize..(b.start + b.len) as usize];
        sa.cmp(sb)
    }

    /// True if two handles point at equal byte strings.
    pub fn eq(&self, a: BumpRange, b: BumpRange) -> bool {
        a.len == b.len && self.cmp(a, b) == std::cmp::Ordering::Equal
    }

    /// Deterministic 64-bit hash of the bytes behind a handle.
    pub fn hash(&self, range: BumpRange) -> u64 {
        self.with(range, crate::ops::hash64)
    }

    /// Bytes currently allocated (not capacity).
    pub fn allocated(&self) -> usize {
        self.chunks.borrow().iter().map(|c| c.buf.len()).sum()
    }

    /// Rewind every chunk, keeping capacity for reuse.
    pub fn reset(&self) {
        for c in self.chunks.borrow_mut().iter_mut() {
            c.buf.clear();
        }
    }
}

/// A pool of arenas shared by all clones of one `ExecCtx`, so each task
/// reuses a warmed-up arena instead of growing a new one.
#[derive(Debug, Default)]
pub struct ArenaPool {
    free: Mutex<Vec<Bump>>,
}

impl ArenaPool {
    /// An empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(ArenaPool::default())
    }

    /// Borrow an arena (reset, capacity retained); creates one if the
    /// pool is empty. Returned to the pool when the guard drops.
    pub fn take(self: &Arc<Self>) -> ArenaGuard {
        let bump = self.free.lock().pop().unwrap_or_default();
        ArenaGuard {
            pool: Arc::clone(self),
            bump: Some(bump),
        }
    }
}

/// RAII handle to a pooled [`Bump`]; derefs to the arena and returns it
/// (reset) to the pool on drop.
#[derive(Debug)]
pub struct ArenaGuard {
    pool: Arc<ArenaPool>,
    bump: Option<Bump>,
}

impl std::ops::Deref for ArenaGuard {
    type Target = Bump;
    fn deref(&self) -> &Bump {
        self.bump.as_ref().expect("arena present until drop")
    }
}

impl Drop for ArenaGuard {
    fn drop(&mut self) {
        if let Some(bump) = self.bump.take() {
            bump.reset();
            self.pool.free.lock().push(bump);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let b = Bump::new();
        let r1 = b.alloc(b"hello");
        let r2 = b.alloc(b"world");
        b.with(r1, |s| assert_eq!(s, b"hello"));
        b.with(r2, |s| assert_eq!(s, b"world"));
        assert_eq!(r1.len(), 5);
        assert!(!r1.is_empty());
    }

    #[test]
    fn compare_and_hash_by_content() {
        let b = Bump::new();
        let a1 = b.alloc(b"abc");
        let a2 = b.alloc(b"abc");
        let z = b.alloc(b"zzz");
        assert!(b.eq(a1, a2));
        assert!(!b.eq(a1, z));
        assert_eq!(b.cmp(a1, z), std::cmp::Ordering::Less);
        assert_eq!(b.hash(a1), b.hash(a2));
    }

    #[test]
    fn reset_keeps_capacity() {
        let b = Bump::new();
        for _ in 0..100 {
            b.alloc(&[0u8; 1024]);
        }
        assert!(b.allocated() >= 100 * 1024);
        b.reset();
        assert_eq!(b.allocated(), 0);
        // Chunks remain, so new allocations do not grow the arena.
        let before = b.chunks.borrow().len();
        b.alloc(&[1u8; 1024]);
        assert_eq!(b.chunks.borrow().len(), before);
    }

    #[test]
    fn large_allocations_get_their_own_chunk() {
        let b = Bump::new();
        let big = vec![7u8; MIN_CHUNK * 3];
        let r = b.alloc(&big);
        b.with(r, |s| assert_eq!(s.len(), MIN_CHUNK * 3));
    }

    #[test]
    fn pool_recycles_arenas() {
        let pool = ArenaPool::new();
        {
            let a = pool.take();
            a.alloc(b"scratch");
        }
        // The recycled arena comes back reset.
        let a = pool.take();
        assert_eq!(a.allocated(), 0);
        drop(a);
        assert_eq!(pool.free.lock().len(), 1);
    }
}
