//! Streaming ingestion with incremental derivation maintenance.
//!
//! Batch ScrubJay answers a query by solving a derivation plan and
//! executing it over frozen datasets. This crate keeps the same plans
//! *standing*: appends arrive as [`AppendBatch`]es carrying per-source
//! event-time clocks, the time axis is partitioned into tumbling windows
//! ([`sjcore::window::TumblingWindows`]), and every registered standing
//! query re-evaluates **only the windows whose input slices received new
//! data**. Cached window evaluations are keyed on
//! `(dataset epoch, window id)` and accounted in the shared
//! [`StageCache`](sjdf::StageCache) via invalidation tags, so the byte
//! budget, hit/miss counters, and eviction policy of the batch engine
//! apply unchanged to streaming state.
//!
//! # Semantics
//!
//! * **Watermark** — the high-water mark of the minimum over all
//!   per-source clocks seen so far. Taking the running maximum makes
//!   the watermark monotone: a source that first reports *after* the
//!   watermark has advanced cannot drag it backwards, so windows the
//!   sweep has already passed as final stay final (the late joiner's
//!   too-old rows are rejected like any other late rows). A window
//!   `[a, b)` is *ripe* (eligible for first emission) once the
//!   watermark reaches `b`.
//! * **Allowed lateness** — rows with `t ≥ watermark − lateness` are
//!   accepted even when their window has already been emitted; the
//!   affected windows are invalidated and re-emitted with
//!   `re_emission = true`. Rows older than that are rejected at ingest
//!   and counted, never silently dropped.
//! * **Finality** — a window is *final* once
//!   `b ≤ watermark − lateness`: no acceptable row can land inside it
//!   anymore, so it is never re-emitted. Lateness therefore bounds
//!   re-emission.
//! * **Duplicates** — exact duplicate rows are dropped at ingest (keyed
//!   by the row's exact-match key encoding) and counted, which keeps the
//!   accepted prefix — the reference for the equivalence guarantee — a
//!   well-defined set.
//! * **Atomicity** — an append batch commits all-or-nothing: every row
//!   is validated (arity, time-column type) before any row is accepted,
//!   so a rejected batch leaves the prefix, the clocks, and every
//!   cached window exactly as they were.
//! * **Re-emission is driven by data, not by cache pressure** — each
//!   subscription tracks which emitted windows were *dirtied* by
//!   accepted rows. A cached evaluation evicted under byte-budget
//!   pressure alone is simply recomputed lazily if ever needed; it is
//!   never re-pushed to subscribers unless late data actually landed in
//!   its input slice.
//!
//! # The equivalence guarantee
//!
//! Every emitted window is byte-identical to solving the standing query
//! from scratch over the full accepted prefix at the emission's
//! watermark, filtering the result to the window and sorting canonically
//! (see [`StreamEngine::cold_window`]). Incremental evaluation feeds the
//! plan a horizon-widened slice `[a − h, b + h)` instead of the whole
//! prefix; the horizon covers the rate derivation's one-sample lookback
//! and the interpolation join's neighbor window, so the slice and the
//! prefix agree on every output row inside `[a, b)` as long as sources
//! sample at a bounded cadence. `tests/streaming_equivalence.rs` enforces
//! this byte-for-byte over five seeded disarray schedules.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sjcore::catalog::Catalog;
use sjcore::engine::{EngineConfig, Plan, Query, QueryEngine};
use sjcore::window::TumblingWindows;
use sjcore::{Result, Row, SjDataset, SjError};
use sjdf::{mint_owner_id, EvictableSlot, ExecCtx};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// One batch of appended rows from a single source, stamped with that
/// source's event-time clock ("my data is complete up to here").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppendBatch {
    /// Registered dataset the rows belong to.
    pub dataset: String,
    /// Source identity (one clock per source; the watermark is the
    /// minimum over sources).
    pub source: String,
    /// The source's event-time clock, microseconds.
    pub source_clock_us: i64,
    /// Appended rows, matching the dataset's schema.
    pub rows: Vec<Row>,
}

/// Streaming policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Tumbling window width (seconds).
    pub window_secs: f64,
    /// How far behind the watermark a row may arrive and still be
    /// accepted (seconds). Bounds re-emission.
    pub allowed_lateness_secs: f64,
    /// Horizon widening each window's input slice (seconds). Must cover
    /// the rate lookback (one sample cadence) plus the interpolation
    /// window.
    pub horizon_secs: f64,
    /// Partitions used when materializing eval snapshots. Kept at 1 so
    /// slice and prefix evaluations are partitioned identically.
    pub eval_parts: usize,
    /// Event-time idle cut for watermark purposes (seconds; `0` =
    /// disabled). A source whose clock lags the *leading* source clock
    /// by more than this stops pinning the watermark: its clock is
    /// parked out of the min until it catches back up. Without it, one
    /// source that reports a single early row and then goes silent
    /// freezes window finality for every subscriber forever. A parked
    /// source that resumes re-enters the min naturally; any rows it
    /// sends from before `watermark − lateness` are late-dropped like
    /// anyone else's.
    pub idle_source_timeout_secs: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window_secs: 60.0,
            allowed_lateness_secs: 120.0,
            horizon_secs: 300.0,
            eval_parts: 1,
            idle_source_timeout_secs: 0.0,
        }
    }
}

/// One window's emission for one standing query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowEmission {
    /// The subscription this emission belongs to.
    pub query_id: String,
    /// Tumbling window id (`floor(t / width)`).
    pub window_id: i64,
    /// Window start, microseconds (inclusive).
    pub start_us: i64,
    /// Window end, microseconds (exclusive).
    pub end_us: i64,
    /// Watermark at emission time, microseconds.
    pub watermark_us: i64,
    /// True when this window was emitted before and is re-emitted
    /// because late data landed in its input slice.
    pub re_emission: bool,
    /// True when evaluation failed (e.g. a task exhausted its retry
    /// budget under fault injection); `rows` is empty and `error` set.
    pub degraded: bool,
    /// Failure detail for degraded emissions.
    pub error: Option<String>,
    /// Result column names.
    pub columns: Vec<String>,
    /// Rendered result rows, canonically sorted.
    pub rows: Vec<Vec<String>>,
}

/// A subscription torn down during an append sweep (plan solve failed
/// mid-stream). The subscription is already unregistered when this is
/// returned; sibling subscriptions and the connection are unaffected.
#[derive(Debug, Clone)]
pub struct SubscriptionFailure {
    /// The torn-down subscription.
    pub query_id: String,
    /// True when the failure was [`SjError::SearchTruncated`].
    pub truncated: bool,
    /// Failure detail.
    pub error: String,
}

/// Everything one [`StreamEngine::append`] produced.
#[derive(Debug, Clone, Default)]
pub struct AppendOutcome {
    /// Rows accepted into the prefix.
    pub accepted: usize,
    /// Exact duplicates dropped at ingest.
    pub duplicates_dropped: usize,
    /// Rows older than `watermark − lateness` rejected at ingest.
    pub late_dropped: usize,
    /// Watermark after this append, microseconds (`i64::MIN` before any
    /// source has reported).
    pub watermark_us: i64,
    /// Cached window evaluations invalidated by this append.
    pub invalidated: usize,
    /// Window emissions triggered by this append, in (query, window)
    /// order.
    pub emissions: Vec<WindowEmission>,
    /// Subscriptions torn down during this append's sweep.
    pub failures: Vec<SubscriptionFailure>,
}

/// Cumulative engine counters (mirrored into service stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Append batches processed.
    pub appends: u64,
    /// Rows accepted.
    pub rows_accepted: u64,
    /// Rows rejected as too late.
    pub rows_late_dropped: u64,
    /// Duplicate rows dropped.
    pub rows_duplicate_dropped: u64,
    /// First-time window emissions.
    pub window_emissions: u64,
    /// Re-emissions after late data.
    pub window_re_emissions: u64,
    /// Window evaluations actually executed (cache misses).
    pub incremental_recomputes: u64,
    /// Emissions that degraded instead of producing rows.
    pub degraded_windows: u64,
}

/// Accepted rows and ingest bookkeeping for one appendable dataset.
struct StreamState {
    time_col: Option<usize>,
    rows: Vec<Row>,
    seen: HashSet<Vec<sjcore::value::KeyAtom>>,
    epoch: u64,
    min_t: i64,
    max_t: i64,
}

/// The per-subscription emission cache: window id → rendered emission.
/// Entries are accounted in the shared [`StageCache`](sjdf::StageCache);
/// evicting one is always safe (the window is recomputed from the prefix
/// on its next sweep).
#[derive(Default)]
struct EmissionSlots {
    map: Mutex<HashMap<usize, CachedWindow>>,
}

struct CachedWindow {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl EvictableSlot for EmissionSlots {
    fn evict(&self, part: usize) {
        self.map.lock().remove(&part);
    }
}

struct SubState {
    query_id: String,
    tenant: String,
    query: Query,
    plan: Option<Plan>,
    loads: Vec<String>,
    owner_id: u64,
    slots: Arc<EmissionSlots>,
    slots_erased: Arc<dyn EvictableSlot>,
    emitted_once: BTreeSet<i64>,
    /// Already-emitted windows that accepted rows have dirtied since
    /// their last successful emission — exactly the set the sweep may
    /// re-emit. Distinguishes "stale because data changed" from "merely
    /// evicted under cache-budget pressure", which must not re-emit.
    /// A degraded emission leaves its window here so later sweeps retry.
    dirty: BTreeSet<i64>,
    /// Windows below this id are final *and already swept*; the sweep
    /// resumes here.
    scan_from: Option<i64>,
}

/// The streaming maintenance engine: accepted prefixes, per-source
/// clocks, the subscription registry, and the incremental sweep.
pub struct StreamEngine {
    ctx: ExecCtx,
    base: Catalog,
    config: StreamConfig,
    engine_config: EngineConfig,
    windows: TumblingWindows,
    streams: BTreeMap<String, StreamState>,
    clocks: BTreeMap<String, i64>,
    /// Monotone watermark: the running maximum of `min(clocks)`.
    /// Finality is judged against this, so a source joining late with
    /// an old clock can never reopen windows already swept as final.
    high_watermark: i64,
    subs: BTreeMap<String, SubState>,
    counters: StreamCounters,
}

/// Stage-cache invalidation tag for one (subscription, window) cell.
fn window_tag(owner_id: u64, wid: i64) -> u64 {
    owner_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(wid as u64)
}

impl StreamEngine {
    /// Wrap a catalog for streaming. Appends may target any dataset
    /// registered in `catalog`; its current contents become the start of
    /// that dataset's accepted prefix.
    pub fn new(
        ctx: &ExecCtx,
        catalog: Catalog,
        config: StreamConfig,
        engine_config: EngineConfig,
    ) -> Self {
        let windows = TumblingWindows::new(config.window_secs, config.horizon_secs);
        StreamEngine {
            ctx: ctx.clone(),
            base: catalog,
            config,
            engine_config,
            windows,
            streams: BTreeMap::new(),
            clocks: BTreeMap::new(),
            high_watermark: i64::MIN,
            subs: BTreeMap::new(),
            counters: StreamCounters::default(),
        }
    }

    /// The wrapped catalog (schemas, rules, dictionary).
    pub fn catalog(&self) -> &Catalog {
        &self.base
    }

    /// The window partitioner in effect.
    pub fn windows(&self) -> TumblingWindows {
        self.windows
    }

    /// Cumulative counters.
    pub fn counters(&self) -> StreamCounters {
        self.counters
    }

    /// Current watermark (microseconds), `i64::MIN` before any source
    /// has reported a clock. Monotone: the running maximum of the
    /// per-source clock minimum, so it never regresses when a new
    /// source joins with an old clock.
    pub fn watermark_us(&self) -> i64 {
        self.high_watermark
    }

    /// The ingest epoch of a dataset's accepted prefix (0 before any
    /// append touched it).
    pub fn epoch(&self, dataset: &str) -> u64 {
        self.streams.get(dataset).map(|s| s.epoch).unwrap_or(0)
    }

    /// The accepted prefix of a dataset, if it has been appended to.
    pub fn accepted_rows(&self, dataset: &str) -> Option<&[Row]> {
        self.streams.get(dataset).map(|s| s.rows.as_slice())
    }

    /// The cached (already emitted, not invalidated) evaluation of one
    /// window, if still resident under the stage-cache budget.
    pub fn cached_emission(
        &self,
        query_id: &str,
        wid: i64,
    ) -> Option<(Vec<String>, Vec<Vec<String>>)> {
        let sub = self.subs.get(query_id)?;
        let map = sub.slots.map.lock();
        map.get(&(wid.max(0) as usize))
            .map(|c| (c.columns.clone(), c.rows.clone()))
    }

    /// Live subscriptions as (query id, tenant) pairs.
    pub fn subscriptions(&self) -> Vec<(&str, &str)> {
        self.subs
            .values()
            .map(|s| (s.query_id.as_str(), s.tenant.as_str()))
            .collect()
    }

    /// Live subscription count for one tenant (quota enforcement).
    pub fn subscription_count(&self, tenant: &str) -> usize {
        self.subs.values().filter(|s| s.tenant == tenant).count()
    }

    /// Register a standing query. The query is canonicalized against the
    /// dictionary immediately; the derivation plan is solved lazily at
    /// the first sweep, so a plan-search failure surfaces as a
    /// [`SubscriptionFailure`] on a later [`append`](Self::append) and
    /// tears down only this subscription.
    pub fn subscribe(&mut self, query_id: &str, tenant: &str, query: &Query) -> Result<()> {
        if self.subs.contains_key(query_id) {
            return Err(SjError::SemanticsInvalid(format!(
                "subscription `{query_id}` already exists"
            )));
        }
        let query = query.canonicalize(self.base.dict())?.normalized();
        let slots = Arc::new(EmissionSlots::default());
        let slots_erased: Arc<dyn EvictableSlot> = Arc::clone(&slots) as Arc<dyn EvictableSlot>;
        self.subs.insert(
            query_id.to_string(),
            SubState {
                query_id: query_id.to_string(),
                tenant: tenant.to_string(),
                query,
                plan: None,
                loads: Vec::new(),
                owner_id: mint_owner_id(),
                slots,
                slots_erased,
                emitted_once: BTreeSet::new(),
                dirty: BTreeSet::new(),
                scan_from: None,
            },
        );
        Ok(())
    }

    /// Tear down a subscription, releasing its cached windows. Returns
    /// whether it existed.
    pub fn unsubscribe(&mut self, query_id: &str) -> bool {
        match self.subs.remove(query_id) {
            Some(sub) => {
                self.ctx.stage_cache().release_owner(sub.owner_id);
                true
            }
            None => false,
        }
    }

    /// Ingest one append batch: advance the source clock, accept rows
    /// under the lateness/duplicate policy, invalidate every cached
    /// window whose input slice the new rows touch, and sweep all
    /// standing queries for windows to (re-)emit.
    pub fn append(&mut self, batch: &AppendBatch) -> Result<AppendOutcome> {
        self.append_opts(batch, false)
    }

    /// [`append`](Self::append) for bulk backfill: the batch is
    /// ingested — clocks advanced, duplicates and late rows dropped,
    /// touched windows invalidated and marked dirty — but the window
    /// sweep is skipped, so nothing is emitted yet. The next non-bulk
    /// append (an empty-rows batch works as an explicit flush) runs one
    /// sweep covering everything ingested since; each window's final
    /// frame is byte-identical to what row-at-a-time appends would have
    /// converged on.
    pub fn append_bulk(&mut self, batch: &AppendBatch) -> Result<AppendOutcome> {
        self.append_opts(batch, true)
    }

    fn append_opts(&mut self, batch: &AppendBatch, bulk: bool) -> Result<AppendOutcome> {
        let tracer = self.ctx.tracer();
        let mut span = tracer.span("append");
        self.counters.appends += 1;
        let schema = self.base.dataset(&batch.dataset)?.schema().clone();
        if !self.streams.contains_key(&batch.dataset) {
            // First append: seed the prefix from the registered contents.
            let rows = self.base.dataset(&batch.dataset)?.collect()?;
            let time_col = schema
                .domain_field_on("time")
                .map(|f| schema.index_of(&f.name))
                .transpose()?;
            let mut seen = HashSet::new();
            let (mut min_t, mut max_t) = (i64::MAX, i64::MIN);
            for r in &rows {
                seen.insert(r.values().iter().map(|v| v.key()).collect::<Vec<_>>());
                if let Some(tc) = time_col {
                    if let Some(t) = r.get(tc).as_time() {
                        min_t = min_t.min(t.as_micros());
                        max_t = max_t.max(t.as_micros());
                    }
                }
            }
            self.streams.insert(
                batch.dataset.clone(),
                StreamState {
                    time_col,
                    rows,
                    seen,
                    epoch: 0,
                    min_t,
                    max_t,
                },
            );
        }

        // Validate the whole batch before mutating *anything* — clocks
        // included. A bad row must reject the batch atomically: were a
        // prefix already committed, the client's BAD_REQUEST would lie
        // and cached window emissions would silently diverge from the
        // accepted prefix they are defined against.
        let time_col = self.streams[&batch.dataset].time_col;
        let mut times: Vec<Option<i64>> = Vec::with_capacity(batch.rows.len());
        for row in &batch.rows {
            if row.values().len() != schema.len() {
                return Err(SjError::SemanticsInvalid(format!(
                    "append row arity {} != schema arity {} for `{}`",
                    row.values().len(),
                    schema.len(),
                    batch.dataset
                )));
            }
            times.push(match time_col {
                Some(tc) => match row.get(tc).as_time() {
                    Some(t) => Some(t.as_micros()),
                    None => {
                        return Err(SjError::SemanticsInvalid(format!(
                            "append row has non-time value in time column of `{}`",
                            batch.dataset
                        )))
                    }
                },
                None => None,
            });
        }

        // Advance this source's clock (never backwards) and raise the
        // monotone watermark before judging lateness, so a batch is
        // measured against the clock it itself carries. The watermark
        // only ever goes up: a brand-new source whose first clock sits
        // below the current watermark joins at the established cut
        // instead of regressing finality for everyone.
        let clock = self.clocks.entry(batch.source.clone()).or_insert(i64::MIN);
        *clock = (*clock).max(batch.source_clock_us);
        self.high_watermark = self.high_watermark.max(self.watermark_floor());
        let watermark = self.high_watermark;
        let lateness_us = (self.config.allowed_lateness_secs * 1e6) as i64;
        let late_cut = watermark.saturating_sub(lateness_us);

        let mut out = AppendOutcome {
            watermark_us: watermark,
            ..AppendOutcome::default()
        };
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        {
            let st = self.streams.get_mut(&batch.dataset).expect("seeded above");
            for (row, &t) in batch.rows.iter().zip(&times) {
                if let Some(t) = t {
                    if t < 0 || t < late_cut {
                        out.late_dropped += 1;
                        continue;
                    }
                }
                let key: Vec<_> = row.values().iter().map(|v| v.key()).collect();
                if !st.seen.insert(key) {
                    out.duplicates_dropped += 1;
                    continue;
                }
                if let Some(t) = t {
                    lo = lo.min(t);
                    hi = hi.max(t);
                    st.min_t = st.min_t.min(t);
                    st.max_t = st.max_t.max(t);
                }
                st.rows.push(row.clone());
                out.accepted += 1;
            }
            if out.accepted > 0 {
                st.epoch += 1;
            }
        }
        self.counters.rows_accepted += out.accepted as u64;
        self.counters.rows_late_dropped += out.late_dropped as u64;
        self.counters.rows_duplicate_dropped += out.duplicates_dropped as u64;
        span.set_detail(format!(
            "{} +{} (late {}, dup {})",
            batch.dataset, out.accepted, out.late_dropped, out.duplicates_dropped
        ));

        // Invalidation rule: every *emitted* window whose input slice
        // [a−h, b+h) intersects the appended event-time range is stale —
        // whether or not its cached evaluation is still resident (budget
        // pressure may have evicted it; the dirty mark, not cache
        // residency, is what schedules re-emission). Datasets without a
        // time column dirty everything emitted. Final windows are left
        // clean: no acceptable row can land inside them (rows below
        // `late_cut` were rejected above), only in their horizon, and
        // finality means they are never re-emitted regardless.
        if out.accepted > 0 {
            let final_before = self.windows.window_of(late_cut);
            let sub_ids: Vec<String> = self.subs.keys().cloned().collect();
            for id in &sub_ids {
                let sub = &self.subs[id];
                if sub.plan.is_some() && !sub.loads.iter().any(|l| l == &batch.dataset) {
                    continue;
                }
                let stale: Vec<i64> = if lo > hi {
                    sub.emitted_once.iter().copied().collect()
                } else {
                    let range = self.windows.touched_by(lo, hi);
                    sub.emitted_once
                        .iter()
                        .copied()
                        .filter(|w| range.contains(w))
                        .collect()
                };
                let owner = sub.owner_id;
                let sub = self.subs.get_mut(id).unwrap();
                for wid in stale {
                    out.invalidated += self
                        .ctx
                        .stage_cache()
                        .invalidate_tag(window_tag(owner, wid));
                    if wid >= final_before {
                        sub.dirty.insert(wid);
                    }
                }
            }
        }

        // Sweep every subscription for ripe windows — unless this is a
        // bulk-backfill batch, whose whole point is to defer the sweep:
        // the dirty marks and `scan_from` cursors above carry everything
        // the eventual non-bulk sweep needs.
        if !bulk {
            let (root, parent) = (span.root(), span.id());
            let sub_ids: Vec<String> = self.subs.keys().cloned().collect();
            for id in sub_ids {
                if let Err(failure) =
                    self.sweep_subscription(&id, watermark, (root, parent), &mut out)
                {
                    self.unsubscribe(&id);
                    out.failures.push(failure);
                }
            }
        }
        Ok(out)
    }

    /// The watermark candidate: the minimum over per-source clocks,
    /// skipping sources parked by `idle_source_timeout_secs` (clocks
    /// lagging the leading clock by more than the timeout). The leader
    /// itself is never parked, so the floor is always defined once any
    /// source has reported.
    fn watermark_floor(&self) -> i64 {
        let idle_us = (self.config.idle_source_timeout_secs * 1e6) as i64;
        if idle_us > 0 {
            let lead = self.clocks.values().copied().max().unwrap_or(i64::MIN);
            self.clocks
                .values()
                .copied()
                .filter(|&c| c >= lead.saturating_sub(idle_us))
                .min()
                .unwrap_or(i64::MIN)
        } else {
            self.clocks.values().copied().min().unwrap_or(i64::MIN)
        }
    }

    /// Evaluate every ripe, non-final window of one subscription that is
    /// not already cached, emitting (or re-emitting) as needed.
    fn sweep_subscription(
        &mut self,
        query_id: &str,
        watermark: i64,
        trace_at: (sjtrace_ids::SpanId, sjtrace_ids::SpanId),
        out: &mut AppendOutcome,
    ) -> std::result::Result<(), SubscriptionFailure> {
        if watermark == i64::MIN {
            return Ok(());
        }
        // Solve the standing plan lazily on the first sweep.
        if self.subs[query_id].plan.is_none() {
            let query = self.subs[query_id].query.clone();
            let engine = QueryEngine::with_config(&self.base, self.engine_config.clone());
            match engine.solve(&query) {
                Ok(plan) => {
                    let sub = self.subs.get_mut(query_id).unwrap();
                    sub.loads = plan.loads().iter().map(|s| s.to_string()).collect();
                    sub.plan = Some(plan);
                }
                Err(e) => {
                    return Err(SubscriptionFailure {
                        query_id: query_id.to_string(),
                        truncated: matches!(e, SjError::SearchTruncated { .. }),
                        error: e.to_string(),
                    })
                }
            }
        }

        // Earliest event time across the stream datasets this plan loads.
        let first_t = self.subs[query_id]
            .loads
            .iter()
            .filter_map(|l| self.streams.get(l))
            .map(|s| s.min_t)
            .min()
            .unwrap_or(i64::MAX);
        if first_t == i64::MAX || first_t > watermark {
            return Ok(());
        }
        let lateness_us = (self.config.allowed_lateness_secs * 1e6) as i64;
        // Ripe: end ≤ watermark. Final: end ≤ watermark − lateness.
        let ripe_end = self.windows.window_of(watermark) - 1;
        let final_before = self
            .windows
            .window_of(watermark.saturating_sub(lateness_us));
        let scan_from = self.subs[query_id]
            .scan_from
            .unwrap_or_else(|| self.windows.window_of(first_t.max(0)));

        let mut next_scan_from = scan_from;
        for wid in scan_from..=ripe_end {
            let is_final = wid < final_before;
            let emitted = self.subs[query_id].emitted_once.contains(&wid);
            if is_final && emitted {
                if next_scan_from == wid {
                    next_scan_from = wid + 1;
                }
                self.subs.get_mut(query_id).unwrap().dirty.remove(&wid);
                continue;
            }
            let part = wid.max(0) as usize;
            if self.subs[query_id].slots.map.lock().contains_key(&part) {
                // Up to date: the cached evaluation was not invalidated.
                self.ctx
                    .stage_cache()
                    .record_hit(self.subs[query_id].owner_id, part);
                continue;
            }
            if emitted && !self.subs[query_id].dirty.contains(&wid) {
                // The cached evaluation was evicted under byte-budget
                // pressure, but no late data landed in this window's
                // input slice since its last successful emission: what
                // subscribers hold is still exact, so recomputing —
                // let alone re-pushing a spurious re_emission frame —
                // would only burn work under cache pressure.
                continue;
            }
            self.counters.incremental_recomputes += 1;
            let tracer = self.ctx.tracer();
            let mut eval_span = tracer.child_span("incremental_recompute", trace_at.1, trace_at.0);
            eval_span.set_detail(format!("{query_id} w{wid}"));
            let (start_us, end_us) = self.windows.bounds_us(wid);
            let mut frame = WindowEmission {
                query_id: query_id.to_string(),
                window_id: wid,
                start_us,
                end_us,
                watermark_us: watermark,
                re_emission: emitted,
                degraded: false,
                error: None,
                columns: Vec::new(),
                rows: Vec::new(),
            };
            match self.eval_window(query_id, wid, true) {
                Ok((columns, rows)) => {
                    let bytes = emission_bytes(&columns, &rows);
                    let sub = self.subs.get_mut(query_id).unwrap();
                    sub.dirty.remove(&wid);
                    sub.slots.map.lock().insert(
                        part,
                        CachedWindow {
                            columns: columns.clone(),
                            rows: rows.clone(),
                        },
                    );
                    self.ctx.stage_cache().insert_tagged(
                        sub.owner_id,
                        part,
                        bytes,
                        &sub.slots_erased,
                        Some(window_tag(sub.owner_id, wid)),
                    );
                    frame.columns = columns;
                    frame.rows = rows;
                }
                Err(e) => {
                    eval_span.fail();
                    frame.degraded = true;
                    frame.error = Some(e.to_string());
                    self.counters.degraded_windows += 1;
                    // Keep (or mark) the window dirty so the next sweep
                    // retries instead of pinning the degraded frame as
                    // this window's last word.
                    self.subs.get_mut(query_id).unwrap().dirty.insert(wid);
                }
            }
            drop(eval_span);
            tracer.instant(
                "window_emit",
                format!(
                    "{query_id} w{wid} rows={} re={} degraded={}",
                    frame.rows.len(),
                    frame.re_emission,
                    frame.degraded
                ),
            );
            if frame.re_emission {
                self.counters.window_re_emissions += 1;
            } else {
                self.counters.window_emissions += 1;
            }
            self.subs
                .get_mut(query_id)
                .unwrap()
                .emitted_once
                .insert(wid);
            out.emissions.push(frame);
        }
        self.subs.get_mut(query_id).unwrap().scan_from = Some(next_scan_from);
        Ok(())
    }

    /// Reference evaluation: solve the subscription's window over the
    /// **full accepted prefix** instead of the horizon slice. Emissions
    /// must byte-equal this at their watermark — the headline guarantee,
    /// enforced by `tests/streaming_equivalence.rs`.
    pub fn cold_window(&self, query_id: &str, wid: i64) -> Result<(Vec<String>, Vec<Vec<String>>)> {
        self.eval_window(query_id, wid, false)
    }

    /// Execute the standing plan over either the horizon slice
    /// (`slice = true`) or the full prefix, filter the result to the
    /// window, and render canonically.
    fn eval_window(
        &self,
        query_id: &str,
        wid: i64,
        slice: bool,
    ) -> Result<(Vec<String>, Vec<Vec<String>>)> {
        let sub = self
            .subs
            .get(query_id)
            .ok_or_else(|| SjError::UnknownKeyword(format!("subscription `{query_id}`")))?;
        let plan = sub
            .plan
            .as_ref()
            .ok_or_else(|| SjError::SemanticsInvalid("plan not yet solved".into()))?;
        let (slice_lo, slice_hi) = if slice {
            self.windows.slice_us(wid)
        } else {
            (i64::MIN, i64::MAX)
        };
        // Evaluation catalog: same dictionary and rules, with every
        // stream dataset the plan loads replaced by an epoch-tagged
        // snapshot of its (sliced) accepted prefix.
        let mut cat = self.base.clone();
        for name in &sub.loads {
            let Some(st) = self.streams.get(name) else {
                continue;
            };
            let rows: Vec<Row> = match st.time_col {
                Some(tc) => st
                    .rows
                    .iter()
                    .filter(|r| {
                        r.get(tc)
                            .as_time()
                            .map(|t| (slice_lo..slice_hi).contains(&t.as_micros()))
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect(),
                None => st.rows.clone(),
            };
            let schema = self.base.dataset(name)?.schema().clone();
            let snapshot = SjDataset::from_rows(
                &self.ctx,
                rows,
                schema,
                name.as_str(),
                self.config.eval_parts.max(1),
            )
            .with_epoch(st.epoch);
            cat.replace_dataset(name, snapshot)?;
        }
        let result = plan.execute(&cat, None)?;
        let schema = result.schema().clone();
        let rows = result.collect()?;
        let (start_us, end_us) = self.windows.bounds_us(wid);
        let time_idx = schema
            .domain_field_on("time")
            .map(|f| schema.index_of(&f.name))
            .transpose()?;
        let ncols = schema.len();
        let columns: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
        let mut rendered: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| match time_idx {
                Some(tc) => r
                    .get(tc)
                    .as_time()
                    .map(|t| (start_us..end_us).contains(&t.as_micros()))
                    .unwrap_or(false),
                None => true,
            })
            .map(|row| (0..ncols).map(|i| row.get(i).to_string()).collect())
            .collect();
        rendered.sort();
        Ok((columns, rendered))
    }
}

/// Accounted size of a cached emission.
fn emission_bytes(columns: &[String], rows: &[Vec<String>]) -> usize {
    let cells: usize = rows
        .iter()
        .map(|r| r.iter().map(|c| c.len() + 24).sum::<usize>())
        .sum();
    cells + columns.iter().map(|c| c.len() + 24).sum::<usize>() + 64
}

/// Local alias so the sweep signature stays readable without adding a
/// direct sjtrace dependency (the ids are re-exported through sjdf's
/// tracer).
mod sjtrace_ids {
    pub type SpanId = u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_tags_are_distinct_per_subscription_and_window() {
        let a = window_tag(1, 5);
        let b = window_tag(2, 5);
        let c = window_tag(1, 6);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
