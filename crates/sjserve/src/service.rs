//! The query service: catalog session, worker pool, two-level cache, and
//! request execution.
//!
//! A [`QueryService`] owns one loaded [`Catalog`] for its whole lifetime
//! (the session/catalog manager), shares it read-only with every worker,
//! and answers [`Request`]s:
//!
//! - `query` / `explain` pass through admission control
//!   ([`crate::scheduler`]) and execute on the bounded worker pool;
//! - `stats` / `health` are answered inline — monitoring must keep
//!   working when the queue is saturated, which is exactly when you need
//!   it.
//!
//! Execution consults the two cache levels in order: the plan cache
//! (memoized derivation search, keyed by normalized query + engine
//! knobs) and the result cache (materialized rows, keyed by plan
//! fingerprint). Each response reports which levels hit, its end-to-end
//! latency, and the dataflow metrics attributable to its evaluation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sjcore::cache::ResultCache;
use sjcore::catalog::Catalog;
use sjcore::engine::{EngineConfig, Query, QueryEngine, QueryValue};
use sjcore::SjError;
use sjdf::ExecCtx;

use crate::cache::{PlanCacheLayer, PlanKey};
use crate::metrics::{CacheCounters, ServiceMetrics, StatsReport};
use crate::protocol::{
    codes, ErrorBody, HealthReport, PlanInfo, QueryResult, Request, Response, Verb,
};
use crate::scheduler::{AdmissionError, Job, ResponseSlot, Scheduler, SchedulerConfig};

/// Service-wide tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission and worker-pool sizing.
    pub scheduler: SchedulerConfig,
    /// Byte budget for the materialized-result cache.
    pub result_cache_bytes: usize,
    /// Byte budget for the dataflow stage cache (persisted partitions and
    /// auto-persisted shuffle outputs in the shared [`ExecCtx`]); applied
    /// to the context at service construction. `u64::MAX` = unlimited.
    pub stage_cache_bytes: u64,
    /// Rows returned per query when the request has no `limit`.
    pub default_limit: usize,
    /// Engine defaults; per-request `window_secs` / `step_secs` override
    /// the corresponding knobs.
    pub engine: EngineConfig,
    /// Task retry policy installed on the execution context at service
    /// construction (shared by all of its clones, so it also governs the
    /// catalog's already-wrapped datasets). `None` leaves the context's
    /// current policy untouched.
    pub retry: Option<sjdf::RetryPolicy>,
    /// Deterministic fault plan installed on the execution context at
    /// service construction — the chaos-testing hook behind the
    /// `--chaos-seed` flag. `None` leaves the context untouched.
    pub faults: Option<sjdf::FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            scheduler: SchedulerConfig::default(),
            result_cache_bytes: 64 << 20,
            stage_cache_bytes: 256 << 20,
            default_limit: 1000,
            engine: EngineConfig::default(),
            retry: None,
            faults: None,
        }
    }
}

struct ServiceInner {
    catalog: Catalog,
    ctx: ExecCtx,
    config: ServiceConfig,
    plan_cache: PlanCacheLayer,
    result_cache: ResultCache,
    metrics: ServiceMetrics,
    scheduler: Scheduler,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running ScrubJay query service. Cheap to clone; all clones share
/// one catalog, scheduler, and cache.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl QueryService {
    /// Build a service over an already-loaded catalog and start its
    /// worker pool. `ctx` must be the context the catalog's datasets
    /// were wrapped with (its metrics sink is where evaluations report).
    pub fn new(ctx: ExecCtx, catalog: Catalog, config: ServiceConfig) -> Self {
        let scheduler = Scheduler::new(config.scheduler.clone());
        ctx.set_cache_budget(config.stage_cache_bytes);
        if let Some(retry) = config.retry.clone() {
            ctx.set_retry(retry);
        }
        if let Some(faults) = config.faults.clone() {
            ctx.set_faults(Some(faults));
        }
        let inner = Arc::new(ServiceInner {
            catalog,
            ctx,
            config: config.clone(),
            plan_cache: PlanCacheLayer::new(),
            result_cache: ResultCache::new(config.result_cache_bytes),
            metrics: ServiceMetrics::new(),
            scheduler,
            workers: Mutex::new(Vec::new()),
        });
        let service = QueryService { inner };
        service.start_workers();
        service
    }

    fn start_workers(&self) {
        let mut workers = self.inner.workers.lock();
        for i in 0..self.inner.config.scheduler.workers.max(1) {
            let inner = Arc::clone(&self.inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sjserve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread"),
            );
        }
    }

    /// Handle one request end to end, blocking until the response is
    /// ready or the request's deadline passes. This is the entry point
    /// used both by the TCP front end and by in-process embedders.
    pub fn handle(&self, request: Request) -> Response {
        let inner = &self.inner;
        inner.metrics.request_started();
        let started = Instant::now();
        let response = match request.verb {
            // Monitoring verbs never queue: they must answer while the
            // service is saturated.
            Verb::Stats => {
                let mut r = Response::ok(&request.id);
                r.stats = Some(self.stats_report());
                r
            }
            Verb::Health => {
                let mut r = Response::ok(&request.id);
                r.health = Some(HealthReport {
                    status: "ok".into(),
                    datasets: inner
                        .catalog
                        .dataset_names()
                        .into_iter()
                        .map(String::from)
                        .collect(),
                    uptime_ms: inner.metrics.uptime().as_millis() as u64,
                });
                r
            }
            Verb::Shutdown => {
                // The front end decides what shutdown means; the service
                // just acknowledges and stops its own workers.
                Response::ok(&request.id)
            }
            Verb::Query | Verb::Explain => self.enqueue_and_wait(request, started),
        };
        inner
            .metrics
            .request_finished(response.is_ok(), started.elapsed());
        response
    }

    fn enqueue_and_wait(&self, request: Request, started: Instant) -> Response {
        let inner = &self.inner;
        let id = request.id.clone();
        let tenant = request.tenant.clone();
        let timeout = request
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(inner.config.scheduler.default_timeout);
        let deadline = started + timeout;
        let slot = ResponseSlot::new();
        let job = Job {
            request,
            tenant: tenant.clone(),
            enqueued: started,
            deadline,
            slot: Arc::clone(&slot),
        };
        match inner.scheduler.submit(job) {
            Ok(depth) => {
                inner.metrics.admitted(&tenant);
                inner.metrics.queue_depth_changed(depth);
            }
            Err(AdmissionError::QueueFull { depth, capacity }) => {
                inner.metrics.rejected_full(&tenant);
                return Response::fail(
                    &id,
                    ErrorBody::new(
                        codes::QUEUE_FULL,
                        format!("admission queue at capacity ({depth}/{capacity}); retry later"),
                    ),
                );
            }
            Err(AdmissionError::ShuttingDown) => {
                return Response::fail(
                    &id,
                    ErrorBody::new(codes::SHUTDOWN, "service is shutting down"),
                );
            }
        }
        match slot.wait_until(deadline) {
            Some(response) => {
                inner.metrics.completed(&tenant);
                response
            }
            None => {
                inner.metrics.timed_out();
                inner.metrics.completed(&tenant);
                Response::fail(
                    &id,
                    ErrorBody::new(
                        codes::TIMEOUT,
                        format!("deadline of {}ms elapsed", timeout.as_millis()),
                    ),
                )
            }
        }
    }

    /// Current service metrics, including both cache levels.
    pub fn stats_report(&self) -> StatsReport {
        let inner = &self.inner;
        let plan = inner.plan_cache.stats();
        let result = inner.result_cache.stats();
        let stage = inner.ctx.stage_cache().stats();
        inner.metrics.queue_depth_changed(inner.scheduler.depth());
        inner.metrics.snapshot(CacheCounters {
            plan_entries: plan.entries,
            plan_hits: plan.hits,
            plan_misses: plan.misses,
            result_entries: inner.result_cache.len() as u64,
            result_bytes: inner.result_cache.bytes() as u64,
            result_hits: result.hits,
            result_misses: result.misses,
            result_evictions: result.evictions,
            stage_entries: stage.entries,
            stage_bytes: stage.bytes,
            stage_hits: stage.hits,
            stage_misses: stage.misses,
            stage_evictions: stage.evictions,
        })
    }

    /// Dataset names served by this session's catalog.
    pub fn dataset_names(&self) -> Vec<String> {
        self.inner
            .catalog
            .dataset_names()
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// Stop the worker pool, answering still-queued jobs with a shutdown
    /// error, and return the final metrics snapshot.
    pub fn shutdown(&self) -> StatsReport {
        for job in self.inner.scheduler.shutdown() {
            job.slot.fulfill(Response::fail(
                &job.request.id,
                ErrorBody::new(codes::SHUTDOWN, "service is shutting down"),
            ));
        }
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
        self.stats_report()
    }
}

/// Classify a plan-execution failure. A task that exhausted its retry
/// budget under an installed fault plan is an expected, per-request
/// outcome — the service is healthy, the query lost the fault lottery —
/// so it becomes a structured `degraded` response carrying the request's
/// fault/retry accounting. Anything else is a plain `exec_failed`.
/// Neither outcome reaches the result cache (both return before `put`).
fn exec_error(
    inner: &ServiceInner,
    id: &str,
    baseline: &sjdf::metrics::MetricsReport,
    message: &str,
) -> Response {
    let delta = inner.ctx.metrics.report().delta_since(baseline);
    inner.metrics.engine_failures(&delta.failures);
    // The stable marker in `SjdfError::ExhaustedRetries`'s Display; the
    // error crosses the sjcore boundary as a string, so classification
    // happens on the rendered message.
    if message.contains("exhausted retry budget") {
        inner.metrics.degraded();
        return Response::degraded(id, ErrorBody::new(codes::DEGRADED, message), delta.failures);
    }
    Response::fail(id, ErrorBody::new(codes::EXEC_FAILED, message))
}

fn worker_loop(inner: &ServiceInner) {
    while let Some((job, depth)) = inner.scheduler.next_job() {
        inner.metrics.queue_depth_changed(depth);
        if job.slot.is_cancelled() {
            // The client's deadline passed while the job sat in the
            // queue; it was already answered with a timeout.
            continue;
        }
        if Instant::now() >= job.deadline {
            inner.metrics.timed_out();
            job.slot.fulfill(Response::fail(
                &job.request.id,
                ErrorBody::new(codes::TIMEOUT, "deadline elapsed while queued"),
            ));
            continue;
        }
        inner.metrics.exec_started();
        let response = execute(inner, &job);
        inner.metrics.exec_finished();
        job.slot.fulfill(response);
    }
}

/// Solve (through the plan cache) and, for `query`, execute (through the
/// result cache).
fn execute(inner: &ServiceInner, job: &Job) -> Response {
    let id = &job.request.id;
    let spec = match &job.request.query {
        Some(spec) => spec,
        None => {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::BAD_REQUEST,
                    "query/explain requires a `query` payload",
                ),
            )
        }
    };
    if spec.domains.is_empty() || spec.values.is_empty() {
        return Response::fail(
            id,
            ErrorBody::new(codes::BAD_REQUEST, "query needs domains and values"),
        );
    }

    let window = spec
        .window_secs
        .unwrap_or(inner.config.engine.interp_window_secs);
    let step = spec
        .step_secs
        .unwrap_or(inner.config.engine.explode_step_secs);
    // Admission-time knob validation: NaN/infinite/negative windows can
    // neither key a plan cache entry nor drive interpolation sensibly.
    if !window.is_finite() || window < 0.0 || !step.is_finite() || step < 0.0 {
        return Response::fail(
            id,
            ErrorBody::new(
                codes::BAD_REQUEST,
                format!(
                    "window_secs and step_secs must be finite and non-negative \
                     (got window={window}, step={step})"
                ),
            ),
        );
    }
    let query = Query {
        domains: spec.domains.clone(),
        values: spec
            .values
            .iter()
            .map(|v| QueryValue {
                dimension: v.dimension.clone(),
                units: v.units.clone(),
            })
            .collect(),
    };
    let canonical = match query.canonicalize(inner.catalog.dict()) {
        Ok(q) => q,
        Err(e) => return Response::fail(id, ErrorBody::new(codes::BAD_REQUEST, e.to_string())),
    };
    let key = match PlanKey::new(&canonical, window, step) {
        Some(key) => key,
        // Unreachable after the validation above, but never panic a
        // worker over a key.
        None => {
            return Response::fail(
                id,
                ErrorBody::new(codes::BAD_REQUEST, "window/step do not form a plan key"),
            )
        }
    };

    // Level 1: memoized derivation search.
    let (plan, plan_cache_hit) = match inner.plan_cache.get(&key) {
        Some(plan) => (plan, true),
        None => {
            let engine = QueryEngine::with_config(
                &inner.catalog,
                EngineConfig {
                    interp_window_secs: window,
                    explode_step_secs: step,
                    ..inner.config.engine.clone()
                },
            );
            match engine.solve(&canonical) {
                Ok(plan) => (inner.plan_cache.insert(key, plan), false),
                Err(SjError::NoSolution(msg)) => {
                    return Response::fail(id, ErrorBody::new(codes::NO_SOLUTION, msg))
                }
                Err(e) => {
                    return Response::fail(id, ErrorBody::new(codes::BAD_REQUEST, e.to_string()))
                }
            }
        }
    };

    if job.request.verb == Verb::Explain {
        let mut r = Response::ok(id);
        r.plan = Some(PlanInfo {
            plan_json: plan.to_json(),
            plan_text: plan.describe(),
            fingerprint: plan.fingerprint(),
            plan_cache_hit,
        });
        return r;
    }

    // Level 2: materialized rows keyed by plan fingerprint.
    let fingerprint = plan.fingerprint();
    let (schema, rows, result_cache_hit, engine_metrics) = match inner.result_cache.get(fingerprint)
    {
        Some((schema, rows)) => (schema, rows, true, None),
        None => {
            let baseline = inner.ctx.metrics.report();
            let ds = match plan.execute(&inner.catalog, None) {
                Ok(ds) => ds,
                Err(e) => return exec_error(inner, id, &baseline, &e.to_string()),
            };
            let rows = match ds.collect() {
                Ok(rows) => rows,
                Err(e) => return exec_error(inner, id, &baseline, &e.to_string()),
            };
            let schema = ds.schema().clone();
            inner
                .result_cache
                .put(fingerprint, schema.clone(), rows.clone());
            // Attribute the collector's growth to this evaluation.
            // Concurrent evaluations may interleave (the collector is
            // shared), so this is an attribution, not an isolation.
            let delta = inner.ctx.metrics.report().delta_since(&baseline);
            inner.metrics.engine_failures(&delta.failures);
            (schema, rows, false, Some(delta))
        }
    };

    let limit = spec.limit.unwrap_or(inner.config.default_limit);
    let row_count = rows.len();
    let truncated = row_count > limit;
    let columns: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
    let ncols = schema.len();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .take(limit)
        .map(|row| (0..ncols).map(|i| row.get(i).to_string()).collect())
        .collect();

    let mut r = Response::ok(id);
    r.result = Some(QueryResult {
        columns,
        rows: rendered,
        row_count,
        truncated,
        plan_cache_hit,
        result_cache_hit,
        elapsed_ms: job.enqueued.elapsed().as_secs_f64() * 1e3,
        engine_metrics,
    });
    r
}
