//! The query service: catalog session, worker pool, two-level cache, and
//! request execution.
//!
//! A [`QueryService`] owns one loaded [`Catalog`] for its whole lifetime
//! (the session/catalog manager), shares it read-only with every worker,
//! and answers [`Request`]s:
//!
//! - `query` / `explain` pass through admission control
//!   ([`crate::scheduler`]) and execute on the bounded worker pool;
//! - `stats` / `health` are answered inline — monitoring must keep
//!   working when the queue is saturated, which is exactly when you need
//!   it.
//!
//! Execution consults the two cache levels in order: the plan cache
//! (memoized derivation search, keyed by normalized query + engine
//! knobs) and the result cache (materialized rows, keyed by plan
//! fingerprint). Each response reports which levels hit, its end-to-end
//! latency, and the dataflow metrics attributable to its evaluation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sjcore::cache::ResultCache;
use sjcore::catalog::Catalog;
use sjcore::engine::{EngineConfig, Query, QueryEngine, QueryValue};
use sjcore::SjError;
use sjdf::ExecCtx;
use sjtrace::{EventKind, RecordedSpan};

use crate::cache::{PlanCacheLayer, PlanKey};
use crate::metrics::{CacheCounters, ServiceMetrics, StatsReport};
use crate::protocol::{
    codes, AppendAck, CatalogInfo, DatasetDesc, ErrorBody, HealthReport, PlanInfo, QueryResult,
    Request, Response, SubscriptionAck, TraceSummary, Verb,
};
use crate::scheduler::{AdmissionError, Job, ResponseSlot, Scheduler, SchedulerConfig};
use crate::server::EmissionSink;

/// Service-wide tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission and worker-pool sizing.
    pub scheduler: SchedulerConfig,
    /// Byte budget for the materialized-result cache.
    pub result_cache_bytes: usize,
    /// Byte budget for the dataflow stage cache (persisted partitions and
    /// auto-persisted shuffle outputs in the shared [`ExecCtx`]); applied
    /// to the context at service construction. `u64::MAX` = unlimited.
    pub stage_cache_bytes: u64,
    /// Rows returned per query when the request has no `limit`.
    pub default_limit: usize,
    /// Engine defaults; per-request `window_secs` / `step_secs` override
    /// the corresponding knobs.
    pub engine: EngineConfig,
    /// Task retry policy installed on the execution context at service
    /// construction (shared by all of its clones, so it also governs the
    /// catalog's already-wrapped datasets). `None` leaves the context's
    /// current policy untouched.
    pub retry: Option<sjdf::RetryPolicy>,
    /// Deterministic fault plan installed on the execution context at
    /// service construction — the chaos-testing hook behind the
    /// `--chaos-seed` flag. `None` leaves the context untouched.
    pub faults: Option<sjdf::FaultPlan>,
    /// When set, tracing is enabled at startup and the Chrome trace of
    /// every degraded/failed or slow query (see
    /// [`ServiceConfig::trace_slow_ms`]) is persisted to
    /// `<trace_dir>/<query_id>.trace.json`. The `--trace-dir` flag.
    pub trace_dir: Option<PathBuf>,
    /// A query at or above this end-to-end latency counts as slow for
    /// trace persistence. Only consulted when `trace_dir` is set.
    pub trace_slow_ms: u64,
    /// Operator-assigned shard identity for sharded deployments (the
    /// `--shard-id` flag); surfaced on `health` and `catalog` responses
    /// so a router's mark-down decisions are inspectable by hand.
    pub shard_id: Option<String>,
    /// Streaming-ingestion policy (window width, allowed lateness,
    /// evaluation horizon) for `append` requests and standing queries.
    pub stream: sjstream::StreamConfig,
    /// Standing queries one tenant may hold concurrently; further
    /// `subscribe: true` requests fail with
    /// [`codes::SUBSCRIPTION_LIMIT`].
    pub max_subscriptions_per_tenant: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            scheduler: SchedulerConfig::default(),
            result_cache_bytes: 64 << 20,
            stage_cache_bytes: 256 << 20,
            default_limit: 1000,
            engine: EngineConfig::default(),
            retry: None,
            faults: None,
            trace_dir: None,
            trace_slow_ms: 1000,
            shard_id: None,
            stream: sjstream::StreamConfig::default(),
            max_subscriptions_per_tenant: 8,
        }
    }
}

/// One standing query bound to the connection it reports to.
struct SubBinding {
    /// Server-assigned subscription id (`Response::query_id` on frames).
    query_id: String,
    /// The subscribe request's id; every pushed frame echoes it.
    request_id: String,
    sink: Arc<dyn EmissionSink>,
}

struct ServiceInner {
    catalog: Catalog,
    ctx: ExecCtx,
    config: ServiceConfig,
    plan_cache: PlanCacheLayer,
    result_cache: ResultCache,
    metrics: ServiceMetrics,
    scheduler: Scheduler,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Monotonic sequence behind server-assigned query ids.
    query_seq: AtomicU64,
    /// Fingerprint of the served catalog (names + schemas). Routers
    /// watch it across heartbeats and invalidate their result caches
    /// when it changes.
    catalog_epoch: AtomicU64,
    /// Streaming ingestion over a clone of the same catalog. Lock
    /// order: `stream` before `delivery` before `subs`, everywhere.
    stream: Mutex<sjstream::StreamEngine>,
    /// Serializes pushed-frame delivery in emission order. An appender
    /// acquires it *while still holding* `stream`, then releases
    /// `stream` before any TCP write — so a slow subscriber can stall
    /// at most other deliveries, never the stream engine itself (stats,
    /// new subscriptions, and connection teardown keep working).
    delivery: Mutex<()>,
    /// Standing queries and the sinks their frames go to.
    subs: Mutex<Vec<SubBinding>>,
}

/// A running ScrubJay query service. Cheap to clone; all clones share
/// one catalog, scheduler, and cache.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl QueryService {
    /// Build a service over an already-loaded catalog and start its
    /// worker pool. `ctx` must be the context the catalog's datasets
    /// were wrapped with (its metrics sink is where evaluations report).
    pub fn new(ctx: ExecCtx, catalog: Catalog, config: ServiceConfig) -> Self {
        let scheduler = Scheduler::new(config.scheduler.clone());
        ctx.set_cache_budget(config.stage_cache_bytes);
        if let Some(retry) = config.retry.clone() {
            ctx.set_retry(retry);
        }
        if let Some(faults) = config.faults.clone() {
            ctx.set_faults(Some(faults));
        }
        if config.trace_dir.is_some() {
            // Persisting traces for slow/degraded queries needs every
            // query traced; per-request `trace: true` enables lazily.
            ctx.tracer().enable();
        }
        let epoch = catalog_fingerprint(&catalog);
        let stream = sjstream::StreamEngine::new(
            &ctx,
            catalog.clone(),
            config.stream.clone(),
            config.engine.clone(),
        );
        let inner = Arc::new(ServiceInner {
            catalog,
            ctx,
            config: config.clone(),
            plan_cache: PlanCacheLayer::new(),
            result_cache: ResultCache::new(config.result_cache_bytes),
            metrics: ServiceMetrics::new(),
            scheduler,
            workers: Mutex::new(Vec::new()),
            query_seq: AtomicU64::new(0),
            catalog_epoch: AtomicU64::new(epoch),
            stream: Mutex::new(stream),
            delivery: Mutex::new(()),
            subs: Mutex::new(Vec::new()),
        });
        let service = QueryService { inner };
        service.start_workers();
        service
    }

    fn start_workers(&self) {
        let mut workers = self.inner.workers.lock();
        for i in 0..self.inner.config.scheduler.workers.max(1) {
            let inner = Arc::clone(&self.inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sjserve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread"),
            );
        }
    }

    /// Handle one request end to end, blocking until the response is
    /// ready or the request's deadline passes. This is the entry point
    /// used both by the TCP front end and by in-process embedders.
    pub fn handle(&self, request: Request) -> Response {
        let inner = &self.inner;
        inner.metrics.request_started();
        let started = Instant::now();
        let mut response = match request.proto_version {
            Some(v) if v != crate::protocol::PROTO_VERSION => Response::fail(
                &request.id,
                ErrorBody::new(
                    codes::PROTO_MISMATCH,
                    format!(
                        "peer speaks protocol v{v}, this worker speaks v{}",
                        crate::protocol::PROTO_VERSION
                    ),
                ),
            ),
            _ => match request.verb {
                // Monitoring verbs never queue: they must answer while
                // the service is saturated.
                Verb::Stats => {
                    let mut r = Response::ok(&request.id);
                    r.stats = Some(self.stats_report());
                    r
                }
                Verb::Health => {
                    let mut r = Response::ok(&request.id);
                    r.health = Some(HealthReport {
                        status: "ok".into(),
                        datasets: inner
                            .catalog
                            .dataset_names()
                            .into_iter()
                            .map(String::from)
                            .collect(),
                        uptime_ms: inner.metrics.uptime().as_millis() as u64,
                        shard_id: inner.config.shard_id.clone(),
                        catalog_epoch: Some(self.catalog_epoch()),
                        stage_cache_bytes: Some(inner.ctx.stage_cache().stats().bytes),
                    });
                    r
                }
                Verb::Catalog => {
                    let mut r = Response::ok(&request.id);
                    r.catalog = Some(self.catalog_info());
                    r
                }
                Verb::Shutdown => {
                    // The front end decides what shutdown means; the
                    // service just acknowledges and stops its own
                    // workers.
                    Response::ok(&request.id)
                }
                // Appends run inline on the connection thread: they are
                // cheap by design (window sweeps reuse the emission
                // cache) and must stay ordered with respect to each
                // other on a connection.
                Verb::Append => self.handle_append(&request),
                // A subscription needs a streaming-capable transport; a
                // plain `handle` has no sink to push frames to.
                Verb::Query if request.subscribe == Some(true) => Response::fail(
                    &request.id,
                    ErrorBody::new(
                        codes::STREAM_UNSUPPORTED,
                        "standing queries (`subscribe: true`) need a streaming-capable \
                         connection; this path cannot deliver pushed frames",
                    ),
                ),
                Verb::Query | Verb::Explain => self.enqueue_and_wait(request, started),
            },
        };
        response.proto_version = Some(crate::protocol::PROTO_VERSION);
        inner
            .metrics
            .request_finished(response.is_ok(), started.elapsed());
        response
    }

    /// Handle one request on a streaming-capable transport: like
    /// [`QueryService::handle`], but `subscribe: true` queries register
    /// a standing query whose window frames are pushed to `sink` for the
    /// rest of the connection's life. This is the entry point the TCP
    /// front end uses for every request.
    pub fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        if request.verb != Verb::Query || request.subscribe != Some(true) {
            return self.handle(request);
        }
        let inner = &self.inner;
        inner.metrics.request_started();
        let started = Instant::now();
        let mut response = match request.proto_version {
            Some(v) if v != crate::protocol::PROTO_VERSION => Response::fail(
                &request.id,
                ErrorBody::new(
                    codes::PROTO_MISMATCH,
                    format!(
                        "peer speaks protocol v{v}, this worker speaks v{}",
                        crate::protocol::PROTO_VERSION
                    ),
                ),
            ),
            _ => self.handle_subscribe(&request, sink),
        };
        response.proto_version = Some(crate::protocol::PROTO_VERSION);
        inner
            .metrics
            .request_finished(response.is_ok(), started.elapsed());
        response
    }

    /// Record which transport one request arrived on (called by the TCP
    /// front end, which owns the sniffing/negotiation).
    pub fn note_protocol_request(&self, binary: bool) {
        self.inner.metrics.protocol_request(binary);
    }

    /// Drop every subscription bound to `sink` (its connection ended).
    pub fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        let inner = &self.inner;
        let mut stream = inner.stream.lock();
        let mut subs = inner.subs.lock();
        subs.retain(|b| {
            if Arc::ptr_eq(&b.sink, sink) {
                if stream.unsubscribe(&b.query_id) {
                    inner.metrics.subscription_closed();
                }
                false
            } else {
                true
            }
        });
    }

    /// Register a standing query (the `subscribe: true` path).
    fn handle_subscribe(&self, request: &Request, sink: &Arc<dyn EmissionSink>) -> Response {
        let inner = &self.inner;
        let id = &request.id;
        let spec = match &request.query {
            Some(spec) => spec,
            None => {
                return Response::fail(
                    id,
                    ErrorBody::new(codes::BAD_REQUEST, "subscribe requires a `query` payload"),
                )
            }
        };
        if spec.domains.is_empty() || spec.values.is_empty() {
            return Response::fail(
                id,
                ErrorBody::new(codes::BAD_REQUEST, "query needs domains and values"),
            );
        }
        let query = Query {
            domains: spec.domains.clone(),
            values: spec
                .values
                .iter()
                .map(|v| QueryValue {
                    dimension: v.dimension.clone(),
                    units: v.units.clone(),
                })
                .collect(),
        };
        let query_id = format!(
            "s{:06}-{}",
            inner.query_seq.fetch_add(1, Ordering::Relaxed),
            id
        );
        let mut stream = inner.stream.lock();
        if stream.subscription_count(&request.tenant) >= inner.config.max_subscriptions_per_tenant {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::SUBSCRIPTION_LIMIT,
                    format!(
                        "tenant `{}` already holds {} standing queries (the per-tenant limit)",
                        request.tenant, inner.config.max_subscriptions_per_tenant
                    ),
                ),
            );
        }
        if let Err(e) = stream.subscribe(&query_id, &request.tenant, &query) {
            return Response::fail(id, ErrorBody::new(codes::BAD_REQUEST, e.to_string()));
        }
        inner.subs.lock().push(SubBinding {
            query_id: query_id.clone(),
            request_id: id.clone(),
            sink: Arc::clone(sink),
        });
        inner.metrics.subscription_opened();
        let mut r = Response::ok(id);
        r.query_id = Some(query_id.clone());
        r.subscription = Some(SubscriptionAck {
            query_id,
            window_secs: inner.config.stream.window_secs,
            allowed_lateness_secs: inner.config.stream.allowed_lateness_secs,
        });
        r
    }

    /// Apply one append batch and push any resulting window frames to
    /// their subscribers. The engine mutation runs under the stream
    /// lock; frame delivery does **not** — the appender hands over to
    /// the `delivery` lock (acquired before releasing `stream`, which
    /// keeps each subscriber's frame order equal to emission order) so
    /// a subscriber with a full TCP send buffer blocks other
    /// *deliveries* at worst, never the engine, stats, subscription
    /// registration, or connection teardown.
    fn handle_append(&self, request: &Request) -> Response {
        let inner = &self.inner;
        let id = &request.id;
        let batch = match &request.append {
            Some(batch) => batch,
            None => {
                return Response::fail(
                    id,
                    ErrorBody::new(codes::BAD_REQUEST, "append requires an `append` payload"),
                )
            }
        };
        let bulk = request.bulk == Some(true);
        let (outcome, delivery) = {
            let mut stream = inner.stream.lock();
            let result = if bulk {
                stream.append_bulk(batch)
            } else {
                stream.append(batch)
            };
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(e) => {
                    return Response::fail(id, ErrorBody::new(codes::BAD_REQUEST, e.to_string()))
                }
            };
            // Hand-over-hand: take the delivery lock while the stream
            // lock still serializes us, then let the stream go before
            // any blocking TCP write below.
            (outcome, inner.delivery.lock())
        };
        // Frames go out before the ack so a single-connection client
        // (the appender is also the subscriber) observes windows before
        // the append that produced them completes. Building the send
        // plan takes the subs lock only briefly; the blocking writes
        // below happen holding nothing but `delivery`, so a stalled
        // consumer cannot wedge subscription registration or teardown
        // either.
        let mut sends: Vec<(Arc<dyn EmissionSink>, Response, String)> = Vec::new();
        let mut dead: Vec<String> = Vec::new();
        {
            let subs = inner.subs.lock();
            for e in &outcome.emissions {
                let Some(b) = subs.iter().find(|b| b.query_id == e.query_id) else {
                    continue;
                };
                let mut frame = Response::ok(&b.request_id);
                if e.degraded {
                    frame.status = "degraded".into();
                    frame.error = e.error.clone().map(|m| ErrorBody::new(codes::DEGRADED, m));
                }
                frame.query_id = Some(e.query_id.clone());
                frame.window = Some(e.clone());
                frame.proto_version = Some(crate::protocol::PROTO_VERSION);
                sends.push((Arc::clone(&b.sink), frame, e.query_id.clone()));
            }
            // A failed solve tears down exactly that subscription (the
            // engine already dropped it); the connection and the
            // tenant's other standing queries are untouched.
            for f in &outcome.failures {
                let Some(b) = subs.iter().find(|b| b.query_id == f.query_id) else {
                    continue;
                };
                let code = if f.truncated {
                    inner.metrics.search_truncated();
                    codes::SEARCH_TRUNCATED
                } else {
                    codes::NO_SOLUTION
                };
                let mut frame =
                    Response::fail(&b.request_id, ErrorBody::new(code, f.error.clone()));
                frame.query_id = Some(f.query_id.clone());
                frame.proto_version = Some(crate::protocol::PROTO_VERSION);
                inner.metrics.subscription_failed();
                sends.push((Arc::clone(&b.sink), frame, f.query_id.clone()));
                dead.push(f.query_id.clone());
            }
        }
        for (sink, frame, query_id) in &sends {
            if sink.send(frame).is_err() && !dead.contains(query_id) {
                dead.push(query_id.clone());
            }
        }
        // Re-acquiring `stream` for teardown needs the delivery lock
        // released first (lock order is stream → delivery).
        drop(delivery);
        if !dead.is_empty() {
            let mut stream = inner.stream.lock();
            inner.subs.lock().retain(|b| !dead.contains(&b.query_id));
            for qid in &dead {
                // Engine-side entries remain only for dead *sinks*;
                // failed solves were already unregistered.
                if stream.unsubscribe(qid) {
                    inner.metrics.subscription_closed();
                }
            }
        }
        let mut r = Response::ok(id);
        r.append = Some(AppendAck {
            accepted: outcome.accepted,
            duplicates_dropped: outcome.duplicates_dropped,
            late_dropped: outcome.late_dropped,
            watermark_us: outcome.watermark_us,
            invalidated: outcome.invalidated,
            windows_emitted: outcome.emissions.len(),
        });
        r
    }

    /// This catalog's epoch: a content fingerprint over dataset names
    /// and schemas, minted at construction.
    pub fn catalog_epoch(&self) -> u64 {
        self.inner.catalog_epoch.load(Ordering::Relaxed)
    }

    /// Force a new catalog epoch (test hook for "the shard was
    /// reloaded"): routers heartbeating this worker must observe the
    /// change and invalidate.
    pub fn bump_catalog_epoch(&self) {
        self.inner.catalog_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The shard described at the schema level (the `catalog` verb).
    pub fn catalog_info(&self) -> CatalogInfo {
        let mut datasets: Vec<DatasetDesc> = self
            .inner
            .catalog
            .datasets()
            .map(|(name, ds)| DatasetDesc {
                name: name.to_string(),
                schema_json: serde_json::to_string(ds.schema()).unwrap_or_default(),
            })
            .collect();
        datasets.sort_by(|a, b| a.name.cmp(&b.name));
        CatalogInfo {
            shard_id: self.inner.config.shard_id.clone(),
            epoch: self.catalog_epoch(),
            datasets,
        }
    }

    fn enqueue_and_wait(&self, request: Request, started: Instant) -> Response {
        let inner = &self.inner;
        let id = request.id.clone();
        let tenant = request.tenant.clone();
        // The correlation id is assigned here, at admission, so even
        // rejected and timed-out requests can be matched against
        // server-side logs and traces.
        let query_id = format!(
            "q{:06}-{}",
            inner.query_seq.fetch_add(1, Ordering::Relaxed),
            id
        );
        if request.wants_trace() {
            // First traced request flips the shared tracer on for the
            // rest of the process; the cost when idle is one relaxed
            // atomic load per instrumentation site.
            inner.ctx.tracer().enable();
        }
        let timeout = request
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(inner.config.scheduler.default_timeout);
        let deadline = started + timeout;
        let slot = ResponseSlot::new();
        let job = Job {
            request,
            tenant: tenant.clone(),
            enqueued: started,
            deadline,
            slot: Arc::clone(&slot),
            query_id: query_id.clone(),
        };
        match inner.scheduler.submit(job) {
            Ok(depth) => {
                inner.metrics.admitted(&tenant);
                inner.metrics.queue_depth_changed(depth);
            }
            Err(AdmissionError::QueueFull { depth, capacity }) => {
                inner.metrics.rejected_full(&tenant);
                let mut r = Response::fail(
                    &id,
                    ErrorBody::new(
                        codes::QUEUE_FULL,
                        format!("admission queue at capacity ({depth}/{capacity}); retry later"),
                    ),
                );
                r.query_id = Some(query_id);
                return r;
            }
            Err(AdmissionError::ShuttingDown) => {
                let mut r = Response::fail(
                    &id,
                    ErrorBody::new(codes::SHUTDOWN, "service is shutting down"),
                );
                r.query_id = Some(query_id);
                return r;
            }
        }
        match slot.wait_until(deadline) {
            Some(response) => {
                inner.metrics.completed(&tenant);
                response
            }
            None => {
                inner.metrics.timed_out();
                inner.metrics.completed(&tenant);
                let mut r = Response::fail(
                    &id,
                    ErrorBody::new(
                        codes::TIMEOUT,
                        format!("deadline of {}ms elapsed", timeout.as_millis()),
                    ),
                );
                r.query_id = Some(query_id);
                r
            }
        }
    }

    /// Current service metrics, including both cache levels.
    pub fn stats_report(&self) -> StatsReport {
        let inner = &self.inner;
        let plan = inner.plan_cache.stats();
        let result = inner.result_cache.stats();
        let stage = inner.ctx.stage_cache().stats();
        inner.metrics.queue_depth_changed(inner.scheduler.depth());
        let streaming = {
            let stream = inner.stream.lock();
            inner.metrics.stream_report(
                &stream.counters(),
                stream.subscriptions().len() as u64,
                stage.invalidations,
            )
        };
        let mut report = inner.metrics.snapshot(CacheCounters {
            plan_entries: plan.entries,
            plan_hits: plan.hits,
            plan_misses: plan.misses,
            result_entries: inner.result_cache.len() as u64,
            result_bytes: inner.result_cache.bytes() as u64,
            result_hits: result.hits,
            result_misses: result.misses,
            result_evictions: result.evictions,
            stage_entries: stage.entries,
            stage_bytes: stage.bytes,
            stage_hits: stage.hits,
            stage_misses: stage.misses,
            stage_evictions: stage.evictions,
        });
        report.streaming = Some(streaming);
        report
    }

    /// Dataset names served by this session's catalog.
    pub fn dataset_names(&self) -> Vec<String> {
        self.inner
            .catalog
            .dataset_names()
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// Stop the worker pool, answering still-queued jobs with a shutdown
    /// error, and return the final metrics snapshot.
    pub fn shutdown(&self) -> StatsReport {
        for job in self.inner.scheduler.shutdown() {
            job.slot.fulfill(Response::fail(
                &job.request.id,
                ErrorBody::new(codes::SHUTDOWN, "service is shutting down"),
            ));
        }
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
        self.stats_report()
    }
}

/// FNV-1a fingerprint of a catalog's dataset names and schemas: the
/// catalog epoch. Deterministic across processes for identical shards,
/// and any rename/reshape/addition changes it.
fn catalog_fingerprint(catalog: &Catalog) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut names: Vec<&str> = catalog.dataset_names();
    names.sort_unstable();
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for name in names {
        eat(name.as_bytes());
        eat(b"\x00");
        if let Ok(ds) = catalog.dataset(name) {
            if let Ok(schema_json) = serde_json::to_string(ds.schema()) {
                eat(schema_json.as_bytes());
            }
        }
        eat(b"\x01");
    }
    h
}

/// Classify a plan-execution failure. A task that exhausted its retry
/// budget under an installed fault plan is an expected, per-request
/// outcome — the service is healthy, the query lost the fault lottery —
/// so it becomes a structured `degraded` response carrying the request's
/// fault/retry accounting. Anything else is a plain `exec_failed`.
/// Neither outcome reaches the result cache (both return before `put`).
fn exec_error(
    inner: &ServiceInner,
    id: &str,
    baseline: &sjdf::metrics::MetricsReport,
    message: &str,
) -> Response {
    let delta = inner.ctx.metrics.report().delta_since(baseline);
    inner.metrics.engine_failures(&delta.failures);
    // The stable marker in `SjdfError::ExhaustedRetries`'s Display; the
    // error crosses the sjcore boundary as a string, so classification
    // happens on the rendered message.
    if message.contains("exhausted retry budget") {
        inner.metrics.degraded();
        if inner.ctx.tracer().enabled() {
            let brief: String = message.chars().take(120).collect();
            inner.ctx.tracer().instant("degraded", brief);
        }
        return Response::degraded(id, ErrorBody::new(codes::DEGRADED, message), delta.failures);
    }
    Response::fail(id, ErrorBody::new(codes::EXEC_FAILED, message))
}

fn worker_loop(inner: &ServiceInner) {
    while let Some((job, depth)) = inner.scheduler.next_job() {
        inner.metrics.queue_depth_changed(depth);
        if job.slot.is_cancelled() {
            // The client's deadline passed while the job sat in the
            // queue; it was already answered with a timeout.
            continue;
        }
        if Instant::now() >= job.deadline {
            inner.metrics.timed_out();
            job.slot.fulfill(Response::fail(
                &job.request.id,
                ErrorBody::new(codes::TIMEOUT, "deadline elapsed while queued"),
            ));
            continue;
        }
        inner.metrics.exec_started();
        let response = execute(inner, &job);
        inner.metrics.exec_finished();
        job.slot.fulfill(response);
    }
}

/// Stamp the server-assigned query id everywhere a client might need to
/// correlate: the response itself, its failure report (degraded
/// responses), and the failure accounting inside the engine metrics.
fn stamp_query_id(response: &mut Response, query_id: &str) {
    response.query_id = Some(query_id.to_string());
    if let Some(failure) = response.failure.as_mut() {
        failure.query_id = Some(query_id.to_string());
    }
    if let Some(metrics) = response
        .result
        .as_mut()
        .and_then(|r| r.engine_metrics.as_mut())
    {
        metrics.failures.query_id = Some(query_id.to_string());
    }
}

/// Make a query id safe to use as a file stem: the request-id half is
/// client-supplied and could carry separators or parent-dir hops.
fn trace_file_stem(query_id: &str) -> String {
    query_id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Abandoned spans older than this are pruned from the shared tracer
/// after each request, bounding sink growth in a long-running service.
const TRACE_RETENTION_US: u64 = 300_000_000;

/// Execute one job with its request-scoped trace: a retroactive `request`
/// root span opened at admission time, a `queue_wait` child covering the
/// time spent in the admission queue, and everything the engine records
/// underneath. After execution the request's span tree is extracted from
/// the shared tracer, summarized onto the response when the client asked
/// for it, and persisted to the trace dir when the query was slow or
/// unhealthy.
fn execute(inner: &ServiceInner, job: &Job) -> Response {
    let tracer = inner.ctx.tracer().clone();
    if !tracer.enabled() {
        let mut response = execute_query(inner, job);
        stamp_query_id(&mut response, &job.query_id);
        return response;
    }
    let now = tracer.now_us();
    let queued_us = job.enqueued.elapsed().as_micros() as u64;
    let start = now.saturating_sub(queued_us);
    let mut root = tracer.span_at("request", start);
    let root_id = root.root();
    if root.is_recording() {
        root.set_detail(format!("query_id={} tenant={}", job.query_id, job.tenant));
        tracer.record_span(RecordedSpan {
            name: "queue_wait",
            detail: format!("{queued_us}us queued"),
            parent: root.id(),
            root: root_id,
            start_us: start,
            end_us: now,
            failed: false,
            kind: EventKind::Span,
        });
    }
    let mut response = execute_query(inner, job);
    stamp_query_id(&mut response, &job.query_id);
    if !response.is_ok() {
        root.fail();
    }
    drop(root);

    let events = tracer.take_root(root_id);
    tracer.prune_before(tracer.now_us().saturating_sub(TRACE_RETENTION_US));
    inner
        .metrics
        .trace_finished(events.len() as u64, tracer.dropped());

    let mut chrome_json: Option<String> = None;
    let thread_names = tracer.thread_names();
    if job.request.wants_trace() {
        let json = sjtrace::export::chrome_trace_json(&events, &thread_names, "sjserve");
        chrome_json = Some(json.clone());
        response.trace = Some(TraceSummary {
            query_id: job.query_id.clone(),
            span_count: events.len() as u64,
            dropped_spans: tracer.dropped(),
            timeline: sjtrace::timeline::render(&events),
            chrome_json: Some(json),
            // Ship the raw tree so a fronting router can graft this
            // worker's timeline under its own route span.
            spans: Some(events.clone()),
        });
    }
    if let Some(dir) = &inner.config.trace_dir {
        let elapsed_ms = job.enqueued.elapsed().as_millis() as u64;
        if !response.is_ok() || elapsed_ms >= inner.config.trace_slow_ms {
            let json = chrome_json.unwrap_or_else(|| {
                sjtrace::export::chrome_trace_json(&events, &thread_names, "sjserve")
            });
            let path = dir.join(format!("{}.trace.json", trace_file_stem(&job.query_id)));
            // Trace persistence is best-effort: an unwritable dir must
            // not fail the query it was meant to explain.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, json);
        }
    }
    response
}

/// Solve (through the plan cache) and, for `query`, execute (through the
/// result cache).
fn execute_query(inner: &ServiceInner, job: &Job) -> Response {
    let id = &job.request.id;
    let spec = match &job.request.query {
        Some(spec) => spec,
        None => {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::BAD_REQUEST,
                    "query/explain requires a `query` payload",
                ),
            )
        }
    };
    if spec.domains.is_empty() || spec.values.is_empty() {
        return Response::fail(
            id,
            ErrorBody::new(codes::BAD_REQUEST, "query needs domains and values"),
        );
    }

    let window = spec
        .window_secs
        .unwrap_or(inner.config.engine.interp_window_secs);
    let step = spec
        .step_secs
        .unwrap_or(inner.config.engine.explode_step_secs);
    // Admission-time knob validation: NaN/infinite/negative windows can
    // neither key a plan cache entry nor drive interpolation sensibly.
    if !window.is_finite() || window < 0.0 || !step.is_finite() || step < 0.0 {
        return Response::fail(
            id,
            ErrorBody::new(
                codes::BAD_REQUEST,
                format!(
                    "window_secs and step_secs must be finite and non-negative \
                     (got window={window}, step={step})"
                ),
            ),
        );
    }
    let query = Query {
        domains: spec.domains.clone(),
        values: spec
            .values
            .iter()
            .map(|v| QueryValue {
                dimension: v.dimension.clone(),
                units: v.units.clone(),
            })
            .collect(),
    };
    let canonical = match query.canonicalize(inner.catalog.dict()) {
        Ok(q) => q,
        Err(e) => return Response::fail(id, ErrorBody::new(codes::BAD_REQUEST, e.to_string())),
    };
    let key = match PlanKey::new(&canonical, window, step) {
        Some(key) => key,
        // Unreachable after the validation above, but never panic a
        // worker over a key.
        None => {
            return Response::fail(
                id,
                ErrorBody::new(codes::BAD_REQUEST, "window/step do not form a plan key"),
            )
        }
    };

    // Level 1: memoized derivation search.
    let tracer = inner.ctx.tracer();
    let (plan, plan_cache_hit) = match inner.plan_cache.get(&key) {
        Some(plan) => {
            tracer.instant("plan_cache_hit", "");
            (plan, true)
        }
        None => {
            tracer.instant("plan_cache_miss", "");
            let mut solve_span = tracer.span("solve");
            let engine = QueryEngine::with_config(
                &inner.catalog,
                EngineConfig {
                    interp_window_secs: window,
                    explode_step_secs: step,
                    ..inner.config.engine.clone()
                },
            );
            let solved = engine.solve(&canonical);
            inner.metrics.planner_effort(&engine.stats());
            match solved {
                Ok(plan) => (inner.plan_cache.insert(key, plan), false),
                Err(SjError::NoSolution(msg)) => {
                    solve_span.fail();
                    return Response::fail(id, ErrorBody::new(codes::NO_SOLUTION, msg));
                }
                Err(e @ SjError::SearchTruncated { .. }) => {
                    solve_span.fail();
                    inner.metrics.search_truncated();
                    return Response::fail(
                        id,
                        ErrorBody::new(codes::SEARCH_TRUNCATED, e.to_string()),
                    );
                }
                Err(e) => {
                    solve_span.fail();
                    return Response::fail(id, ErrorBody::new(codes::BAD_REQUEST, e.to_string()));
                }
            }
        }
    };

    if job.request.verb == Verb::Explain {
        let mut r = Response::ok(id);
        r.plan = Some(PlanInfo {
            plan_json: plan.to_json(),
            plan_text: plan.describe(),
            fingerprint: plan.fingerprint(),
            plan_cache_hit,
        });
        return r;
    }

    // Level 2: materialized rows keyed by plan fingerprint.
    let fingerprint = plan.fingerprint();
    let (schema, rows, result_cache_hit, engine_metrics) = match inner.result_cache.get(fingerprint)
    {
        Some((schema, rows)) => {
            tracer.instant("result_cache_hit", "");
            (schema, rows, true, None)
        }
        None => {
            tracer.instant("result_cache_miss", "");
            let mut exec_span = tracer.span("execute");
            let baseline = inner.ctx.metrics.report();
            let ds = match plan.execute(&inner.catalog, None) {
                Ok(ds) => ds,
                Err(e) => {
                    exec_span.fail();
                    drop(exec_span);
                    return exec_error(inner, id, &baseline, &e.to_string());
                }
            };
            let rows = match ds.collect() {
                Ok(rows) => rows,
                Err(e) => {
                    exec_span.fail();
                    drop(exec_span);
                    return exec_error(inner, id, &baseline, &e.to_string());
                }
            };
            drop(exec_span);
            let schema = ds.schema().clone();
            inner
                .result_cache
                .put(fingerprint, schema.clone(), rows.clone());
            // Attribute the collector's growth to this evaluation.
            // Concurrent evaluations may interleave (the collector is
            // shared), so this is an attribution, not an isolation.
            let delta = inner.ctx.metrics.report().delta_since(&baseline);
            inner.metrics.engine_failures(&delta.failures);
            (schema, rows, false, Some(delta))
        }
    };

    let limit = spec.limit.unwrap_or(inner.config.default_limit);
    let row_count = rows.len();
    let truncated = row_count > limit;
    let columns: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
    let ncols = schema.len();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .take(limit)
        .map(|row| (0..ncols).map(|i| row.get(i).to_string()).collect())
        .collect();

    let mut r = Response::ok(id);
    r.result = Some(QueryResult {
        columns,
        rows: rendered,
        row_count,
        truncated,
        plan_cache_hit,
        result_cache_hit,
        elapsed_ms: job.enqueued.elapsed().as_secs_f64() * 1e3,
        engine_metrics,
    });
    r
}
