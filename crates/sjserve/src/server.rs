//! The TCP front end: framed binary by default, JSON-lines forever.
//!
//! One accept thread, one handler thread per connection, std networking
//! only. The first byte of a connection picks the transport: `{` (a
//! JSON object opening — also what `nc` and every pre-binary client
//! sends) selects the JSON-lines loop, [`sjwire::MAGIC`] selects the
//! framed binary loop. Binary connections open with a
//! [`sjwire::Hello`] / [`sjwire::HelloAck`] exchange pinning the wire
//! version and payload codec; every subsequent message is one
//! CRC-checked frame whose payload is a JSON envelope plus columnar row
//! sections (see [`crate::wire`]).
//!
//! On either transport, malformed *payloads* get a structured
//! `bad_request` error instead of a dropped connection, so a client
//! with one bad message does not lose its pipeline. Broken *framing*
//! (bad magic, corrupt CRC, oversized length) gets a structured error
//! and then the connection is closed — once framing is suspect there is
//! no safe resync point.
//!
//! A `shutdown` request acknowledges, then stops the accept loop, the
//! worker pool, and dumps the final metrics snapshot to stderr — the
//! service equivalent of a batch tool printing its summary on exit.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{codes, ErrorBody, Request, Response, Verb, WireInfo, PROTO_VERSION};
use crate::service::QueryService;
use crate::wire::{decode_request, encode_response};
use sjwire::{negotiate, read_frame, write_frame, Hello, MsgType, WireError};

/// Where unsolicited frames (standing-query window emissions) for one
/// connection are pushed. The TCP front end hands every connection's
/// sink to [`RequestHandler::handle_streaming`]; a service that
/// registers subscriptions holds on to the sink and pushes frames to it
/// whenever appends ripen a window. A `send` error means the client is
/// gone — the service should drop every subscription bound to the sink.
pub trait EmissionSink: Send + Sync {
    /// Push one frame to the client, blocking until written.
    fn send(&self, frame: &Response) -> std::io::Result<()>;
}

/// [`EmissionSink`] over a shared TCP writer: request responses and
/// pushed frames interleave whole-line-atomically because every write
/// happens under the same mutex.
struct TcpSink {
    writer: Arc<Mutex<TcpStream>>,
}

impl EmissionSink for TcpSink {
    fn send(&self, frame: &Response) -> std::io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        write_line(&mut writer, frame)
    }
}

/// [`EmissionSink`] over the binary transport: pushed frames go out as
/// [`MsgType::WindowFrame`] frames under the same writer mutex the
/// request/response loop uses, so frames never interleave mid-frame.
struct BinarySink {
    writer: Arc<Mutex<TcpStream>>,
    /// Negotiated payload codec: columnar sections, or rows inline in
    /// the envelope (the fallback for clients offering unknown codecs).
    columnar: bool,
}

impl EmissionSink for BinarySink {
    fn send(&self, frame: &Response) -> std::io::Result<()> {
        let payload = if self.columnar {
            // Window frames are small (one window's rows); the clone
            // that lets `encode_response` detach them is cheap here.
            encode_response(&mut frame.clone())
        } else {
            crate::wire::encode_response_plain(frame)
        };
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *writer, MsgType::WindowFrame, &payload)
    }
}

/// Anything the TCP front end can serve: the query service itself, or a
/// router fronting a fleet of them. Handles are cheap clones sharing one
/// backend; `shutdown` stops the backend and returns its final summary
/// (a [`StatsReport`](crate::metrics::StatsReport) for workers, a
/// [`RouterStatsReport`](crate::metrics::RouterStatsReport) for routers).
pub trait RequestHandler: Clone + Send + 'static {
    /// Final metrics summary produced when the backend stops.
    type Summary;

    /// Answer one request, blocking until the response is ready.
    fn handle(&self, request: Request) -> Response;

    /// Answer one request on a streaming-capable transport: `sink` can
    /// deliver unsolicited frames for the rest of the connection's
    /// life. The default ignores the sink, which makes `subscribe:
    /// true` fail with [`codes::STREAM_UNSUPPORTED`] in handlers that
    /// don't override this (e.g. a router).
    fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        let _ = sink;
        self.handle(request)
    }

    /// The connection owning `sink` ended; drop any state bound to it
    /// (subscriptions). Default: nothing to drop.
    fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        let _ = sink;
    }

    /// One request arrived on a connection of the given transport
    /// (`binary` = framed, else JSON-lines). Called by the front end
    /// before dispatch so per-protocol counters reach the stats report.
    /// Default: not counted.
    fn protocol_request(&self, binary: bool) {
        let _ = binary;
    }

    /// Stop the backend's own workers and return the final summary.
    fn shutdown(&self) -> Self::Summary;
}

impl RequestHandler for QueryService {
    type Summary = crate::metrics::StatsReport;

    fn handle(&self, request: Request) -> Response {
        QueryService::handle(self, request)
    }

    fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        QueryService::handle_streaming(self, request, sink)
    }

    fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        QueryService::connection_closed(self, sink)
    }

    fn protocol_request(&self, binary: bool) {
        QueryService::note_protocol_request(self, binary)
    }

    fn shutdown(&self) -> Self::Summary {
        QueryService::shutdown(self)
    }
}

/// Handle to a running server; dropping it does NOT stop the server —
/// call [`ServerHandle::stop`] (or send a `shutdown` request).
pub struct ServerHandle<H: RequestHandler = QueryService> {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl<H: RequestHandler> ServerHandle<H> {
    /// Block until the accept loop exits (i.e. until a `shutdown`
    /// request arrives or [`ServerHandle::stop`] is called elsewhere).
    pub fn wait(mut self) -> H::Summary {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.service.shutdown()
    }

    /// Stop accepting, stop the workers, and return the final metrics.
    pub fn stop(mut self) -> H::Summary {
        self.shutdown.store(true, Ordering::Release);
        // Nudge the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.service.shutdown()
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `service` on it.
pub fn serve<H: RequestHandler>(service: H, addr: &str) -> std::io::Result<ServerHandle<H>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let service = service.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("sjserve-accept".into())
            .spawn(move || accept_loop(listener, addr, service, shutdown))?
    };
    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop<H: RequestHandler>(
    listener: TcpListener,
    addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = service.clone();
        let shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name("sjserve-conn".into())
            .spawn(move || handle_connection(stream, addr, service, shutdown));
    }
}

/// How long a write to a client may block before the connection is
/// declared stalled. A consumer that stops reading fills its TCP
/// receive buffer and then our send buffer; without a bound, the next
/// pushed frame would block its deliverer forever. Hitting the timeout
/// errors the write, which tears down the connection and every
/// subscription bound to it. Generous on purpose: it only fires when
/// the peer has read *nothing* for the whole interval.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Stamp the negotiated transport onto responses that report on the
/// service itself, so `sjq --stats`/`--health` show what the wire is
/// actually speaking.
fn stamp_wire(verb: Verb, response: &mut Response, info: &WireInfo) {
    if matches!(verb, Verb::Stats | Verb::Health) {
        response.wire = Some(info.clone());
    }
}

fn handle_connection<H: RequestHandler>(
    stream: TcpStream,
    addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
    // Sniff the transport on byte one without consuming it: `{` (or
    // anything else — favors a readable JSON parse error) is the
    // JSON-lines protocol; only the frame magic selects binary.
    let mut first = [0u8; 1];
    let binary = match stream.peek(&mut first) {
        Ok(0) | Err(_) => return, // closed before the first byte
        Ok(_) => first[0] == sjwire::MAGIC,
    };
    if binary {
        handle_binary_connection(stream, addr, service, shutdown)
    } else {
        handle_json_connection(stream, addr, service, shutdown)
    }
}

fn handle_json_connection<H: RequestHandler>(
    stream: TcpStream,
    addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    // The writer is shared between this request/response loop and any
    // standing-query sinks the service registers for this connection, so
    // pushed window frames interleave with responses line-atomically.
    let writer = Arc::new(Mutex::new(stream));
    let sink: Arc<dyn EmissionSink> = Arc::new(TcpSink {
        writer: Arc::clone(&writer),
    });
    let wire_info = WireInfo {
        wire_version: PROTO_VERSION,
        codec: sjwire::CODEC_JSON_LINES.into(),
    };
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                service.protocol_request(false);
                let verb = request.verb;
                let wants_shutdown = verb == Verb::Shutdown;
                let mut response = service.handle_streaming(request, &sink);
                stamp_wire(verb, &mut response, &wire_info);
                if wants_shutdown {
                    if sink.send(&response).is_err() {
                        // Ack failed; shut down regardless.
                    }
                    service.connection_closed(&sink);
                    shutdown.store(true, Ordering::Release);
                    // Nudge accept() so the loop observes the flag.
                    let _ = TcpStream::connect(addr);
                    return;
                }
                response
            }
            Err(e) => Response::fail(
                "",
                ErrorBody::new(codes::BAD_REQUEST, format!("unparsable request: {e}")),
            ),
        };
        if sink.send(&response).is_err() {
            break;
        }
    }
    service.connection_closed(&sink);
}

fn handle_binary_connection<H: RequestHandler>(
    stream: TcpStream,
    addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));

    // The connection opens with Hello/HelloAck pinning version + codec.
    let ack = match read_frame(&mut reader) {
        Ok(f) if f.msg_type == MsgType::Hello => {
            // A malformed Hello negotiates conservatively (defaults).
            let hello: Hello = serde_json::from_slice(&f.payload).unwrap_or_default();
            negotiate(&hello)
        }
        _ => return, // framing already broken; nothing sane to answer
    };
    {
        let payload = serde_json::to_vec(&ack).expect("ack serializes");
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        if write_frame(&mut *w, MsgType::HelloAck, &payload).is_err() {
            return;
        }
    }
    let columnar = ack.codec == sjwire::CODEC_COLUMNAR;
    let wire_info = WireInfo {
        wire_version: ack.wire_version,
        codec: ack.codec.clone(),
    };
    let sink: Arc<dyn EmissionSink> = Arc::new(BinarySink {
        writer: Arc::clone(&writer),
        columnar,
    });
    let respond = |response: &mut Response, msg_type: MsgType| -> std::io::Result<()> {
        let payload = if columnar {
            encode_response(response)
        } else {
            crate::wire::encode_response_plain(response)
        };
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *w, msg_type, &payload)
    };
    loop {
        let (mut response, framing_broken) = match read_frame(&mut reader) {
            Ok(f) if f.msg_type == MsgType::Request => match decode_request(&f.payload) {
                Ok(request) => {
                    service.protocol_request(true);
                    let verb = request.verb;
                    let wants_shutdown = verb == Verb::Shutdown;
                    let mut response = service.handle_streaming(request, &sink);
                    stamp_wire(verb, &mut response, &wire_info);
                    if wants_shutdown {
                        let _ = respond(&mut response, MsgType::Response);
                        service.connection_closed(&sink);
                        shutdown.store(true, Ordering::Release);
                        let _ = TcpStream::connect(addr);
                        return;
                    }
                    (response, false)
                }
                // Well-framed but undecodable payload: answer and keep
                // the connection (framing is still in sync).
                Err(e) => (
                    Response::fail(
                        "",
                        ErrorBody::new(codes::BAD_REQUEST, format!("unparsable request: {e}")),
                    ),
                    false,
                ),
            },
            Ok(f) => (
                Response::fail(
                    "",
                    ErrorBody::new(
                        codes::BAD_REQUEST,
                        format!("unexpected {:?} frame from a client", f.msg_type),
                    ),
                ),
                false,
            ),
            // Client went away (EOF lands here as Truncated) or the
            // stream itself failed: nothing useful to answer.
            Err(WireError::Truncated) | Err(WireError::Io(_)) => break,
            // Framing is corrupt; answer once, then drop the
            // connection — there is no safe resync point.
            Err(e) => (
                Response::fail("", ErrorBody::new(codes::BAD_REQUEST, format!("{e}"))),
                true,
            ),
        };
        if respond(&mut response, MsgType::Response).is_err() || framing_broken {
            break;
        }
    }
    service.connection_closed(&sink);
}

fn write_line(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut text = serde_json::to_string(response)
        .unwrap_or_else(|e| format!("{{\"id\":\"\",\"status\":\"error\",\"error\":{{\"code\":\"internal\",\"message\":\"serialize: {e}\"}}}}"));
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// Convenience for binaries: serve until shutdown, then dump metrics to
/// stderr and return them.
pub fn serve_until_shutdown(
    service: QueryService,
    addr: &str,
) -> std::io::Result<crate::metrics::StatsReport> {
    let handle = serve(service, addr)?;
    eprintln!("sjserved listening on {}", handle.addr);
    let report = handle.wait();
    eprintln!("--- final service metrics ---\n{}", report.render());
    Ok(report)
}

/// Poll until a freshly spawned server accepts connections (test helper).
pub fn wait_ready(addr: SocketAddr, budget: Duration) -> bool {
    let deadline = std::time::Instant::now() + budget;
    while std::time::Instant::now() < deadline {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}
