//! The JSON-lines TCP front end.
//!
//! One accept thread, one handler thread per connection, std networking
//! only. Each inbound line is parsed as a [`Request`]; the corresponding
//! [`Response`] is written back as one line. Malformed lines get a
//! structured `bad_request` error instead of a dropped connection, so a
//! client with one bad message does not lose its pipeline.
//!
//! A `shutdown` request acknowledges, then stops the accept loop, the
//! worker pool, and dumps the final metrics snapshot to stderr — the
//! service equivalent of a batch tool printing its summary on exit.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{codes, ErrorBody, Request, Response, Verb};
use crate::service::QueryService;

/// Where unsolicited frames (standing-query window emissions) for one
/// connection are pushed. The TCP front end hands every connection's
/// sink to [`RequestHandler::handle_streaming`]; a service that
/// registers subscriptions holds on to the sink and pushes frames to it
/// whenever appends ripen a window. A `send` error means the client is
/// gone — the service should drop every subscription bound to the sink.
pub trait EmissionSink: Send + Sync {
    /// Push one frame to the client, blocking until written.
    fn send(&self, frame: &Response) -> std::io::Result<()>;
}

/// [`EmissionSink`] over a shared TCP writer: request responses and
/// pushed frames interleave whole-line-atomically because every write
/// happens under the same mutex.
struct TcpSink {
    writer: Arc<Mutex<TcpStream>>,
}

impl EmissionSink for TcpSink {
    fn send(&self, frame: &Response) -> std::io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        write_line(&mut writer, frame)
    }
}

/// Anything the TCP front end can serve: the query service itself, or a
/// router fronting a fleet of them. Handles are cheap clones sharing one
/// backend; `shutdown` stops the backend and returns its final summary
/// (a [`StatsReport`](crate::metrics::StatsReport) for workers, a
/// [`RouterStatsReport`](crate::metrics::RouterStatsReport) for routers).
pub trait RequestHandler: Clone + Send + 'static {
    /// Final metrics summary produced when the backend stops.
    type Summary;

    /// Answer one request, blocking until the response is ready.
    fn handle(&self, request: Request) -> Response;

    /// Answer one request on a streaming-capable transport: `sink` can
    /// deliver unsolicited frames for the rest of the connection's
    /// life. The default ignores the sink, which makes `subscribe:
    /// true` fail with [`codes::STREAM_UNSUPPORTED`] in handlers that
    /// don't override this (e.g. a router).
    fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        let _ = sink;
        self.handle(request)
    }

    /// The connection owning `sink` ended; drop any state bound to it
    /// (subscriptions). Default: nothing to drop.
    fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        let _ = sink;
    }

    /// Stop the backend's own workers and return the final summary.
    fn shutdown(&self) -> Self::Summary;
}

impl RequestHandler for QueryService {
    type Summary = crate::metrics::StatsReport;

    fn handle(&self, request: Request) -> Response {
        QueryService::handle(self, request)
    }

    fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        QueryService::handle_streaming(self, request, sink)
    }

    fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        QueryService::connection_closed(self, sink)
    }

    fn shutdown(&self) -> Self::Summary {
        QueryService::shutdown(self)
    }
}

/// Handle to a running server; dropping it does NOT stop the server —
/// call [`ServerHandle::stop`] (or send a `shutdown` request).
pub struct ServerHandle<H: RequestHandler = QueryService> {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl<H: RequestHandler> ServerHandle<H> {
    /// Block until the accept loop exits (i.e. until a `shutdown`
    /// request arrives or [`ServerHandle::stop`] is called elsewhere).
    pub fn wait(mut self) -> H::Summary {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.service.shutdown()
    }

    /// Stop accepting, stop the workers, and return the final metrics.
    pub fn stop(mut self) -> H::Summary {
        self.shutdown.store(true, Ordering::Release);
        // Nudge the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.service.shutdown()
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `service` on it.
pub fn serve<H: RequestHandler>(service: H, addr: &str) -> std::io::Result<ServerHandle<H>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let service = service.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("sjserve-accept".into())
            .spawn(move || accept_loop(listener, addr, service, shutdown))?
    };
    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop<H: RequestHandler>(
    listener: TcpListener,
    addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = service.clone();
        let shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name("sjserve-conn".into())
            .spawn(move || handle_connection(stream, addr, service, shutdown));
    }
}

/// How long a write to a client may block before the connection is
/// declared stalled. A consumer that stops reading fills its TCP
/// receive buffer and then our send buffer; without a bound, the next
/// pushed frame would block its deliverer forever. Hitting the timeout
/// errors the write, which tears down the connection and every
/// subscription bound to it. Generous on purpose: it only fires when
/// the peer has read *nothing* for the whole interval.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);

fn handle_connection<H: RequestHandler>(
    stream: TcpStream,
    addr: SocketAddr,
    service: H,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    // The writer is shared between this request/response loop and any
    // standing-query sinks the service registers for this connection, so
    // pushed window frames interleave with responses line-atomically.
    let writer = Arc::new(Mutex::new(stream));
    let sink: Arc<dyn EmissionSink> = Arc::new(TcpSink {
        writer: Arc::clone(&writer),
    });
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                let wants_shutdown = request.verb == Verb::Shutdown;
                let response = service.handle_streaming(request, &sink);
                if wants_shutdown {
                    if sink.send(&response).is_err() {
                        // Ack failed; shut down regardless.
                    }
                    service.connection_closed(&sink);
                    shutdown.store(true, Ordering::Release);
                    // Nudge accept() so the loop observes the flag.
                    let _ = TcpStream::connect(addr);
                    return;
                }
                response
            }
            Err(e) => Response::fail(
                "",
                ErrorBody::new(codes::BAD_REQUEST, format!("unparsable request: {e}")),
            ),
        };
        if sink.send(&response).is_err() {
            break;
        }
    }
    service.connection_closed(&sink);
}

fn write_line(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut text = serde_json::to_string(response)
        .unwrap_or_else(|e| format!("{{\"id\":\"\",\"status\":\"error\",\"error\":{{\"code\":\"internal\",\"message\":\"serialize: {e}\"}}}}"));
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// Convenience for binaries: serve until shutdown, then dump metrics to
/// stderr and return them.
pub fn serve_until_shutdown(
    service: QueryService,
    addr: &str,
) -> std::io::Result<crate::metrics::StatsReport> {
    let handle = serve(service, addr)?;
    eprintln!("sjserved listening on {}", handle.addr);
    let report = handle.wait();
    eprintln!("--- final service metrics ---\n{}", report.render());
    Ok(report)
}

/// Poll until a freshly spawned server accepts connections (test helper).
pub fn wait_ready(addr: SocketAddr, budget: Duration) -> bool {
    let deadline = std::time::Instant::now() + budget;
    while std::time::Instant::now() < deadline {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}
