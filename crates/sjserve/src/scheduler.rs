//! Admission control and fair dispatch.
//!
//! The scheduler is a bounded multi-queue: one FIFO per tenant, a global
//! bound on total queued work, and a round-robin rotation over tenants so
//! a single chatty client cannot starve the others. Submission never
//! blocks — when the queue is full the request is rejected immediately
//! with a structured error, which is the behavior a load balancer wants
//! (fail fast, retry elsewhere) and the behavior an analyst understands.
//!
//! Deadlines are enforced twice. The waiting client gives up at its
//! deadline (and marks the job cancelled so a worker never starts it);
//! a worker that dequeues an already-expired job completes it as a
//! timeout without executing. A job that is already *running* when its
//! deadline passes is allowed to finish — execution is a blocking engine
//! call — but its result is discarded because the waiter is gone.
//!
//! Uses `std::sync::{Mutex, Condvar}` rather than `parking_lot` because
//! the wait paths genuinely need condition variables.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{Request, Response};

/// Queue and pool sizing.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads executing queries (max concurrency).
    pub workers: usize,
    /// Maximum requests waiting for a worker across all tenants; further
    /// submissions are rejected.
    pub max_queue: usize,
    /// Deadline applied when a request does not carry `timeout_ms`.
    pub default_timeout: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            max_queue: 32,
            default_timeout: Duration::from_secs(30),
        }
    }
}

/// One-shot rendezvous between the waiting client thread and the worker.
#[derive(Debug)]
pub struct ResponseSlot {
    state: Mutex<Option<Response>>,
    ready: Condvar,
    cancelled: AtomicBool,
}

impl ResponseSlot {
    pub fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    /// Worker side: deliver the response (a no-op for the client if it
    /// already gave up, but harmless).
    pub fn fulfill(&self, response: Response) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = Some(response);
        self.ready.notify_all();
    }

    /// Client side: wait until fulfilled or the deadline passes. On
    /// timeout the slot is marked cancelled so a worker that reaches the
    /// job later can skip execution.
    pub fn wait_until(&self, deadline: Instant) -> Option<Response> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(resp) = state.take() {
                return Some(resp);
            }
            let now = Instant::now();
            if now >= deadline {
                self.cancelled.store(true, Ordering::Release);
                return None;
            }
            let (next, _) = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }

    /// Whether the waiting client already gave up on this job.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A queued request plus everything needed to answer it.
#[derive(Debug)]
pub struct Job {
    pub request: Request,
    pub tenant: String,
    pub enqueued: Instant,
    pub deadline: Instant,
    pub slot: Arc<ResponseSlot>,
    /// Server-assigned correlation id, generated at admission; echoed on
    /// the response and stamped on traces and failure reports.
    pub query_id: String,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is at capacity (`depth` jobs waiting).
    QueueFull { depth: usize, capacity: usize },
    /// The scheduler is draining for shutdown.
    ShuttingDown,
}

#[derive(Debug, Default)]
struct SchedState {
    /// Round-robin order over tenants that currently have queued work.
    rotation: VecDeque<String>,
    /// Per-tenant FIFOs. An entry exists iff its queue is non-empty.
    queues: HashMap<String, VecDeque<Job>>,
    queued: usize,
    shutdown: bool,
}

/// The bounded, tenant-fair admission queue.
#[derive(Debug, Default)]
pub struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    config: SchedulerConfig,
}

impl Scheduler {
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            state: Mutex::new(SchedState::default()),
            work: Condvar::new(),
            config,
        }
    }

    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Enqueue a job, or reject immediately. Returns the queue depth
    /// after the push on success.
    pub fn submit(&self, job: Job) -> Result<usize, AdmissionError> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if state.queued >= self.config.max_queue {
            return Err(AdmissionError::QueueFull {
                depth: state.queued,
                capacity: self.config.max_queue,
            });
        }
        let tenant = job.tenant.clone();
        if !state.queues.contains_key(&tenant) {
            state.rotation.push_back(tenant.clone());
        }
        state.queues.entry(tenant).or_default().push_back(job);
        state.queued += 1;
        let depth = state.queued;
        drop(state);
        self.work.notify_one();
        Ok(depth)
    }

    /// Worker side: block for the next job, round-robining across
    /// tenants. Returns `None` when the scheduler shuts down (remaining
    /// jobs are drained by [`Scheduler::drain`]).
    pub fn next_job(&self) -> Option<(Job, usize)> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = Self::pop_fair(&mut state) {
                let depth = state.queued;
                return Some((job, depth));
            }
            if state.shutdown {
                return None;
            }
            state = self.work.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn pop_fair(state: &mut SchedState) -> Option<Job> {
        while let Some(tenant) = state.rotation.pop_front() {
            if let Some(queue) = state.queues.get_mut(&tenant) {
                if let Some(job) = queue.pop_front() {
                    state.queued -= 1;
                    if queue.is_empty() {
                        state.queues.remove(&tenant);
                    } else {
                        // Still has work: go to the back of the rotation.
                        state.rotation.push_back(tenant);
                    }
                    return Some(job);
                }
                state.queues.remove(&tenant);
            }
        }
        None
    }

    /// Current number of queued (not yet dispatched) jobs.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).queued
    }

    /// Stop accepting work and wake every worker so they can exit.
    /// Returns the jobs still queued so the caller can answer them.
    pub fn shutdown(&self) -> Vec<Job> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.shutdown = true;
        let mut orphans = Vec::with_capacity(state.queued);
        let tenants: Vec<String> = state.queues.keys().cloned().collect();
        for t in tenants {
            if let Some(q) = state.queues.remove(&t) {
                orphans.extend(q);
            }
        }
        state.rotation.clear();
        state.queued = 0;
        drop(state);
        self.work.notify_all();
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Verb;

    fn job(tenant: &str, id: &str) -> Job {
        Job {
            request: Request::bare(id, Verb::Query),
            tenant: tenant.to_string(),
            enqueued: Instant::now(),
            deadline: Instant::now() + Duration::from_secs(5),
            slot: ResponseSlot::new(),
            query_id: format!("q-{id}"),
        }
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            max_queue: 2,
            default_timeout: Duration::from_secs(1),
        });
        s.submit(job("a", "1")).unwrap();
        s.submit(job("a", "2")).unwrap();
        match s.submit(job("a", "3")) {
            Err(AdmissionError::QueueFull { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.depth(), 2);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            max_queue: 16,
            default_timeout: Duration::from_secs(1),
        });
        // Tenant a floods first; b submits two.
        for i in 0..4 {
            s.submit(job("a", &format!("a{i}"))).unwrap();
        }
        for i in 0..2 {
            s.submit(job("b", &format!("b{i}"))).unwrap();
        }
        let order: Vec<String> = (0..6).map(|_| s.next_job().unwrap().0.request.id).collect();
        // b's first job must come out second, not fifth: a0 b0 a1 b1 a2 a3.
        assert_eq!(order, vec!["a0", "b0", "a1", "b1", "a2", "a3"]);
    }

    #[test]
    fn shutdown_wakes_workers_and_drains() {
        let s = Arc::new(Scheduler::new(SchedulerConfig::default()));
        let worker = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.next_job().map(|(j, _)| j.request.id))
        };
        // Give the worker a moment to block, then shut down.
        std::thread::sleep(Duration::from_millis(50));
        s.submit(job("t", "will-drain")).ok();
        std::thread::sleep(Duration::from_millis(50));
        let drained = s.shutdown();
        let got = worker.join().unwrap();
        // Either the worker dispatched the job or shutdown drained it.
        match got {
            Some(id) => {
                assert_eq!(id, "will-drain");
                assert!(drained.is_empty());
            }
            None => assert_eq!(drained.len(), 1),
        }
        assert!(matches!(
            s.submit(job("t", "late")),
            Err(AdmissionError::ShuttingDown)
        ));
    }

    #[test]
    fn slot_times_out_and_cancels() {
        let slot = ResponseSlot::new();
        let got = slot.wait_until(Instant::now() + Duration::from_millis(30));
        assert!(got.is_none());
        assert!(slot.is_cancelled());
        // A late fulfill is harmless.
        slot.fulfill(Response::ok("late"));
    }

    #[test]
    fn slot_delivers_across_threads() {
        let slot = ResponseSlot::new();
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait_until(Instant::now() + Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        slot.fulfill(Response::ok("r1"));
        let got = waiter.join().unwrap().expect("delivered");
        assert_eq!(got.id, "r1");
        assert!(!slot.is_cancelled());
    }
}
