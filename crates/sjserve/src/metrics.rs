//! Service-level metrics: request counters, queue depth, latency
//! percentiles, cache hit rates, and per-tenant accounting.
//!
//! Counters are lock-free atomics; the latency histogram and the
//! per-tenant table take a short mutex only on record and snapshot. The
//! histogram uses power-of-two buckets over microseconds — 64 buckets
//! cover 1µs to ~584000 years, and a quantile is read by walking the
//! cumulative counts and reporting the bucket's geometric midpoint, which
//! bounds the relative error at √2.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

const BUCKETS: usize = 64;

/// Log₂-bucketed latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    pub fn record(&mut self, latency: Duration) {
        let us = (latency.as_micros() as u64).max(1);
        self.buckets[us.ilog2() as usize] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// The q-quantile (0 < q ≤ 1) in milliseconds, 0.0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Geometric midpoint of [2^i, 2^(i+1)) microseconds.
                let mid_us = (1u64 << i) as f64 * std::f64::consts::SQRT_2;
                return mid_us / 1000.0;
            }
        }
        self.max_us as f64 / 1000.0
    }

    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1000.0
    }

    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Per-tenant admission accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    pub tenant: String,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests that produced a response (ok or error).
    pub completed: u64,
}

/// A serializable point-in-time snapshot of every service metric,
/// returned by the `stats` verb and dumped on shutdown.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    pub uptime_ms: u64,
    pub requests_total: u64,
    pub requests_ok: u64,
    pub requests_error: u64,
    pub rejected_queue_full: u64,
    pub timeouts: u64,
    /// Requests currently executing on workers.
    pub in_flight: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: u64,
    pub queue_depth_peak: u64,
    pub latency_count: u64,
    pub latency_ms_p50: f64,
    pub latency_ms_p90: f64,
    pub latency_ms_p99: f64,
    pub latency_ms_max: f64,
    pub plan_cache_entries: u64,
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    pub result_cache_entries: u64,
    pub result_cache_bytes: u64,
    pub result_cache_hits: u64,
    pub result_cache_misses: u64,
    pub result_cache_evictions: u64,
    /// Dataflow stage cache (persisted partitions + shuffle outputs).
    #[serde(default)]
    pub stage_cache_entries: u64,
    #[serde(default)]
    pub stage_cache_bytes: u64,
    #[serde(default)]
    pub stage_cache_hits: u64,
    #[serde(default)]
    pub stage_cache_misses: u64,
    #[serde(default)]
    pub stage_cache_evictions: u64,
    /// Queries answered `degraded` (retry budget exhausted under faults).
    #[serde(default)]
    pub requests_degraded: u64,
    /// Engine task retries accumulated across all executed queries.
    #[serde(default)]
    pub engine_task_retries: u64,
    /// Engine task attempts that exhausted their retry budget.
    #[serde(default)]
    pub engine_tasks_exhausted: u64,
    /// Planner pair tests run (non-memoized `combine_pair` calls),
    /// accumulated across every plan-cache-missing solve.
    #[serde(default)]
    pub planner_pair_tests: u64,
    /// Planner pair tests answered from the memo.
    #[serde(default)]
    pub planner_memo_hits: u64,
    /// Candidate datasets the planner examined (the constraint planner
    /// only touches datasets reachable from the query's dimensions, so
    /// this stays far below catalog size × solves on large catalogs).
    #[serde(default)]
    pub planner_datasets_considered: u64,
    /// Semantic variables bound by the constraint planner.
    #[serde(default)]
    pub planner_vars_bound: u64,
    /// Per-variable estimates recomputed after `influence` invalidation.
    #[serde(default)]
    pub planner_estimate_refreshes: u64,
    /// Solves stopped by the `max_datasets` budget (answered with the
    /// retryable `search_truncated` error code).
    #[serde(default)]
    pub searches_truncated: u64,
    /// Request traces extracted from the tracer (0 when tracing is off).
    #[serde(default)]
    pub traces_recorded: u64,
    /// Total span/instant events across all extracted traces.
    #[serde(default)]
    pub trace_spans_recorded: u64,
    /// Events the tracer discarded at capacity (cumulative gauge; a
    /// non-zero value means traces may be missing spans).
    #[serde(default)]
    pub trace_spans_dropped: u64,
    /// Streaming-ingestion section; `None` from workers without a
    /// stream engine (older builds) and on reports from routers.
    #[serde(default)]
    pub streaming: Option<StreamStatsReport>,
    /// Requests that arrived over the JSON-lines transport (protocol
    /// v1: old clients, `nc` debugging).
    #[serde(default)]
    pub requests_json: u64,
    /// Requests that arrived over framed binary connections (sjwire).
    #[serde(default)]
    pub requests_binary: u64,
    pub per_tenant: Vec<TenantStats>,
}

/// Streaming-ingestion metrics: append admission, standing-query
/// lifecycle, and incremental window maintenance. Engine-side counters
/// mirror [`sjstream::StreamCounters`]; the subscription lifecycle ones
/// are service-side.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStatsReport {
    pub appends: u64,
    pub rows_accepted: u64,
    pub rows_late_dropped: u64,
    pub rows_duplicate_dropped: u64,
    /// Standing queries currently registered.
    pub subscriptions_active: u64,
    pub subscriptions_opened: u64,
    /// Subscriptions torn down by a failed solve (e.g. a truncated
    /// search) — the teardown is per-subscription, never the connection.
    pub subscriptions_failed: u64,
    /// Subscriptions closed by the client (connection end or rejected
    /// frame push).
    pub subscriptions_closed: u64,
    pub window_emissions: u64,
    /// Emissions that replaced an already-delivered window after late
    /// data re-opened it.
    pub window_re_emissions: u64,
    /// Window evaluations actually run (cache misses + invalidations);
    /// everything else was answered by the emission cache.
    pub incremental_recomputes: u64,
    /// Windows emitted `degraded` after a faulted evaluation.
    pub degraded_windows: u64,
    /// Stage-cache entries dropped by window tag invalidation.
    pub cache_invalidations: u64,
}

impl StreamStatsReport {
    pub fn render(&self) -> String {
        format!(
            "streaming: {} appends ({} rows accepted, {} late dropped, {} duplicates dropped)\n\
             subscriptions: {} active, {} opened, {} failed, {} closed\n\
             windows: {} emitted ({} re-emissions, {} degraded), \
             {} incremental recomputes, {} cache invalidations\n",
            self.appends,
            self.rows_accepted,
            self.rows_late_dropped,
            self.rows_duplicate_dropped,
            self.subscriptions_active,
            self.subscriptions_opened,
            self.subscriptions_failed,
            self.subscriptions_closed,
            self.window_emissions,
            self.window_re_emissions,
            self.degraded_windows,
            self.incremental_recomputes,
            self.cache_invalidations,
        )
    }
}

impl StatsReport {
    /// Multi-line human-readable rendering (the shutdown dump).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: {} total, {} ok, {} error, {} rejected (queue full), {} timed out\n",
            self.requests_total,
            self.requests_ok,
            self.requests_error,
            self.rejected_queue_full,
            self.timeouts
        ));
        out.push_str(&format!(
            "queue: depth {} (peak {}), in-flight {}\n",
            self.queue_depth, self.queue_depth_peak, self.in_flight
        ));
        out.push_str(&format!(
            "latency: p50 {:.2}ms, p90 {:.2}ms, p99 {:.2}ms, max {:.2}ms over {} requests\n",
            self.latency_ms_p50,
            self.latency_ms_p90,
            self.latency_ms_p99,
            self.latency_ms_max,
            self.latency_count
        ));
        out.push_str(&format!(
            "plan cache: {} entries, {} hits, {} misses\n",
            self.plan_cache_entries, self.plan_cache_hits, self.plan_cache_misses
        ));
        out.push_str(&format!(
            "result cache: {} entries ({} bytes), {} hits, {} misses, {} evictions\n",
            self.result_cache_entries,
            self.result_cache_bytes,
            self.result_cache_hits,
            self.result_cache_misses,
            self.result_cache_evictions
        ));
        out.push_str(&format!(
            "stage cache: {} entries ({} bytes), {} hits, {} misses, {} evictions\n",
            self.stage_cache_entries,
            self.stage_cache_bytes,
            self.stage_cache_hits,
            self.stage_cache_misses,
            self.stage_cache_evictions
        ));
        out.push_str(&format!(
            "faults: {} degraded responses, {} task retries, {} tasks exhausted\n",
            self.requests_degraded, self.engine_task_retries, self.engine_tasks_exhausted
        ));
        out.push_str(&format!(
            "planner: {} datasets considered, {} pair tests ({} memo hits), \
             {} vars bound, {} estimate refreshes, {} searches truncated\n",
            self.planner_datasets_considered,
            self.planner_pair_tests,
            self.planner_memo_hits,
            self.planner_vars_bound,
            self.planner_estimate_refreshes,
            self.searches_truncated
        ));
        out.push_str(&format!(
            "traces: {} recorded ({} spans), {} spans dropped\n",
            self.traces_recorded, self.trace_spans_recorded, self.trace_spans_dropped
        ));
        out.push_str(&format!(
            "transport: {} binary requests, {} json-lines requests\n",
            self.requests_binary, self.requests_json
        ));
        if let Some(streaming) = &self.streaming {
            out.push_str(&streaming.render());
        }
        for t in &self.per_tenant {
            out.push_str(&format!(
                "tenant `{}`: {} admitted, {} rejected, {} completed\n",
                t.tenant, t.admitted, t.rejected, t.completed
            ));
        }
        out
    }
}

/// One worker as a router sees it, embedded in [`RouterStatsReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerSummary {
    pub addr: String,
    pub shard_id: Option<String>,
    pub healthy: bool,
    /// Catalog fingerprint last observed on a heartbeat.
    pub catalog_epoch: u64,
    /// Datasets this worker reported owning.
    pub datasets: Vec<String>,
    /// Consecutive failed probes/calls (resets on success).
    pub consecutive_failures: u64,
}

/// A serializable snapshot of a router's metrics — the `stats` verb
/// payload of `sjrouted`, mirroring [`StatsReport`] in style. Lives here
/// (next to the protocol) so workers, routers, and clients share one
/// wire shape.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterStatsReport {
    pub uptime_ms: u64,
    /// Queries admitted and dispatched to at least one worker.
    pub routed_queries: u64,
    /// Queries whose dataset cover spanned shards and were fanned out.
    pub scatter_gather_queries: u64,
    /// Health transitions healthy → down (not probe failures; episodes).
    pub worker_markdowns: u64,
    /// Queries retried on a replica shard after a worker call failed.
    pub failovers: u64,
    /// Result-cache invalidations triggered by a worker catalog-epoch
    /// change.
    pub epoch_invalidations: u64,
    pub route_cache_hits: u64,
    pub route_cache_entries: u64,
    pub rejected_queue_full: u64,
    pub timeouts: u64,
    pub queue_depth: u64,
    pub queue_depth_peak: u64,
    /// Queries answered `degraded` (partial scatter-gather, failed
    /// failover, or a worker's own degraded answer passed through).
    pub degraded: u64,
    pub route_latency_count: u64,
    pub route_latency_ms_p50: f64,
    pub route_latency_ms_p99: f64,
    pub route_latency_ms_max: f64,
    /// Requests that arrived over the JSON-lines transport.
    #[serde(default)]
    pub requests_json: u64,
    /// Requests that arrived over framed binary connections (sjwire).
    #[serde(default)]
    pub requests_binary: u64,
    /// Standing queries currently fanned out across the fleet.
    #[serde(default)]
    pub streams_active: u64,
    /// Merged window frames pushed to router subscribers.
    #[serde(default)]
    pub stream_frames_pushed: u64,
    /// Per-worker window frames received by the merge layer (≈ frames
    /// pushed × live fan-out width when the fleet agrees).
    #[serde(default)]
    pub stream_worker_frames: u64,
    /// Merged frames that replaced an already-delivered window after
    /// late data re-opened it somewhere in the fleet.
    #[serde(default)]
    pub stream_re_emissions: u64,
    /// Append batches forwarded to workers (counted per worker hop).
    #[serde(default)]
    pub stream_appends_forwarded: u64,
    /// Workers lost mid-subscription (reader error or mark-down); the
    /// merge re-forms over the survivors.
    #[serde(default)]
    pub stream_worker_losses: u64,
    pub workers: Vec<WorkerSummary>,
    pub per_tenant: Vec<TenantStats>,
}

impl RouterStatsReport {
    /// Multi-line human-readable rendering (the shutdown dump).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "routed: {} queries ({} scatter-gather), {} degraded, {} rejected (queue full), {} timed out\n",
            self.routed_queries, self.scatter_gather_queries, self.degraded,
            self.rejected_queue_full, self.timeouts
        ));
        out.push_str(&format!(
            "failover: {} markdowns, {} failovers, {} epoch invalidations\n",
            self.worker_markdowns, self.failovers, self.epoch_invalidations
        ));
        out.push_str(&format!(
            "route cache: {} entries, {} hits\n",
            self.route_cache_entries, self.route_cache_hits
        ));
        out.push_str(&format!(
            "route latency: p50 {:.2}ms, p99 {:.2}ms, max {:.2}ms over {} queries\n",
            self.route_latency_ms_p50,
            self.route_latency_ms_p99,
            self.route_latency_ms_max,
            self.route_latency_count
        ));
        out.push_str(&format!(
            "transport: {} binary requests, {} json-lines requests\n",
            self.requests_binary, self.requests_json
        ));
        out.push_str(&format!(
            "streams: {} active, {} frames pushed ({} re-emissions) from {} worker frames, \
             {} appends forwarded, {} workers lost mid-stream\n",
            self.streams_active,
            self.stream_frames_pushed,
            self.stream_re_emissions,
            self.stream_worker_frames,
            self.stream_appends_forwarded,
            self.stream_worker_losses
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "worker {} [{}] {}: epoch {:016x}, {} datasets, {} consecutive failures\n",
                w.addr,
                w.shard_id.as_deref().unwrap_or("-"),
                if w.healthy { "up" } else { "DOWN" },
                w.catalog_epoch,
                w.datasets.len(),
                w.consecutive_failures
            ));
        }
        for t in &self.per_tenant {
            out.push_str(&format!(
                "tenant `{}`: {} admitted, {} rejected, {} completed\n",
                t.tenant, t.admitted, t.rejected, t.completed
            ));
        }
        out
    }
}

/// The live registry all request paths report into.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    requests_total: AtomicU64,
    requests_ok: AtomicU64,
    requests_error: AtomicU64,
    rejected_queue_full: AtomicU64,
    timeouts: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    requests_degraded: AtomicU64,
    engine_task_retries: AtomicU64,
    engine_tasks_exhausted: AtomicU64,
    planner_pair_tests: AtomicU64,
    planner_memo_hits: AtomicU64,
    planner_datasets_considered: AtomicU64,
    planner_vars_bound: AtomicU64,
    planner_estimate_refreshes: AtomicU64,
    searches_truncated: AtomicU64,
    traces_recorded: AtomicU64,
    trace_spans_recorded: AtomicU64,
    trace_spans_dropped: AtomicU64,
    subscriptions_opened: AtomicU64,
    subscriptions_failed: AtomicU64,
    subscriptions_closed: AtomicU64,
    requests_json: AtomicU64,
    requests_binary: AtomicU64,
    latency: Mutex<Histogram>,
    tenants: Mutex<BTreeMap<String, TenantStats>>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            requests_error: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            requests_degraded: AtomicU64::new(0),
            engine_task_retries: AtomicU64::new(0),
            engine_tasks_exhausted: AtomicU64::new(0),
            planner_pair_tests: AtomicU64::new(0),
            planner_memo_hits: AtomicU64::new(0),
            planner_datasets_considered: AtomicU64::new(0),
            planner_vars_bound: AtomicU64::new(0),
            planner_estimate_refreshes: AtomicU64::new(0),
            searches_truncated: AtomicU64::new(0),
            traces_recorded: AtomicU64::new(0),
            trace_spans_recorded: AtomicU64::new(0),
            trace_spans_dropped: AtomicU64::new(0),
            subscriptions_opened: AtomicU64::new(0),
            subscriptions_failed: AtomicU64::new(0),
            subscriptions_closed: AtomicU64::new(0),
            requests_json: AtomicU64::new(0),
            requests_binary: AtomicU64::new(0),
            latency: Mutex::new(Histogram::default()),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }
}

impl ServiceMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    pub fn request_started(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn request_finished(&self, ok: bool, latency: Duration) {
        if ok {
            self.requests_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.requests_error.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.lock().record(latency);
    }

    pub fn rejected_full(&self, tenant: &str) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
        self.tenant_entry(tenant, |t| t.rejected += 1);
    }

    pub fn timed_out(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn degraded(&self) {
        self.requests_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one execution's fault/retry accounting into the service
    /// totals (called for successful and degraded queries alike).
    pub fn engine_failures(&self, failures: &sjdf::FailureReport) {
        self.engine_task_retries
            .fetch_add(failures.task_retries, Ordering::Relaxed);
        self.engine_tasks_exhausted
            .fetch_add(failures.tasks_exhausted, Ordering::Relaxed);
    }

    pub fn degraded_count(&self) -> u64 {
        self.requests_degraded.load(Ordering::Relaxed)
    }

    /// Fold one solve's search-effort counters into the service totals.
    /// The per-request engine starts from zeroed stats, so its final
    /// reading is exactly this solve's contribution.
    pub fn planner_effort(&self, stats: &sjcore::engine::EngineStats) {
        self.planner_pair_tests
            .fetch_add(stats.pair_tests, Ordering::Relaxed);
        self.planner_memo_hits
            .fetch_add(stats.memo_hits, Ordering::Relaxed);
        self.planner_datasets_considered
            .fetch_add(stats.datasets_considered as u64, Ordering::Relaxed);
        self.planner_vars_bound
            .fetch_add(stats.vars_bound, Ordering::Relaxed);
        self.planner_estimate_refreshes
            .fetch_add(stats.estimate_refreshes, Ordering::Relaxed);
    }

    /// A solve was stopped by its dataset budget.
    pub fn search_truncated(&self) {
        self.searches_truncated.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one extracted request trace. `dropped_total` is the
    /// tracer's cumulative drop counter, stored as a gauge (the tracer
    /// never resets it, so `store` keeps the latest reading).
    pub fn trace_finished(&self, spans: u64, dropped_total: u64) {
        self.traces_recorded.fetch_add(1, Ordering::Relaxed);
        self.trace_spans_recorded
            .fetch_add(spans, Ordering::Relaxed);
        self.trace_spans_dropped
            .store(dropped_total, Ordering::Relaxed);
    }

    /// A standing query was registered.
    pub fn subscription_opened(&self) {
        self.subscriptions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A standing query was torn down by its own failed solve (the
    /// connection and the tenant's other subscriptions survive).
    pub fn subscription_failed(&self) {
        self.subscriptions_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A standing query was closed by the client side.
    pub fn subscription_closed(&self) {
        self.subscriptions_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// One request arrived on a connection of the given transport
    /// (recorded by the TCP front end; in-process embedders count as
    /// neither).
    pub fn protocol_request(&self, binary: bool) {
        if binary {
            self.requests_binary.fetch_add(1, Ordering::Relaxed);
        } else {
            self.requests_json.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Compose the streaming section of a [`StatsReport`] from the
    /// engine's counters plus the service-side lifecycle counters.
    pub fn stream_report(
        &self,
        counters: &sjstream::StreamCounters,
        active: u64,
        cache_invalidations: u64,
    ) -> StreamStatsReport {
        StreamStatsReport {
            appends: counters.appends,
            rows_accepted: counters.rows_accepted,
            rows_late_dropped: counters.rows_late_dropped,
            rows_duplicate_dropped: counters.rows_duplicate_dropped,
            subscriptions_active: active,
            subscriptions_opened: self.subscriptions_opened.load(Ordering::Relaxed),
            subscriptions_failed: self.subscriptions_failed.load(Ordering::Relaxed),
            subscriptions_closed: self.subscriptions_closed.load(Ordering::Relaxed),
            window_emissions: counters.window_emissions,
            window_re_emissions: counters.window_re_emissions,
            incremental_recomputes: counters.incremental_recomputes,
            degraded_windows: counters.degraded_windows,
            cache_invalidations,
        }
    }

    pub fn admitted(&self, tenant: &str) {
        self.tenant_entry(tenant, |t| t.admitted += 1);
    }

    pub fn completed(&self, tenant: &str) {
        self.tenant_entry(tenant, |t| t.completed += 1);
    }

    fn tenant_entry(&self, tenant: &str, f: impl FnOnce(&mut TenantStats)) {
        let mut map = self.tenants.lock();
        let entry = map
            .entry(tenant.to_string())
            .or_insert_with(|| TenantStats {
                tenant: tenant.to_string(),
                ..TenantStats::default()
            });
        f(entry);
    }

    pub fn queue_depth_changed(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    pub fn exec_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    pub fn exec_finished(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn timeouts_count(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    pub fn rejected_count(&self) -> u64 {
        self.rejected_queue_full.load(Ordering::Relaxed)
    }

    /// Snapshot everything; cache numbers are supplied by the owner of
    /// the caches so this module stays dependency-free.
    pub fn snapshot(&self, caches: CacheCounters) -> StatsReport {
        let latency = self.latency.lock();
        let per_tenant = self.tenants.lock().values().cloned().collect();
        StatsReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests_total: self.requests_total.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_error: self.requests_error.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            latency_count: latency.count(),
            latency_ms_p50: latency.quantile_ms(0.50),
            latency_ms_p90: latency.quantile_ms(0.90),
            latency_ms_p99: latency.quantile_ms(0.99),
            latency_ms_max: latency.max_ms(),
            plan_cache_entries: caches.plan_entries,
            plan_cache_hits: caches.plan_hits,
            plan_cache_misses: caches.plan_misses,
            result_cache_entries: caches.result_entries,
            result_cache_bytes: caches.result_bytes,
            result_cache_hits: caches.result_hits,
            result_cache_misses: caches.result_misses,
            result_cache_evictions: caches.result_evictions,
            stage_cache_entries: caches.stage_entries,
            stage_cache_bytes: caches.stage_bytes,
            stage_cache_hits: caches.stage_hits,
            stage_cache_misses: caches.stage_misses,
            stage_cache_evictions: caches.stage_evictions,
            requests_degraded: self.requests_degraded.load(Ordering::Relaxed),
            engine_task_retries: self.engine_task_retries.load(Ordering::Relaxed),
            engine_tasks_exhausted: self.engine_tasks_exhausted.load(Ordering::Relaxed),
            planner_pair_tests: self.planner_pair_tests.load(Ordering::Relaxed),
            planner_memo_hits: self.planner_memo_hits.load(Ordering::Relaxed),
            planner_datasets_considered: self.planner_datasets_considered.load(Ordering::Relaxed),
            planner_vars_bound: self.planner_vars_bound.load(Ordering::Relaxed),
            planner_estimate_refreshes: self.planner_estimate_refreshes.load(Ordering::Relaxed),
            searches_truncated: self.searches_truncated.load(Ordering::Relaxed),
            traces_recorded: self.traces_recorded.load(Ordering::Relaxed),
            trace_spans_recorded: self.trace_spans_recorded.load(Ordering::Relaxed),
            trace_spans_dropped: self.trace_spans_dropped.load(Ordering::Relaxed),
            requests_json: self.requests_json.load(Ordering::Relaxed),
            requests_binary: self.requests_binary.load(Ordering::Relaxed),
            // Filled in by the service, which owns the stream engine.
            streaming: None,
            per_tenant,
        }
    }
}

/// Cache counters handed to [`ServiceMetrics::snapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCounters {
    pub plan_entries: u64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub result_entries: u64,
    pub result_bytes: u64,
    pub result_hits: u64,
    pub result_misses: u64,
    pub result_evictions: u64,
    pub stage_entries: u64,
    pub stage_bytes: u64,
    pub stage_hits: u64,
    pub stage_misses: u64,
    pub stage_evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = Histogram::default();
        for ms in [1u64, 2, 2, 3, 5, 8, 13, 100, 400] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile_ms(0.5);
        let p99 = h.quantile_ms(0.99);
        assert!(p50 > 0.0);
        assert!(p50 <= p99, "p50={p50} p99={p99}");
        assert!(h.max_ms() >= 400.0);
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(Duration::from_micros(10_000)); // 10ms exactly
        }
        let p50 = h.quantile_ms(0.5);
        assert!(
            (5.0..20.0).contains(&p50),
            "p50={p50} should be within one bucket of 10ms"
        );
    }

    #[test]
    fn snapshot_collects_counters_and_tenants() {
        let m = ServiceMetrics::new();
        m.request_started();
        m.request_started();
        m.admitted("a");
        m.admitted("b");
        m.completed("a");
        m.rejected_full("b");
        m.timed_out();
        m.queue_depth_changed(7);
        m.queue_depth_changed(2);
        m.request_finished(true, Duration::from_millis(3));
        m.request_finished(false, Duration::from_millis(9));
        let s = m.snapshot(CacheCounters {
            plan_entries: 1,
            plan_hits: 4,
            plan_misses: 2,
            ..CacheCounters::default()
        });
        assert_eq!(s.requests_total, 2);
        assert_eq!(s.requests_ok, 1);
        assert_eq!(s.requests_error, 1);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_depth_peak, 7);
        assert_eq!(s.plan_cache_hits, 4);
        assert_eq!(s.per_tenant.len(), 2);
        let a = &s.per_tenant[0];
        assert_eq!((a.tenant.as_str(), a.admitted, a.completed), ("a", 1, 1));
        assert!(s.render().contains("p50"));
    }

    #[test]
    fn fault_counters_reach_the_snapshot_and_render() {
        let m = ServiceMetrics::new();
        m.degraded();
        let f = sjdf::FailureReport {
            task_retries: 5,
            tasks_exhausted: 2,
            ..sjdf::FailureReport::default()
        };
        m.engine_failures(&f);
        m.engine_failures(&f);
        let s = m.snapshot(CacheCounters::default());
        assert_eq!(s.requests_degraded, 1);
        assert_eq!(s.engine_task_retries, 10);
        assert_eq!(s.engine_tasks_exhausted, 4);
        assert_eq!(m.degraded_count(), 1);
        assert!(s.render().contains("degraded"));
    }

    #[test]
    fn trace_gauges_reach_the_snapshot_and_render() {
        let m = ServiceMetrics::new();
        m.trace_finished(12, 0);
        m.trace_finished(5, 3);
        let s = m.snapshot(CacheCounters::default());
        assert_eq!(s.traces_recorded, 2);
        assert_eq!(s.trace_spans_recorded, 17);
        // The drop counter is a cumulative gauge: latest reading wins.
        assert_eq!(s.trace_spans_dropped, 3);
        assert!(s.render().contains("traces: 2 recorded"));
    }

    #[test]
    fn router_report_round_trips_and_renders() {
        let r = RouterStatsReport {
            uptime_ms: 100,
            routed_queries: 42,
            scatter_gather_queries: 7,
            worker_markdowns: 1,
            failovers: 2,
            epoch_invalidations: 3,
            route_latency_ms_p99: 12.5,
            workers: vec![WorkerSummary {
                addr: "127.0.0.1:7301".into(),
                shard_id: Some("w0".into()),
                healthy: false,
                catalog_epoch: 0xbeef,
                datasets: vec!["rack_temps".into()],
                consecutive_failures: 4,
            }],
            ..RouterStatsReport::default()
        };
        let back: RouterStatsReport =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        let text = r.render();
        assert!(text.contains("42 queries (7 scatter-gather)"));
        assert!(text.contains("1 markdowns, 2 failovers, 3 epoch invalidations"));
        assert!(text.contains("DOWN"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let m = ServiceMetrics::new();
        m.request_started();
        m.request_finished(true, Duration::from_millis(5));
        let s = m.snapshot(CacheCounters::default());
        let back: StatsReport = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
