//! The plan-compilation cache: the upper level of the service's
//! two-level cache.
//!
//! Level 1 (here) memoizes the *derivation search*: a normalized,
//! canonicalized [`Query`] plus the engine knobs that shape plans maps to
//! the solved [`Plan`]. The search is the expensive combinatorial part of
//! ScrubJay (§5.2), and two clients asking for the same dimensions in a
//! different order land on the same entry. Level 2 is the existing
//! [`sjcore::cache::ResultCache`], keyed by [`Plan::fingerprint`], which
//! memoizes *materialized rows*; the service wires both together.

use parking_lot::Mutex;
use sjcore::engine::{Plan, Query};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: the normalized query plus every engine knob that can change
/// the solved plan. Window and step are carried as microsecond integers
/// so the key stays `Eq + Hash` without hashing raw floats.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    query: Query,
    window_us: u64,
    step_us: u64,
}

impl PlanKey {
    /// Build a key from a *canonicalized* query (aliases resolved) and
    /// the effective engine knobs. Normalization makes domain/value order
    /// irrelevant.
    ///
    /// Returns `None` for knobs no plan can be keyed on — NaN, infinite,
    /// or negative values — instead of silently collapsing them all to
    /// key 0 where they would collide with each other and with legitimate
    /// zero-window queries. Finite values beyond ~5.8e5 years saturate to
    /// `u64::MAX` microseconds (the `as` cast saturates), which keeps
    /// them distinct from every practical knob.
    pub fn new(canonical_query: &Query, window_secs: f64, step_secs: f64) -> Option<Self> {
        Some(PlanKey {
            query: canonical_query.normalized(),
            window_us: knob_to_us(window_secs)?,
            step_us: knob_to_us(step_secs)?,
        })
    }
}

/// Microsecond representation of a window/step knob; `None` when the
/// knob is not a usable duration (non-finite or negative).
fn knob_to_us(secs: f64) -> Option<u64> {
    if !secs.is_finite() || secs < 0.0 {
        return None;
    }
    Some((secs * 1e6) as u64)
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
}

/// Thread-safe memo of solved plans.
#[derive(Debug, Default)]
pub struct PlanCacheLayer {
    plans: Mutex<HashMap<PlanKey, Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCacheLayer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a solved plan, counting the hit or miss.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<Plan>> {
        let found = self.plans.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a freshly solved plan. If another thread solved the same
    /// query first, its entry wins and is returned — both plans satisfy
    /// the query, and keeping one maximizes downstream result-cache hits.
    pub fn insert(&self, key: PlanKey, plan: Plan) -> Arc<Plan> {
        let mut plans = self.plans.lock();
        Arc::clone(plans.entry(key).or_insert_with(|| Arc::new(plan)))
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.lock().len() as u64,
        }
    }

    pub fn clear(&self) {
        self.plans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcore::engine::QueryValue;

    fn q(domains: &[&str], values: &[&str]) -> Query {
        Query {
            domains: domains.iter().map(|s| s.to_string()).collect(),
            values: values.iter().map(|v| QueryValue::dim(v)).collect(),
        }
    }

    #[test]
    fn order_insensitive_keys() {
        let a = PlanKey::new(&q(&["rack", "job"], &["heat", "application"]), 120.0, 60.0).unwrap();
        let b = PlanKey::new(&q(&["job", "rack"], &["application", "heat"]), 120.0, 60.0).unwrap();
        assert_eq!(a, b);
        let c = PlanKey::new(&q(&["job", "rack"], &["application", "heat"]), 300.0, 60.0).unwrap();
        assert_ne!(a, c, "different window must be a different key");
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = PlanCacheLayer::new();
        let key = PlanKey::new(&q(&["rack"], &["heat"]), 120.0, 60.0).unwrap();
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), Plan::load("sensors"));
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }

    #[test]
    fn invalid_knobs_are_rejected_not_collapsed_to_zero() {
        // Regression: NaN, infinities, and negatives used to all cast to
        // key 0 via `as u64`, colliding with each other and with a real
        // zero-window query.
        let query = q(&["rack"], &["heat"]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -1e-9] {
            assert!(PlanKey::new(&query, bad, 60.0).is_none(), "window {bad}");
            assert!(PlanKey::new(&query, 60.0, bad).is_none(), "step {bad}");
        }
        // A genuine zero window remains a valid, unique key.
        let zero = PlanKey::new(&query, 0.0, 0.0).unwrap();
        let normal = PlanKey::new(&query, 120.0, 60.0).unwrap();
        assert_ne!(zero, normal);
        // Huge finite knobs saturate but stay distinct from zero.
        let huge = PlanKey::new(&query, 1e300, 60.0).unwrap();
        assert_ne!(huge, PlanKey::new(&query, 0.0, 60.0).unwrap());
    }

    #[test]
    fn first_insert_wins_races() {
        let cache = PlanCacheLayer::new();
        let key = PlanKey::new(&q(&["rack"], &["heat"]), 120.0, 60.0).unwrap();
        let first = cache.insert(key.clone(), Plan::load("a"));
        let second = cache.insert(key, Plan::load("b"));
        assert_eq!(first, second, "racing insert must return the winner");
    }
}
