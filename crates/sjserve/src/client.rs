//! Typed blocking client for the JSON-lines protocol.
//!
//! One TCP connection, requests answered in order. Used by
//! `sjq --server` and by the integration tests; embedders wanting
//! zero-copy access should hold a [`QueryService`] directly instead.
//!
//! [`QueryService`]: crate::service::QueryService

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{ErrorBody, QuerySpec, Request, Response, Verb};

/// Client-side failure: transport, framing, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or read/write failure.
    Io(std::io::Error),
    /// The server sent something unparsable.
    Protocol(String),
    /// The server answered with a structured error.
    Server(ErrorBody),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: code={} {}", e.code, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: String,
    next_id: u64,
}

impl Client {
    /// Connect as the anonymous tenant.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_as(addr, "")
    }

    /// Connect with a tenant name (the fair-queueing bucket).
    pub fn connect_as(addr: impl ToSocketAddrs, tenant: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            tenant: tenant.to_string(),
            next_id: 0,
        })
    }

    /// Cap how long a read may block (useful in tests).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("{}-{}", self.tenant, self.next_id)
    }

    /// Send one request and block for its response. The response's `id`
    /// must echo the request's; anything else is a protocol error.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let response: Response = serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("decode: {e}")))?;
        if !response.id.is_empty() && response.id != request.id {
            return Err(ClientError::Protocol(format!(
                "response id `{}` does not match request id `{}`",
                response.id, request.id
            )));
        }
        Ok(response)
    }

    /// `query`: execute and return the ok-response, or the server error.
    pub fn query(
        &mut self,
        spec: QuerySpec,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.query_inner(spec, timeout_ms, false)
    }

    /// `query` with `trace: true`: like [`Client::query`], but the
    /// response carries a [`crate::protocol::TraceSummary`] with the
    /// query's text timeline and Chrome trace JSON.
    pub fn query_traced(
        &mut self,
        spec: QuerySpec,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.query_inner(spec, timeout_ms, true)
    }

    fn query_inner(
        &mut self,
        spec: QuerySpec,
        timeout_ms: Option<u64>,
        trace: bool,
    ) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let mut request = Request::query(&id, &self.tenant, spec).with_proto();
        request.timeout_ms = timeout_ms;
        request.trace = if trace { Some(true) } else { None };
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// Register a standing query (`query` with `subscribe: true`) and
    /// return its [`crate::protocol::SubscriptionAck`] response. After
    /// this succeeds the server pushes unsolicited window frames on
    /// this connection — read them with [`Client::next_frame`]; other
    /// request methods on this connection would misattribute frames to
    /// their own responses. Use a separate connection for appends.
    pub fn subscribe(&mut self, spec: QuerySpec) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let request = Request::subscribe(&id, &self.tenant, spec).with_proto();
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// `append`: push one batch into a streamed dataset and return the
    /// [`crate::protocol::AppendAck`] response. Do not mix with
    /// [`Client::subscribe`] on one connection (pushed frames would
    /// interleave with the ack).
    pub fn append(&mut self, batch: sjstream::AppendBatch) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let request = Request::append(&id, &self.tenant, batch).with_proto();
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// Block for the next pushed frame on a subscribed connection: a
    /// window emission (`response.window`), or an error frame tearing
    /// down one subscription.
    pub fn next_frame(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("decode: {e}")))
    }

    /// `explain`: solve without executing.
    pub fn explain(&mut self, spec: QuerySpec) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let request = Request::explain(&id, &self.tenant, spec).with_proto();
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// `stats`: service metrics snapshot.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Stats).with_proto())?;
        Self::expect_ok(response)
    }

    /// `health`: liveness probe.
    pub fn health(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Health).with_proto())?;
        Self::expect_ok(response)
    }

    /// `catalog`: the worker's shard manifest (dataset names + schemas +
    /// epoch). The router uses this to build its planning catalog.
    pub fn catalog(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Catalog).with_proto())?;
        Self::expect_ok(response)
    }

    /// `shutdown`: ask the server to stop.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Shutdown).with_proto())?;
        Self::expect_ok(response)
    }

    fn expect_ok(response: Response) -> Result<Response, ClientError> {
        if response.is_ok() {
            Ok(response)
        } else {
            Err(ClientError::Server(response.error.unwrap_or_else(|| {
                ErrorBody::new("internal", "error response without body")
            })))
        }
    }
}
