//! Typed blocking client for the service protocol.
//!
//! One TCP connection, requests answered in order. By default the
//! client speaks the framed binary transport (a [`sjwire::Hello`] /
//! [`sjwire::HelloAck`] exchange, then CRC-checked frames carrying
//! columnar row payloads); [`Client::connect_json`] keeps the original
//! JSON-lines transport for debugging and old servers. Used by
//! `sjq --server`, by `sjrouted`'s worker hops, and by the integration
//! tests; embedders wanting zero-copy access should hold a
//! [`QueryService`] directly instead.
//!
//! [`QueryService`]: crate::service::QueryService

use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{ErrorBody, QuerySpec, Request, Response, Verb, WireInfo};
use crate::wire::{decode_response, encode_request, encode_request_plain};
use sjwire::{read_frame, write_frame, Hello, HelloAck, MsgType, WireError};

/// Client-side failure: transport, framing, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or read/write failure.
    Io(std::io::Error),
    /// The server sent something unparsable.
    Protocol(String),
    /// The server answered with a structured error.
    Server(ErrorBody),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: code={} {}", e.code, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// Which protocol this connection negotiated.
enum Transport {
    /// One JSON object per line, both directions.
    JsonLines,
    /// CRC-checked frames; `columnar` is the negotiated payload codec.
    Binary { columnar: bool },
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: String,
    next_id: u64,
    transport: Transport,
    /// What the connection negotiated (see [`Client::wire_info`]).
    wire: WireInfo,
    /// Pushed frames that arrived while waiting for a request's
    /// response (binary transport only — frame types disambiguate).
    pending: VecDeque<Response>,
}

impl Client {
    /// Connect as the anonymous tenant (binary transport).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_as(addr, "")
    }

    /// Connect with a tenant name (the fair-queueing bucket), speaking
    /// the framed binary transport.
    pub fn connect_as(addr: impl ToSocketAddrs, tenant: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let hello = Hello::default();
        let payload = serde_json::to_vec(&hello).expect("hello serializes");
        write_frame(&mut writer, MsgType::Hello, &payload)?;
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(WireError::Io(e)) => return Err(e),
            Err(e) => return Err(bad(format!("handshake: {e}"))),
        };
        if frame.msg_type != MsgType::HelloAck {
            return Err(bad(format!(
                "handshake: unexpected {:?} frame",
                frame.msg_type
            )));
        }
        let ack: HelloAck = serde_json::from_slice(&frame.payload)
            .map_err(|e| bad(format!("handshake: bad ack: {e}")))?;
        let columnar = ack.codec == sjwire::CODEC_COLUMNAR;
        Ok(Client {
            reader,
            writer,
            tenant: tenant.to_string(),
            next_id: 0,
            transport: Transport::Binary { columnar },
            wire: WireInfo {
                wire_version: ack.wire_version,
                codec: ack.codec,
            },
            pending: VecDeque::new(),
        })
    }

    /// Connect as the anonymous tenant over plain JSON-lines.
    pub fn connect_json(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_json_as(addr, "")
    }

    /// Connect over the original JSON-lines transport: what an old
    /// client, a shell script piping into `nc`, or a debugging session
    /// speaks. Works against every server version.
    pub fn connect_json_as(addr: impl ToSocketAddrs, tenant: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            tenant: tenant.to_string(),
            next_id: 0,
            transport: Transport::JsonLines,
            wire: WireInfo {
                wire_version: crate::protocol::PROTO_VERSION,
                codec: sjwire::CODEC_JSON_LINES.into(),
            },
            pending: VecDeque::new(),
        })
    }

    /// What this connection negotiated: wire version and payload codec.
    pub fn wire_info(&self) -> &WireInfo {
        &self.wire
    }

    /// Cap how long a read may block (useful in tests).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// A clone of the underlying socket, so an owner parked in
    /// [`Client::next_frame`] on another thread can be unblocked with
    /// `shutdown(Shutdown::Both)`.
    pub fn socket_handle(&self) -> std::io::Result<TcpStream> {
        self.writer.try_clone()
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("{}-{}", self.tenant, self.next_id)
    }

    /// Send one request and block for its response. The response's `id`
    /// must echo the request's; anything else is a protocol error. On
    /// the binary transport, pushed window frames that arrive first are
    /// queued for [`Client::next_frame`] instead of being misread as
    /// the response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.transport {
            Transport::JsonLines => {
                let mut line = serde_json::to_string(request)
                    .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
                line.push('\n');
                self.writer.write_all(line.as_bytes())?;
                self.writer.flush()?;
                let response = self.read_json_message()?;
                Self::check_id(&response, request)?;
                Ok(response)
            }
            Transport::Binary { columnar } => {
                let payload = if columnar {
                    encode_request(request)
                } else {
                    encode_request_plain(request)
                };
                write_frame(&mut self.writer, MsgType::Request, &payload)?;
                loop {
                    let frame = read_frame(&mut self.reader)?;
                    let response = decode_response(&frame.payload)?;
                    match frame.msg_type {
                        MsgType::Response => {
                            Self::check_id(&response, request)?;
                            return Ok(response);
                        }
                        MsgType::WindowFrame => self.pending.push_back(response),
                        other => {
                            return Err(ClientError::Protocol(format!(
                                "unexpected {other:?} frame while awaiting a response"
                            )))
                        }
                    }
                }
            }
        }
    }

    fn check_id(response: &Response, request: &Request) -> Result<(), ClientError> {
        if !response.id.is_empty() && response.id != request.id {
            return Err(ClientError::Protocol(format!(
                "response id `{}` does not match request id `{}`",
                response.id, request.id
            )));
        }
        Ok(())
    }

    fn read_json_message(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("decode: {e}")))
    }

    /// `query`: execute and return the ok-response, or the server error.
    pub fn query(
        &mut self,
        spec: QuerySpec,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.query_inner(spec, timeout_ms, false)
    }

    /// `query` with `trace: true`: like [`Client::query`], but the
    /// response carries a [`crate::protocol::TraceSummary`] with the
    /// query's text timeline and Chrome trace JSON.
    pub fn query_traced(
        &mut self,
        spec: QuerySpec,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.query_inner(spec, timeout_ms, true)
    }

    fn query_inner(
        &mut self,
        spec: QuerySpec,
        timeout_ms: Option<u64>,
        trace: bool,
    ) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let mut request = Request::query(&id, &self.tenant, spec).with_proto();
        request.timeout_ms = timeout_ms;
        request.trace = if trace { Some(true) } else { None };
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// Register a standing query (`query` with `subscribe: true`) and
    /// return its [`crate::protocol::SubscriptionAck`] response. After
    /// this succeeds the server pushes unsolicited window frames on
    /// this connection — read them with [`Client::next_frame`]. On the
    /// JSON-lines transport, other request methods on a subscribed
    /// connection would misattribute frames to their own responses; the
    /// binary transport disambiguates by frame type. Use a separate
    /// connection for appends either way.
    pub fn subscribe(&mut self, spec: QuerySpec) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let request = Request::subscribe(&id, &self.tenant, spec).with_proto();
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// `append`: push one batch into a streamed dataset and return the
    /// [`crate::protocol::AppendAck`] response. Do not mix with
    /// [`Client::subscribe`] on one connection.
    pub fn append(&mut self, batch: sjstream::AppendBatch) -> Result<Response, ClientError> {
        self.append_inner(batch, false)
    }

    /// `append` with `bulk: true`: ingest without sweeping windows. A
    /// later non-bulk append — [`Client::flush`] works — runs one sweep
    /// covering everything ingested since.
    pub fn append_bulk(&mut self, batch: sjstream::AppendBatch) -> Result<Response, ClientError> {
        self.append_inner(batch, true)
    }

    /// Explicit end-of-backfill marker: an empty non-bulk append that
    /// sweeps every window the preceding bulk appends touched.
    pub fn flush(
        &mut self,
        dataset: &str,
        source: &str,
        clock_us: i64,
    ) -> Result<Response, ClientError> {
        self.append_inner(
            sjstream::AppendBatch {
                dataset: dataset.into(),
                source: source.into(),
                source_clock_us: clock_us,
                rows: Vec::new(),
            },
            false,
        )
    }

    fn append_inner(
        &mut self,
        batch: sjstream::AppendBatch,
        bulk: bool,
    ) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let mut request = Request::append(&id, &self.tenant, batch).with_proto();
        request.bulk = if bulk { Some(true) } else { None };
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// Block for the next pushed frame on a subscribed connection: a
    /// window emission (`response.window`), or an error frame tearing
    /// down one subscription.
    pub fn next_frame(&mut self) -> Result<Response, ClientError> {
        if let Some(queued) = self.pending.pop_front() {
            return Ok(queued);
        }
        match self.transport {
            Transport::JsonLines => self.read_json_message(),
            Transport::Binary { .. } => {
                let frame = read_frame(&mut self.reader)?;
                Ok(decode_response(&frame.payload)?)
            }
        }
    }

    /// `explain`: solve without executing.
    pub fn explain(&mut self, spec: QuerySpec) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let request = Request::explain(&id, &self.tenant, spec).with_proto();
        let response = self.call(&request)?;
        Self::expect_ok(response)
    }

    /// `stats`: service metrics snapshot.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Stats).with_proto())?;
        Self::expect_ok(response)
    }

    /// `health`: liveness probe.
    pub fn health(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Health).with_proto())?;
        Self::expect_ok(response)
    }

    /// `catalog`: the worker's shard manifest (dataset names + schemas +
    /// epoch). The router uses this to build its planning catalog.
    pub fn catalog(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Catalog).with_proto())?;
        Self::expect_ok(response)
    }

    /// `shutdown`: ask the server to stop.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let response = self.call(&Request::bare(&id, Verb::Shutdown).with_proto())?;
        Self::expect_ok(response)
    }

    fn expect_ok(response: Response) -> Result<Response, ClientError> {
        if response.is_ok() {
            Ok(response)
        } else {
            Err(ClientError::Server(response.error.unwrap_or_else(|| {
                ErrorBody::new("internal", "error response without body")
            })))
        }
    }
}
