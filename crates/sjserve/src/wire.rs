//! Binary payload codec for [`Request`] / [`Response`] messages.
//!
//! The framing, CRC, and lane codecs live in `sjwire`, which knows
//! nothing about this crate's message types. This module is the glue: a
//! message becomes a small JSON *envelope* (every field except the hot
//! row payloads, so new optional fields keep working without a codec
//! change) followed by binary *sections* carrying the rows themselves as
//! columnar lanes — typed arrays, validity bitmaps, and string dicts —
//! instead of rendering every cell through JSON.
//!
//! Payload layout (inside a [`sjwire::Frame`], which adds the CRC):
//!
//! ```text
//! [env_len u32 LE] [envelope JSON bytes] [nsec u8]
//! nsec × sections: [id u8] [len u32 LE] [bytes]
//! ```
//!
//! Section ids:
//!
//! | id | message  | carries                | codec                |
//! |----|----------|------------------------|----------------------|
//! | 1  | Request  | `append.rows`          | value lanes          |
//! | 2  | Response | `result.rows`          | dict-coded str table |
//! | 3  | Response | `window.rows`          | dict-coded str table |
//!
//! Empty row sets ship no section at all (the envelope already carries
//! the empty `Vec`). Unknown section ids are skipped on decode, so a
//! newer peer can add sections without breaking this build.

use sjwire::codec::{decode_rows, decode_str_rows, encode_rows, encode_str_rows, Reader};
use sjwire::WireError;

use crate::protocol::{Request, Response};

/// Section id: `Request.append.rows` as columnar value lanes.
pub const SEC_APPEND_ROWS: u8 = 1;
/// Section id: `Response.result.rows` as a dict-coded string table.
pub const SEC_RESULT_ROWS: u8 = 2;
/// Section id: `Response.window.rows` as a dict-coded string table.
pub const SEC_WINDOW_ROWS: u8 = 3;

fn put_section(out: &mut Vec<u8>, id: u8, bytes: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn assemble(envelope: &[u8], sections: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        4 + envelope.len() + 1 + sections.iter().map(|(_, b)| 5 + b.len()).sum::<usize>(),
    );
    out.extend_from_slice(&(envelope.len() as u32).to_le_bytes());
    out.extend_from_slice(envelope);
    out.push(sections.len() as u8);
    for (id, bytes) in sections {
        put_section(&mut out, *id, bytes);
    }
    out
}

/// `(section id, section bytes)` pairs trailing the envelope.
type Sections<'a> = Vec<(u8, &'a [u8])>;

/// Split the payload into (envelope bytes, sections).
fn disassemble(payload: &[u8]) -> Result<(&[u8], Sections<'_>), WireError> {
    let mut r = Reader::new(payload);
    let env_len = r.u32()? as usize;
    let envelope = r.take(env_len)?;
    let nsec = r.u8()?;
    let mut sections = Vec::with_capacity(nsec as usize);
    for _ in 0..nsec {
        let id = r.u8()?;
        let len = r.u32()? as usize;
        sections.push((id, r.take(len)?));
    }
    if r.remaining() != 0 {
        return Err(WireError::Decode(format!(
            "{} trailing payload bytes after sections",
            r.remaining()
        )));
    }
    Ok((envelope, sections))
}

fn bad_json(what: &str, err: serde_json::Error) -> WireError {
    WireError::Decode(format!("{what} envelope: {err}"))
}

/// Encode a request with rows left inline in the JSON envelope — the
/// negotiated non-columnar fallback codec. Framing and CRC still apply;
/// [`decode_request`] handles both forms.
pub fn encode_request_plain(req: &Request) -> Vec<u8> {
    assemble(
        &serde_json::to_vec(req).expect("request envelope serializes"),
        &[],
    )
}

/// Encode a response with rows left inline in the JSON envelope (see
/// [`encode_request_plain`]).
pub fn encode_response_plain(resp: &Response) -> Vec<u8> {
    assemble(
        &serde_json::to_vec(resp).expect("response envelope serializes"),
        &[],
    )
}

/// Encode a request as an envelope plus columnar append rows.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut sections = Vec::new();
    let envelope = match &req.append {
        Some(batch) if !batch.rows.is_empty() => {
            sections.push((SEC_APPEND_ROWS, encode_rows(&batch.rows)));
            let mut slim = req.clone();
            slim.append.as_mut().expect("append present").rows = Vec::new();
            serde_json::to_vec(&slim).expect("request envelope serializes")
        }
        _ => serde_json::to_vec(req).expect("request envelope serializes"),
    };
    assemble(&envelope, &sections)
}

/// Decode a request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let (envelope, sections) = disassemble(payload)?;
    let mut req: Request = serde_json::from_slice(envelope).map_err(|e| bad_json("request", e))?;
    for (id, bytes) in sections {
        // Anything but the one known section id is skipped for forward
        // compatibility.
        if id == SEC_APPEND_ROWS {
            let rows = decode_rows(&mut Reader::new(bytes))?;
            match req.append.as_mut() {
                Some(batch) => batch.rows = rows,
                None => {
                    return Err(WireError::Decode(
                        "append-rows section without append envelope".into(),
                    ))
                }
            }
        }
    }
    Ok(req)
}

/// Encode a response as an envelope plus columnar row sections.
///
/// Takes `&mut` to detach the hot row vectors while the envelope
/// serializes (they are restored before returning, so the response is
/// unchanged to the caller) — a multi-hundred-kilobyte result would
/// otherwise be deep-cloned just to slim it out of the JSON.
pub fn encode_response(resp: &mut Response) -> Vec<u8> {
    let mut sections = Vec::new();
    let result_rows = resp
        .result
        .as_mut()
        .map(|r| std::mem::take(&mut r.rows))
        .filter(|rows| !rows.is_empty());
    let window_rows = resp
        .window
        .as_mut()
        .map(|w| std::mem::take(&mut w.rows))
        .filter(|rows| !rows.is_empty());
    if let Some(rows) = &result_rows {
        sections.push((SEC_RESULT_ROWS, encode_str_rows(rows)));
    }
    if let Some(rows) = &window_rows {
        sections.push((SEC_WINDOW_ROWS, encode_str_rows(rows)));
    }
    let envelope = serde_json::to_vec(resp).expect("response envelope serializes");
    if let Some(rows) = result_rows {
        resp.result.as_mut().expect("result present").rows = rows;
    }
    if let Some(rows) = window_rows {
        resp.window.as_mut().expect("window present").rows = rows;
    }
    assemble(&envelope, &sections)
}

/// Decode a response payload produced by [`encode_response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (envelope, sections) = disassemble(payload)?;
    let mut resp: Response =
        serde_json::from_slice(envelope).map_err(|e| bad_json("response", e))?;
    for (id, bytes) in sections {
        match id {
            SEC_RESULT_ROWS => {
                let rows = decode_str_rows(&mut Reader::new(bytes))?;
                match resp.result.as_mut() {
                    Some(result) => result.rows = rows,
                    None => {
                        return Err(WireError::Decode(
                            "result-rows section without result envelope".into(),
                        ))
                    }
                }
            }
            SEC_WINDOW_ROWS => {
                let rows = decode_str_rows(&mut Reader::new(bytes))?;
                match resp.window.as_mut() {
                    Some(window) => window.rows = rows,
                    None => {
                        return Err(WireError::Decode(
                            "window-rows section without window envelope".into(),
                        ))
                    }
                }
            }
            _ => {} // forward compatibility: skip unknown sections
        }
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{codes, ErrorBody, QueryResult, QuerySpec, WireInfo};
    use sjcore::{Row, Value};

    fn sample_batch(nrows: usize) -> sjstream::AppendBatch {
        sjstream::AppendBatch {
            dataset: "rack_temps".into(),
            source: "sensor-3".into(),
            source_clock_us: 1_000_000,
            rows: (0..nrows)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Float(if i % 3 == 0 { f64::NAN } else { i as f64 / 7.0 }),
                        Value::str(format!("node-{}", i % 4)),
                        if i % 5 == 0 {
                            Value::Null
                        } else {
                            Value::Bool(i % 2 == 0)
                        },
                    ])
                })
                .collect(),
        }
    }

    #[test]
    fn requests_round_trip_with_append_rows() {
        let req = Request::append("a-1", "teamA", sample_batch(37)).with_proto();
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).unwrap();
        assert_eq!(back.id, req.id);
        assert_eq!(back.verb, req.verb);
        let (a, b) = (back.append.unwrap(), req.append.unwrap());
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            for (p, q) in x.values().iter().zip(y.values()) {
                match (p, q) {
                    (Value::Float(f), Value::Float(g)) => {
                        assert_eq!(f.to_bits(), g.to_bits())
                    }
                    _ => assert_eq!(p, q),
                }
            }
        }
    }

    #[test]
    fn plain_requests_round_trip() {
        let req = Request::query("q-1", "t", QuerySpec::new(["job"], ["heat"]));
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip_with_result_rows() {
        let mut resp = Response::ok("q-1");
        resp.result = Some(QueryResult {
            columns: vec!["job".into(), "heat".into()],
            rows: (0..50)
                .map(|i| vec![format!("job-{}", i % 5), format!("{}.5", i)])
                .collect(),
            row_count: 50,
            truncated: false,
            plan_cache_hit: true,
            result_cache_hit: false,
            elapsed_ms: 1.25,
            engine_metrics: None,
        });
        resp.wire = Some(WireInfo {
            wire_version: sjwire::WIRE_VERSION,
            codec: sjwire::CODEC_COLUMNAR.into(),
        });
        let back = decode_response(&encode_response(&mut resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn responses_round_trip_with_window_rows() {
        let mut resp = Response::ok("s-1");
        resp.query_id = Some("q000001-s-1".into());
        resp.window = Some(sjstream::WindowEmission {
            query_id: "q000001-s-1".into(),
            window_id: 7,
            start_us: 420_000_000,
            end_us: 480_000_000,
            watermark_us: 481_000_000,
            re_emission: true,
            degraded: false,
            error: None,
            columns: vec!["time".into(), "heat".into()],
            rows: vec![
                vec!["420".into(), "1.5".into()],
                vec!["440".into(), "2.5".into()],
            ],
        });
        let back = decode_response(&encode_response(&mut resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_responses_round_trip() {
        let mut resp = Response::fail("r-9", ErrorBody::new(codes::QUEUE_FULL, "full"));
        let back = decode_response(&encode_response(&mut resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn orphan_sections_are_rejected() {
        // An append-rows section whose envelope has no append payload
        // must be an error, not silently dropped rows.
        let req = Request::bare("x", crate::protocol::Verb::Health);
        let envelope = serde_json::to_vec(&req).unwrap();
        let rows = encode_rows(&[Row::new(vec![Value::Int(1)])]);
        let payload = assemble(&envelope, &[(SEC_APPEND_ROWS, rows)]);
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let req = Request::query("q", "t", QuerySpec::new(["job"], ["heat"]));
        let envelope = serde_json::to_vec(&req).unwrap();
        let payload = assemble(&envelope, &[(200, b"future bytes".to_vec())]);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn truncated_payloads_error_without_panicking() {
        let req = Request::append("a-1", "t", sample_batch(8));
        let bytes = encode_request(&req);
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
