//! The wire protocol: JSON-lines requests and responses.
//!
//! Every message is one JSON object on one line, terminated by `\n`.
//! Requests carry a client-chosen `id` that is echoed on the response, so
//! a client may pipeline several requests over one connection and match
//! replies by id. All the payload variants live on [`Response`] as
//! optional fields rather than an enum, which keeps the format obvious in
//! a network capture and trivially extensible.

use serde::{Deserialize, Serialize};
use sjdf::metrics::MetricsReport;

use crate::metrics::{RouterStatsReport, StatsReport};

/// The wire-protocol version this build speaks. Requests and responses
/// carry it as `proto_version` (absent on messages from older peers);
/// a peer seeing a version other than its own answers with a structured
/// [`codes::PROTO_MISMATCH`] error instead of misparsing payloads, which
/// is what a router↔worker rolling upgrade needs to fail loudly.
pub const PROTO_VERSION: u32 = 1;

/// What the client wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Verb {
    /// Solve and execute; returns rows. With `subscribe: true` the
    /// query instead becomes *standing*: the server acknowledges it and
    /// then pushes a window frame on this connection every time new
    /// appends ripen or re-open a window.
    Query,
    /// Solve only; returns the plan without executing it.
    Explain,
    /// Append a batch of rows to a streamed dataset (see
    /// [`sjstream::AppendBatch`]); returns an [`AppendAck`] after all
    /// standing queries have been swept.
    Append,
    /// Service metrics snapshot.
    Stats,
    /// Liveness probe: dataset names and uptime.
    Health,
    /// Catalog description: dataset names and schemas, for routers that
    /// plan against this worker's shard without holding its data.
    Catalog,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

/// One requested value dimension, optionally units-constrained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueSpec {
    pub dimension: String,
    pub units: Option<String>,
}

impl ValueSpec {
    pub fn dim(dimension: &str) -> Self {
        ValueSpec {
            dimension: dimension.into(),
            units: None,
        }
    }

    pub fn with_units(dimension: &str, units: &str) -> Self {
        ValueSpec {
            dimension: dimension.into(),
            units: Some(units.into()),
        }
    }
}

/// The query payload for `query` and `explain` verbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Domain dimensions the result must be defined over.
    pub domains: Vec<String>,
    /// Value dimensions the result must measure.
    pub values: Vec<ValueSpec>,
    /// Interpolation-join window override (seconds).
    pub window_secs: Option<f64>,
    /// Explode-continuous step override (seconds).
    pub step_secs: Option<f64>,
    /// Maximum rows returned; further rows are dropped and the response
    /// is marked `truncated`.
    pub limit: Option<usize>,
}

impl QuerySpec {
    /// A spec over plain dimension names with service defaults.
    pub fn new(
        domains: impl IntoIterator<Item = &'static str>,
        values: impl IntoIterator<Item = &'static str>,
    ) -> Self {
        QuerySpec {
            domains: domains.into_iter().map(String::from).collect(),
            values: values.into_iter().map(ValueSpec::dim).collect(),
            window_secs: None,
            step_secs: None,
            limit: None,
        }
    }
}

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: String,
    pub verb: Verb,
    /// Fair-queueing bucket; empty string means the anonymous tenant.
    pub tenant: String,
    /// Payload for `query` / `explain`; ignored by other verbs.
    pub query: Option<QuerySpec>,
    /// Per-request deadline; the service default applies when absent.
    pub timeout_ms: Option<u64>,
    /// When `Some(true)`, the response carries a [`TraceSummary`] for
    /// this query (and server-side tracing is switched on if it was not
    /// already). Optional so requests from older clients still parse.
    pub trace: Option<bool>,
    /// Protocol version the sender speaks. `None` (the wire default, so
    /// messages from older peers still parse) is accepted as "unknown,
    /// assume compatible"; a `Some` other than [`PROTO_VERSION`] is
    /// answered with a [`codes::PROTO_MISMATCH`] error.
    pub proto_version: Option<u32>,
    /// `Some(true)` on a `query` request registers it as a standing
    /// query instead of executing once: the server replies with a
    /// [`SubscriptionAck`] and thereafter pushes window frames on this
    /// connection as appends arrive. Requires a streaming-capable
    /// transport; over a non-streaming path the server answers
    /// [`codes::STREAM_UNSUPPORTED`].
    pub subscribe: Option<bool>,
    /// Payload for the `append` verb; ignored by other verbs.
    pub append: Option<sjstream::AppendBatch>,
    /// `Some(true)` on an `append` marks it part of a bulk backfill:
    /// the batch is ingested (clocks advanced, duplicates/late rows
    /// dropped, touched windows invalidated) but the window sweep is
    /// deferred. The next non-bulk append — an empty-rows batch works
    /// as an explicit flush — runs one sweep covering everything
    /// ingested since, emitting the same final frames row-at-a-time
    /// appends would have.
    pub bulk: Option<bool>,
}

impl Request {
    pub fn query(id: &str, tenant: &str, spec: QuerySpec) -> Self {
        Request {
            id: id.into(),
            verb: Verb::Query,
            tenant: tenant.into(),
            query: Some(spec),
            timeout_ms: None,
            trace: None,
            proto_version: None,
            subscribe: None,
            append: None,
            bulk: None,
        }
    }

    pub fn explain(id: &str, tenant: &str, spec: QuerySpec) -> Self {
        Request {
            verb: Verb::Explain,
            ..Request::query(id, tenant, spec)
        }
    }

    /// A standing-query registration: `query` with `subscribe: true`.
    pub fn subscribe(id: &str, tenant: &str, spec: QuerySpec) -> Self {
        Request {
            subscribe: Some(true),
            ..Request::query(id, tenant, spec)
        }
    }

    /// An `append` request carrying one batch for a streamed dataset.
    pub fn append(id: &str, tenant: &str, batch: sjstream::AppendBatch) -> Self {
        Request {
            verb: Verb::Append,
            tenant: tenant.into(),
            append: Some(batch),
            ..Request::bare(id, Verb::Append)
        }
    }

    /// A payload-less request (`stats` / `health` / `shutdown`).
    pub fn bare(id: &str, verb: Verb) -> Self {
        Request {
            id: id.into(),
            verb,
            tenant: String::new(),
            query: None,
            timeout_ms: None,
            trace: None,
            proto_version: None,
            subscribe: None,
            append: None,
            bulk: None,
        }
    }

    /// Stamp the sender's protocol version (builder-style). The router
    /// stamps every request it forwards so version skew across a sharded
    /// deployment is caught at the first hop.
    pub fn with_proto(mut self) -> Self {
        self.proto_version = Some(PROTO_VERSION);
        self
    }

    /// Whether this request asked for a per-query trace.
    pub fn wants_trace(&self) -> bool {
        self.trace == Some(true)
    }
}

/// Machine-readable error codes. Stable strings, not an enum, so old
/// clients degrade gracefully when a server grows new codes.
pub mod codes {
    /// The admission queue was full; retry later.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The request's deadline elapsed before a result was produced.
    pub const TIMEOUT: &str = "timeout";
    /// The engine proved no derivation sequence satisfies the query.
    pub const NO_SOLUTION: &str = "no_solution";
    /// The derivation search hit its dataset budget before exhausting
    /// the space. Unlike [`NO_SOLUTION`] this is retryable: the same
    /// query may solve under a larger `max_datasets` budget.
    pub const SEARCH_TRUNCATED: &str = "search_truncated";
    /// The request was malformed (bad JSON, missing payload, unknown
    /// keyword, ...).
    pub const BAD_REQUEST: &str = "bad_request";
    /// Plan execution failed after a successful solve.
    pub const EXEC_FAILED: &str = "exec_failed";
    /// Plan execution exhausted its task-retry budget under faults: the
    /// query failed but the service itself is healthy. Degraded results
    /// are never cached.
    pub const DEGRADED: &str = "degraded";
    /// The server is shutting down.
    pub const SHUTDOWN: &str = "shutdown";
    /// The peer speaks a different protocol version (rolling-upgrade
    /// skew); the message was not processed.
    pub const PROTO_MISMATCH: &str = "proto_mismatch";
    /// A router could not reach any worker holding the shard a query
    /// needs (after mark-downs and failover).
    pub const WORKER_UNAVAILABLE: &str = "worker_unavailable";
    /// A router found no shard assignment that covers the query: some
    /// required dataset is on no live worker, or a value's derivation
    /// spans shards in a way scatter-gather cannot split.
    pub const NO_ROUTE: &str = "no_route";
    /// The tenant already holds its maximum number of standing
    /// queries; unsubscribe one (close its connection) and retry.
    pub const SUBSCRIPTION_LIMIT: &str = "subscription_limit";
    /// The request needs a streaming-capable transport (standing
    /// queries push frames) but this path cannot deliver them — e.g.
    /// `subscribe: true` sent through a router.
    pub const STREAM_UNSUPPORTED: &str = "stream_unsupported";
}

/// A structured error: a stable code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    pub code: String,
    pub message: String,
}

impl ErrorBody {
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ErrorBody {
            code: code.into(),
            message: message.into(),
        }
    }
}

/// Executed-query payload: the derived dataset plus cache/latency facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Column names, in schema order.
    pub columns: Vec<String>,
    /// Row cells rendered to display form, at most `limit` rows.
    pub rows: Vec<Vec<String>>,
    /// Total rows the query produced (before `limit`).
    pub row_count: usize,
    /// Whether `rows` was cut off at the limit.
    pub truncated: bool,
    /// The solved plan came from the plan cache.
    pub plan_cache_hit: bool,
    /// The materialized result came from the result cache.
    pub result_cache_hit: bool,
    /// End-to-end service latency for this request (queue + execute).
    pub elapsed_ms: f64,
    /// Dataflow activity attributed to this evaluation (absent on a
    /// result-cache hit — nothing executed).
    pub engine_metrics: Option<MetricsReport>,
}

/// `explain` payload: the plan without execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanInfo {
    /// The reproducible plan, as its canonical JSON tree.
    pub plan_json: String,
    /// Human-readable derivation sequence.
    pub plan_text: String,
    /// [`Plan::fingerprint`](sjcore::engine::Plan::fingerprint) — the
    /// result-cache key.
    pub fingerprint: u64,
    pub plan_cache_hit: bool,
}

/// `health` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    pub status: String,
    pub datasets: Vec<String>,
    pub uptime_ms: u64,
    /// Operator-assigned shard identity (`--shard-id`); `None` on
    /// unsharded deployments and reports from older workers.
    pub shard_id: Option<String>,
    /// Fingerprint of the served catalog (names + schemas). A router
    /// watches this across heartbeats: any change invalidates its
    /// result cache for queries touching this worker.
    pub catalog_epoch: Option<u64>,
    /// Bytes currently held by the dataflow stage cache (persisted
    /// partitions + shuffle outputs), so shard memory pressure is
    /// inspectable by hand via `sjq --health`.
    pub stage_cache_bytes: Option<u64>,
}

impl HealthReport {
    /// Render the report for humans (the `sjq --health` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "status: {}\nuptime: {}ms\ndatasets: {}\n",
            self.status,
            self.uptime_ms,
            self.datasets.join(", ")
        );
        if let Some(shard) = &self.shard_id {
            out.push_str(&format!("shard: {shard}\n"));
        }
        if let Some(epoch) = self.catalog_epoch {
            out.push_str(&format!("catalog epoch: {epoch:016x}\n"));
        }
        if let Some(bytes) = self.stage_cache_bytes {
            out.push_str(&format!("stage cache: {bytes} bytes\n"));
        }
        out
    }
}

/// One dataset a worker serves, described at the schema level — enough
/// for a router to run the derivation search without holding the data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDesc {
    pub name: String,
    /// The dataset's [`Schema`](sjcore::Schema) as its serialized JSON.
    pub schema_json: String,
}

/// `catalog` payload: the worker's shard described at the schema level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogInfo {
    pub shard_id: Option<String>,
    /// Same fingerprint as [`HealthReport::catalog_epoch`].
    pub epoch: u64,
    pub datasets: Vec<DatasetDesc>,
}

/// Per-query trace payload, attached when the request set `trace: true`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// The server-assigned query id the trace belongs to (matches
    /// [`Response::query_id`] and the `query_id` on any
    /// [`FailureReport`](sjdf::FailureReport) for this request).
    pub query_id: String,
    /// Number of events in the trace.
    pub span_count: u64,
    /// Events the server's trace sink dropped at capacity (whole-sink
    /// counter; non-zero means some trace is incomplete).
    pub dropped_spans: u64,
    /// Compact text timeline (one line per span, tree-indented).
    pub timeline: String,
    /// Chrome trace-event JSON for this query, loadable in Perfetto /
    /// `chrome://tracing`.
    pub chrome_json: Option<String>,
    /// The raw span events of this query's tree, so an upstream router
    /// can graft the worker's timeline under its own route span and
    /// return one tree spanning the whole hop. `None` from older
    /// workers (the summary fields above still apply).
    pub spans: Option<Vec<sjtrace::SpanEvent>>,
}

/// `append` payload: what happened to the batch, mirrored from
/// [`sjstream::AppendOutcome`] minus the emissions themselves (those go
/// to the subscribers' connections, not the appender's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppendAck {
    /// Rows accepted into the stream.
    pub accepted: usize,
    /// Rows dropped as verbatim duplicates of already-accepted rows.
    pub duplicates_dropped: usize,
    /// Rows older than `watermark − allowed_lateness`, dropped.
    pub late_dropped: usize,
    /// The watermark after this batch, microseconds.
    pub watermark_us: i64,
    /// Cached window results this batch invalidated.
    pub invalidated: usize,
    /// Window frames pushed to subscribers while handling this batch.
    pub windows_emitted: usize,
}

/// Acknowledgement of a standing-query registration (`subscribe: true`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionAck {
    /// Server-assigned id for this standing query; every pushed window
    /// frame carries it in [`Response::query_id`].
    pub query_id: String,
    /// Tumbling-window width the stream engine evaluates on, seconds.
    pub window_secs: f64,
    /// How long after the watermark passes a window it may still be
    /// re-opened by late data, seconds.
    pub allowed_lateness_secs: f64,
}

/// What transport a connection negotiated, stamped onto `stats` and
/// `health` responses by the TCP front end (the layer that owns the
/// negotiation) so `sjq --stats`/`--health` can show what the wire is
/// actually speaking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireInfo {
    /// 1 for JSON-lines, [`sjwire::WIRE_VERSION`] (or the negotiated
    /// minimum) for framed binary connections.
    pub wire_version: u32,
    /// `"json-lines"` or `"columnar"`.
    pub codec: String,
}

/// One response line. Exactly one of the payload fields is populated on
/// success (matching the request verb); `error` is populated on failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (empty when the request was unparsable).
    pub id: String,
    /// `"ok"`, `"degraded"`, or `"error"`.
    pub status: String,
    pub error: Option<ErrorBody>,
    pub result: Option<QueryResult>,
    pub plan: Option<PlanInfo>,
    pub stats: Option<StatsReport>,
    pub health: Option<HealthReport>,
    /// `catalog` payload (workers only).
    pub catalog: Option<CatalogInfo>,
    /// `stats` payload from a router (`sjrouted`); workers leave it
    /// empty and routers leave `stats` empty.
    pub router_stats: Option<RouterStatsReport>,
    /// Fault/retry accounting for this request's execution, when the
    /// engine reported any (always present on `degraded` responses).
    pub failure: Option<sjdf::FailureReport>,
    /// Server-assigned query id (`query` / `explain` responses only),
    /// correlating this response with server-side traces and metrics.
    pub query_id: Option<String>,
    /// Per-query trace, when the request set `trace: true`.
    pub trace: Option<TraceSummary>,
    /// Protocol version of the responding server (see [`PROTO_VERSION`]);
    /// `None` from older servers.
    pub proto_version: Option<u32>,
    /// `append` payload.
    pub append: Option<AppendAck>,
    /// Acknowledgement of a `subscribe: true` registration.
    pub subscription: Option<SubscriptionAck>,
    /// A pushed window frame from a standing query. These arrive
    /// *unsolicited* (correlated by `id` = the subscribe request's id
    /// and `query_id` = the subscription's server id), interleaved with
    /// normal responses on the same connection.
    pub window: Option<sjstream::WindowEmission>,
    /// Negotiated transport of the connection this response travelled
    /// on (`stats`/`health` responses only; stamped by the front end).
    pub wire: Option<WireInfo>,
}

impl Response {
    pub fn ok(id: &str) -> Self {
        Response {
            id: id.into(),
            status: "ok".into(),
            error: None,
            result: None,
            plan: None,
            stats: None,
            health: None,
            catalog: None,
            router_stats: None,
            failure: None,
            query_id: None,
            trace: None,
            proto_version: None,
            append: None,
            subscription: None,
            window: None,
            wire: None,
        }
    }

    pub fn fail(id: &str, error: ErrorBody) -> Self {
        Response {
            status: "error".into(),
            error: Some(error),
            ..Response::ok(id)
        }
    }

    /// A query that exhausted its retry budget under faults: structured
    /// like an error, but flagged `degraded` so clients can distinguish
    /// "this run lost the fault lottery" from "this query is broken".
    pub fn degraded(id: &str, error: ErrorBody, failure: sjdf::FailureReport) -> Self {
        Response {
            status: "degraded".into(),
            error: Some(error),
            failure: Some(failure),
            ..Response::ok(id)
        }
    }

    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    pub fn is_degraded(&self) -> bool {
        self.status == "degraded"
    }

    /// The error code, if this is an error response.
    pub fn code(&self) -> Option<&str> {
        self.error.as_ref().map(|e| e.code.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let mut spec = QuerySpec::new(["job", "rack"], ["application", "heat"]);
        spec.values[1].units = Some("delta-celsius".into());
        spec.window_secs = Some(300.0);
        spec.limit = Some(10);
        let req = Request::query("r-1", "teamA", spec);
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(req, back);
        assert!(line.contains("\"verb\":\"query\""), "{line}");
    }

    #[test]
    fn bare_verbs_round_trip() {
        for verb in [Verb::Stats, Verb::Health, Verb::Shutdown, Verb::Explain] {
            let req = Request::bare("x", verb);
            let back: Request =
                serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
            assert_eq!(back.verb, verb);
            assert_eq!(back.query, None);
        }
    }

    #[test]
    fn degraded_responses_round_trip_with_failure_report() {
        let failure = sjdf::FailureReport {
            injected_task_faults: 7,
            task_retries: 6,
            tasks_exhausted: 1,
            ..sjdf::FailureReport::default()
        };
        let resp = Response::degraded(
            "r-3",
            ErrorBody::new(codes::DEGRADED, "partition 2 exhausted retry budget"),
            failure.clone(),
        );
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert!(back.is_degraded());
        assert!(!back.is_ok());
        assert_eq!(back.code(), Some(codes::DEGRADED));
        assert_eq!(back.failure, Some(failure));
        // Older responses without the field still parse.
        let legacy: Response =
            serde_json::from_str(r#"{"id":"r","status":"ok","error":null,"result":null,"plan":null,"stats":null,"health":null}"#)
                .unwrap();
        assert_eq!(legacy.failure, None);
        assert_eq!(legacy.query_id, None);
        assert_eq!(legacy.trace, None);
    }

    #[test]
    fn trace_requests_and_summaries_round_trip() {
        let mut req = Request::query("r-5", "t", QuerySpec::new(["job"], ["heat"]));
        assert!(!req.wants_trace());
        req.trace = Some(true);
        assert!(req.wants_trace());
        let back: Request = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
        // Requests from older clients (no `trace` key) still parse.
        let legacy: Request = serde_json::from_str(
            r#"{"id":"r","verb":"query","tenant":"","query":null,"timeout_ms":null}"#,
        )
        .unwrap();
        assert_eq!(legacy.trace, None);
        assert!(!legacy.wants_trace());

        let mut resp = Response::ok("r-5");
        resp.query_id = Some("q000001-r-5".into());
        resp.trace = Some(TraceSummary {
            query_id: "q000001-r-5".into(),
            span_count: 12,
            dropped_spans: 0,
            timeline: "trace: 12 events\nrequest ...\n".into(),
            chrome_json: Some(r#"{"traceEvents":[]}"#.into()),
            spans: None,
        });
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.trace.unwrap().span_count, 12);
    }

    #[test]
    fn proto_version_is_optional_and_round_trips() {
        // Older peers omit the field entirely; it must parse as None.
        let legacy: Request = serde_json::from_str(
            r#"{"id":"r","verb":"health","tenant":"","query":null,"timeout_ms":null}"#,
        )
        .unwrap();
        assert_eq!(legacy.proto_version, None);
        let legacy_resp: Response =
            serde_json::from_str(r#"{"id":"r","status":"ok","error":null}"#).unwrap();
        assert_eq!(legacy_resp.proto_version, None);

        let req = Request::bare("r", Verb::Health).with_proto();
        assert_eq!(req.proto_version, Some(PROTO_VERSION));
        let back: Request = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back.proto_version, Some(PROTO_VERSION));
    }

    #[test]
    fn catalog_verb_and_payload_round_trip() {
        let req = Request::bare("c1", Verb::Catalog);
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains("\"verb\":\"catalog\""), "{line}");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.verb, Verb::Catalog);

        let mut resp = Response::ok("c1");
        resp.catalog = Some(CatalogInfo {
            shard_id: Some("w0".into()),
            epoch: 0xfeed,
            datasets: vec![DatasetDesc {
                name: "rack_temps".into(),
                schema_json: "{\"fields\":[]}".into(),
            }],
        });
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        let info = back.catalog.unwrap();
        assert_eq!(info.epoch, 0xfeed);
        assert_eq!(info.datasets[0].name, "rack_temps");
    }

    #[test]
    fn health_report_renders_shard_fields() {
        let legacy = HealthReport {
            status: "ok".into(),
            datasets: vec!["a".into()],
            uptime_ms: 5,
            shard_id: None,
            catalog_epoch: None,
            stage_cache_bytes: None,
        };
        assert!(!legacy.render().contains("shard:"));
        let sharded = HealthReport {
            shard_id: Some("w2".into()),
            catalog_epoch: Some(0xabc),
            stage_cache_bytes: Some(4096),
            ..legacy
        };
        let text = sharded.render();
        assert!(text.contains("shard: w2"));
        assert!(text.contains("0000000000000abc"));
        assert!(text.contains("4096 bytes"));
        // Reports from older workers (no new keys) still parse.
        let parsed: HealthReport =
            serde_json::from_str(r#"{"status":"ok","datasets":["a"],"uptime_ms":9}"#).unwrap();
        assert_eq!(parsed.shard_id, None);
        assert_eq!(parsed.catalog_epoch, None);
    }

    #[test]
    fn error_responses_round_trip() {
        let resp = Response::fail(
            "r-9",
            ErrorBody::new(codes::QUEUE_FULL, "queue is at capacity (32)"),
        );
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert!(!back.is_ok());
        assert_eq!(back.code(), Some(codes::QUEUE_FULL));
        assert_eq!(back.id, "r-9");
    }
}
