//! ScrubJay as a service: a concurrent query server over a loaded catalog.
//!
//! The batch tools (`sjq`) pay the full cost of every query: load the
//! catalog, run the derivation search, execute the plan, exit. A
//! monitoring dashboard or a team of analysts asking overlapping
//! questions wants the opposite shape — load the catalog **once**, keep
//! the derivation search's results **warm**, and multiplex many small
//! queries over the same in-memory state. This crate provides that shape:
//!
//! - [`service::QueryService`] — owns the catalog, an admission-controlled
//!   scheduler, and a two-level cache (solved [`Plan`]s keyed by
//!   normalized query, materialized results keyed by plan fingerprint).
//! - [`server`] — a JSON-lines TCP front end (`query` / `explain` /
//!   `stats` / `health` / `shutdown` verbs) with one thread per
//!   connection and a bounded worker pool behind it.
//! - [`client::Client`] — the typed blocking client `sjq --server` uses.
//! - [`metrics::ServiceMetrics`] — request, rejection, timeout, queue
//!   depth, latency-percentile, and cache-hit accounting, exposed through
//!   the `stats` verb and dumped on shutdown.
//!
//! Admission control is deliberately simple and fully structural: a
//! bounded queue (excess requests are rejected immediately with a
//! machine-readable error), a fixed-size worker pool, per-tenant
//! round-robin dispatch so one chatty tenant cannot starve the rest, and
//! per-request deadlines enforced both at dequeue and while the client
//! waits.
//!
//! [`Plan`]: sjcore::engine::Plan

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{Client, ClientError};
pub use metrics::{
    RouterStatsReport, ServiceMetrics, StatsReport, StreamStatsReport, WorkerSummary,
};
pub use protocol::{
    AppendAck, CatalogInfo, DatasetDesc, ErrorBody, HealthReport, QuerySpec, Request, Response,
    SubscriptionAck, ValueSpec, Verb, PROTO_VERSION,
};
pub use scheduler::SchedulerConfig;
pub use server::{
    serve, serve_until_shutdown, wait_ready, EmissionSink, RequestHandler, ServerHandle,
};
pub use service::{QueryService, ServiceConfig};
