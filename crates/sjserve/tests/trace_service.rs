//! End-to-end tracing through the query service: a request that sets
//! `trace: true` gets back a text timeline and a Chrome trace, the
//! server-assigned `query_id` correlates the response with its failure
//! report, and degraded queries leave a persisted trace behind when the
//! service runs with a trace dir.

use std::time::Duration;

use sjcore::catalog::Catalog;
use sjcore::row::Row;
use sjcore::schema::{FieldDef, Schema};
use sjcore::semantics::FieldSemantics;
use sjcore::units::time::{TimeSpan, Timestamp};
use sjcore::value::Value;
use sjcore::SjDataset;
use sjdf::{ClusterSpec, ExecCtx, FaultPlan, RetryPolicy};
use sjserve::protocol::{QuerySpec, Request};
use sjserve::service::{QueryService, ServiceConfig};
use sjtrace::export::ChromeTrace;

/// The DAT-1 shaped catalog (job log, node layout, rack temps) used by
/// the chaos suite, wrapped with `ctx` so traces and faults reach every
/// stage.
fn catalog(ctx: &ExecCtx) -> Catalog {
    let mut c = Catalog::default_hpc();

    let joblog_schema = Schema::new(vec![
        FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
        FieldDef::new("job_name", FieldSemantics::value("application", "app-name")),
        FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        ),
        FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
        FieldDef::new("timespan", FieldSemantics::domain("time", "timespan")),
    ])
    .unwrap();
    let joblog_rows = vec![
        Row::new(vec![
            Value::str("1001"),
            Value::str("AMG"),
            Value::list([Value::str("cab1"), Value::str("cab2")]),
            Value::Float(240.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(240),
            )),
        ]),
        Row::new(vec![
            Value::str("1002"),
            Value::str("LULESH"),
            Value::list([Value::str("cab3")]),
            Value::Float(120.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(60),
                Timestamp::from_secs(180),
            )),
        ]),
    ];
    c.register_dataset(
        "job_queue_log",
        SjDataset::from_rows(ctx, joblog_rows, joblog_schema, "job_queue_log", 2),
    )
    .unwrap();

    let layout_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let layout_rows = vec![
        Row::new(vec![Value::str("cab1"), Value::str("rack17")]),
        Row::new(vec![Value::str("cab2"), Value::str("rack17")]),
        Row::new(vec![Value::str("cab3"), Value::str("rack18")]),
    ];
    c.register_dataset(
        "node_layout",
        SjDataset::from_rows(ctx, layout_rows, layout_schema, "node_layout", 2),
    )
    .unwrap();

    let temps_schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new(
            "location",
            FieldSemantics::domain("rack-location", "location-name"),
        ),
        FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    let mut temps_rows = Vec::new();
    for rack in ["rack17", "rack18"] {
        for t in [0i64, 120, 240] {
            for (aisle, base) in [("hot", 35.0), ("cold", 18.0)] {
                temps_rows.push(Row::new(vec![
                    Value::str(rack),
                    Value::str("top"),
                    Value::str(aisle),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(base + t as f64 / 100.0),
                ]));
            }
        }
    }
    c.register_dataset(
        "rack_temps",
        SjDataset::from_rows(ctx, temps_rows, temps_schema, "rack_temps", 2),
    )
    .unwrap();
    c
}

fn rack_heat_spec() -> QuerySpec {
    QuerySpec::new(["job", "rack"], ["application", "heat"])
}

fn traced_query(id: &str) -> Request {
    let mut r = Request::query(id, "", rack_heat_spec());
    r.trace = Some(true);
    r
}

#[test]
fn traced_query_returns_timeline_and_chrome_json() {
    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
    let cat = catalog(&ctx);
    let service = QueryService::new(ctx, cat, ServiceConfig::default());

    let resp = service.handle(traced_query("t1"));
    assert!(resp.is_ok(), "{:?}", resp.error);
    let query_id = resp.query_id.clone().expect("query responses carry an id");
    let trace = resp.trace.expect("trace:true responses carry a summary");
    assert_eq!(trace.query_id, query_id);
    assert!(trace.span_count > 0);

    // The text timeline shows the request root, its queue wait, and the
    // engine's execution underneath.
    for needle in ["request", "queue_wait", "execute", "job"] {
        assert!(
            trace.timeline.contains(needle),
            "timeline lacks `{needle}`:\n{}",
            trace.timeline
        );
    }

    // The Chrome export is valid trace-event JSON and every event is
    // tagged with this request's root id.
    let chrome: ChromeTrace =
        serde_json::from_str(trace.chrome_json.as_deref().unwrap()).expect("valid trace JSON");
    let spans: Vec<_> = chrome.traceEvents.iter().filter(|e| e.ph != "M").collect();
    assert_eq!(spans.len() as u64, trace.span_count);
    let root = spans
        .iter()
        .find(|e| e.name == "request")
        .expect("request root span in chrome export");
    let root_id = root.args.get("root").cloned().unwrap();
    assert!(spans.iter().all(|e| e.args.get("root") == Some(&root_id)));

    // A plain query against the same service still answers (tracing
    // stays on process-wide) but carries no per-request summary.
    let resp2 = service.handle(Request::query("t2", "", rack_heat_spec()));
    assert!(resp2.is_ok());
    assert!(resp2.trace.is_none());
    assert_ne!(resp2.query_id, Some(query_id));

    let stats = service.shutdown();
    assert!(stats.traces_recorded >= 2);
    assert!(stats.trace_spans_recorded >= trace.span_count);
}

#[test]
fn untraced_service_responses_still_carry_query_ids() {
    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
    let cat = catalog(&ctx);
    let service = QueryService::new(ctx, cat, ServiceConfig::default());

    let a = service.handle(Request::query("a", "", rack_heat_spec()));
    let b = service.handle(Request::query("b", "", rack_heat_spec()));
    assert!(a.is_ok() && b.is_ok());
    let (qa, qb) = (a.query_id.unwrap(), b.query_id.unwrap());
    assert_ne!(qa, qb, "query ids must be unique per admission");
    assert!(qa.ends_with("-a") && qb.ends_with("-b"));
    assert!(a.trace.is_none(), "no trace unless requested");

    let stats = service.shutdown();
    assert_eq!(stats.traces_recorded, 0, "tracing never turned on");
}

#[test]
fn degraded_queries_persist_traces_and_stamp_failure_reports() {
    let dir = std::env::temp_dir().join(format!("sjtrace-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
    let cat = catalog(&ctx);
    let service = QueryService::new(
        ctx,
        cat,
        ServiceConfig {
            retry: Some(RetryPolicy::retries(2).with_backoff(
                Duration::from_micros(50),
                2.0,
                Duration::from_millis(2),
            )),
            faults: Some(FaultPlan::seeded(9).poison_partition(0)),
            trace_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    );

    let resp = service.handle(traced_query("doomed"));
    assert!(resp.is_degraded(), "{:?} {:?}", resp.status, resp.error);
    let query_id = resp
        .query_id
        .clone()
        .expect("degraded responses carry an id");

    // The failure report inside the degraded response round-trips the
    // same correlation id.
    let failure = resp.failure.expect("degraded responses carry the report");
    assert_eq!(failure.query_id.as_deref(), Some(query_id.as_str()));

    // The trace summary shows the failure: a failed request root and the
    // injected faults that caused it.
    let trace = resp.trace.expect("trace:true still answered on degraded");
    assert!(
        trace.timeline.contains("FAILED"),
        "no failed span in:\n{}",
        trace.timeline
    );
    assert!(trace.timeline.contains("fault_injected"));

    // Degraded + trace_dir => a persisted Chrome trace named after the
    // query id.
    let path = dir.join(format!("{query_id}.trace.json"));
    let persisted = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing persisted trace {}: {e}", path.display()));
    let chrome: ChromeTrace = serde_json::from_str(&persisted).expect("persisted trace parses");
    assert!(chrome.traceEvents.iter().any(|e| e.name == "degraded"));

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
