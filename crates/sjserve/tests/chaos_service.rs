//! Service-level chaos: concurrent clients querying a service whose
//! execution context is killing task attempts under a seeded
//! [`FaultPlan`].
//!
//! What must hold, whatever the fault schedule does:
//! - no request hangs past its deadline;
//! - every answer is `ok` (retries recovered) or `degraded` (budget
//!   exhausted) — never a worker panic or a half-built result;
//! - `degraded` results never enter the result cache;
//! - the daemon keeps answering after queries degrade.

use std::time::{Duration, Instant};

use sjcore::catalog::Catalog;
use sjcore::row::Row;
use sjcore::schema::{FieldDef, Schema};
use sjcore::semantics::FieldSemantics;
use sjcore::units::time::{TimeSpan, Timestamp};
use sjcore::value::Value;
use sjcore::SjDataset;
use sjdf::{ClusterSpec, ExecCtx, FaultPlan, FaultSite, RetryPolicy};
use sjserve::protocol::{codes, QuerySpec, Request, Verb};
use sjserve::scheduler::SchedulerConfig;
use sjserve::service::{QueryService, ServiceConfig};

/// The DAT-1 shaped catalog (job log, node layout, rack temps), wrapped
/// with `ctx` so the service's shared fault plan reaches every stage.
fn catalog(ctx: &ExecCtx) -> Catalog {
    let mut c = Catalog::default_hpc();

    let joblog_schema = Schema::new(vec![
        FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
        FieldDef::new("job_name", FieldSemantics::value("application", "app-name")),
        FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        ),
        FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
        FieldDef::new("timespan", FieldSemantics::domain("time", "timespan")),
    ])
    .unwrap();
    let joblog_rows = vec![
        Row::new(vec![
            Value::str("1001"),
            Value::str("AMG"),
            Value::list([Value::str("cab1"), Value::str("cab2")]),
            Value::Float(240.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(240),
            )),
        ]),
        Row::new(vec![
            Value::str("1002"),
            Value::str("LULESH"),
            Value::list([Value::str("cab3")]),
            Value::Float(120.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(60),
                Timestamp::from_secs(180),
            )),
        ]),
    ];
    c.register_dataset(
        "job_queue_log",
        SjDataset::from_rows(ctx, joblog_rows, joblog_schema, "job_queue_log", 2),
    )
    .unwrap();

    let layout_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let layout_rows = vec![
        Row::new(vec![Value::str("cab1"), Value::str("rack17")]),
        Row::new(vec![Value::str("cab2"), Value::str("rack17")]),
        Row::new(vec![Value::str("cab3"), Value::str("rack18")]),
    ];
    c.register_dataset(
        "node_layout",
        SjDataset::from_rows(ctx, layout_rows, layout_schema, "node_layout", 2),
    )
    .unwrap();

    let temps_schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new(
            "location",
            FieldSemantics::domain("rack-location", "location-name"),
        ),
        FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    let mut temps_rows = Vec::new();
    for rack in ["rack17", "rack18"] {
        for t in [0i64, 120, 240] {
            for (aisle, base) in [("hot", 35.0), ("cold", 18.0)] {
                temps_rows.push(Row::new(vec![
                    Value::str(rack),
                    Value::str("top"),
                    Value::str(aisle),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(base + t as f64 / 100.0),
                ]));
            }
        }
    }
    c.register_dataset(
        "rack_temps",
        SjDataset::from_rows(ctx, temps_rows, temps_schema, "rack_temps", 2),
    )
    .unwrap();
    c
}

fn rack_heat_spec() -> QuerySpec {
    QuerySpec::new(["job", "rack"], ["application", "heat"])
}

fn fast_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy::retries(attempts).with_backoff(
        Duration::from_micros(50),
        2.0,
        Duration::from_millis(2),
    )
}

/// A fault schedule that injects transient task failures (~20% of first
/// attempts) but can never exhaust a 3-attempt budget: probed so that no
/// partition fails all three attempts. Decisions are pure, so the probe
/// is exact for every stage of every query.
fn recoverable_plan() -> FaultPlan {
    (0..500u64)
        .map(|s| FaultPlan::seeded(s).with_task_fail_rate(0.2))
        .find(|p| {
            let fails =
                |part: usize, attempt: u32| p.decide(FaultSite::Task, part, attempt).is_some();
            let some_fault = (0..4).any(|part| fails(part, 0));
            let none_exhaust =
                (0..64).all(|part| !(fails(part, 0) && fails(part, 1) && fails(part, 2)));
            some_fault && none_exhaust
        })
        .expect("a recoverable 20% fault schedule exists below seed 500")
}

/// Eight concurrent clients against a service killing ~20% of task
/// attempts: nobody hangs, nobody sees a non-ok/non-degraded outcome,
/// and the retry traffic reaches the service metrics.
#[test]
fn eight_clients_under_task_faults_never_hang() {
    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
    let cat = catalog(&ctx);
    let service = QueryService::new(
        ctx,
        cat,
        ServiceConfig {
            scheduler: SchedulerConfig {
                workers: 2,
                max_queue: 64,
                default_timeout: Duration::from_secs(10),
            },
            // Force every request to actually execute (and so to roll
            // its faults) instead of riding the result cache.
            result_cache_bytes: 0,
            retry: Some(fast_retry(3)),
            faults: Some(recoverable_plan()),
            ..ServiceConfig::default()
        },
    );

    let timeout = Duration::from_millis(8000);
    let handles: Vec<_> = (0..8)
        .map(|client| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for round in 0..3 {
                    let mut req = Request::query(
                        &format!("c{client}-r{round}"),
                        &format!("tenant{}", client % 3),
                        rack_heat_spec(),
                    );
                    req.timeout_ms = Some(timeout.as_millis() as u64);
                    let started = Instant::now();
                    let resp = service.handle(req);
                    let elapsed = started.elapsed();
                    outcomes.push((resp, elapsed));
                }
                outcomes
            })
        })
        .collect();

    let mut rows_seen: Option<Vec<Vec<String>>> = None;
    for handle in handles {
        for (resp, elapsed) in handle.join().expect("client thread panicked") {
            assert!(
                elapsed < timeout + Duration::from_secs(2),
                "request {} outlived its deadline ({elapsed:?})",
                resp.id
            );
            assert_ne!(
                resp.code(),
                Some(codes::TIMEOUT),
                "request {} timed out",
                resp.id
            );
            assert!(
                resp.is_ok() || resp.is_degraded(),
                "request {} ended {:?}: {:?}",
                resp.id,
                resp.status,
                resp.error
            );
            if resp.is_ok() {
                let result = resp.result.expect("ok response carries rows");
                // Recovered runs are byte-identical to each other.
                match &rows_seen {
                    Some(seen) => assert_eq!(&result.rows, seen, "recovered rows diverged"),
                    None => rows_seen = Some(result.rows),
                }
            }
        }
    }
    assert!(rows_seen.is_some(), "no client ever got a recovered result");

    let stats = service.shutdown();
    assert_eq!(stats.requests_total, 24);
    assert!(
        stats.engine_task_retries >= 1,
        "the fault plan never forced a retry: {stats:?}"
    );
    // The probed plan cannot exhaust a 3-attempt budget.
    assert_eq!(stats.engine_tasks_exhausted, 0);
    assert_eq!(stats.requests_degraded, 0);
    assert_eq!(stats.timeouts, 0);
}

/// A poisoned partition degrades every query — structured `degraded`
/// responses carrying the failure report, nothing cached — and the
/// service keeps serving: once the faults are lifted (shared context
/// state, as `sjserved --chaos-seed` would at startup), the same query
/// succeeds and only then enters the result cache.
#[test]
fn degraded_queries_bypass_the_result_cache_and_the_daemon_survives() {
    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
    let cat = catalog(&ctx);
    let service = QueryService::new(
        ctx.clone(),
        cat,
        ServiceConfig {
            result_cache_bytes: 8 << 20,
            retry: Some(fast_retry(3)),
            faults: Some(FaultPlan::seeded(9).poison_partition(0)),
            ..ServiceConfig::default()
        },
    );

    for round in 0..3 {
        let resp = service.handle(Request::query(&format!("d{round}"), "", rack_heat_spec()));
        assert!(
            resp.is_degraded(),
            "round {round}: {:?} {:?}",
            resp.status,
            resp.error
        );
        assert_eq!(resp.code(), Some(codes::DEGRADED));
        let failure = resp
            .failure
            .expect("degraded responses carry the failure report");
        assert!(failure.tasks_exhausted >= 1, "{failure:?}");
        assert!(
            resp.error
                .as_ref()
                .unwrap()
                .message
                .contains("exhausted retry budget"),
            "{:?}",
            resp.error
        );
        let stats = service.stats_report();
        assert_eq!(
            stats.result_cache_entries, 0,
            "a degraded result reached the result cache"
        );
    }

    // Health stays answerable while queries degrade.
    let health = service.handle(Request::bare("h", Verb::Health));
    assert!(health.is_ok());

    // Lift the faults — the execution context is shared, so this is the
    // service-level equivalent of restarting without --chaos-seed.
    ctx.set_faults(None);
    let resp = service.handle(Request::query("after", "", rack_heat_spec()));
    assert!(resp.is_ok(), "post-chaos query failed: {:?}", resp.error);
    assert!(!resp.result.as_ref().unwrap().rows.is_empty());

    let stats = service.shutdown();
    assert_eq!(stats.requests_degraded, 3);
    assert!(stats.engine_tasks_exhausted >= 3);
    assert_eq!(
        stats.result_cache_entries, 1,
        "the healthy result should be the only cached entry"
    );
}
