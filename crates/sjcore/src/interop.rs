//! Interoperability layer: filtering and aggregation.
//!
//! ScrubJay's query language deliberately contains only dimensions of
//! interest; rather than reinvent relational filtering and aggregation
//! semantics inside the query system, the paper provides an
//! interoperability layer for them (§5.1, footnote 1). This module is
//! that layer: predicates and group-by aggregation over [`SjDataset`]s,
//! still constrained by data semantics — ordering comparisons are valid
//! only on *ordered* dimensions (a node ID of 10 is not "less than" a
//! node ID of 20), and means only on interpolatable ones.

use crate::dataset::SjDataset;
use crate::error::{Result, SjError};
use crate::row::Row;
use crate::schema::{FieldDef, Schema};
use crate::semantics::{FieldSemantics, RelationType, SemanticDictionary};
use crate::value::Value;
use std::sync::Arc;

/// A row predicate over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Column equals the value (any dimension).
    Eq(String, Value),
    /// Column differs from the value (any dimension).
    Ne(String, Value),
    /// Column is strictly less than the value (ordered dimensions only).
    Lt(String, Value),
    /// Column is at most the value (ordered dimensions only).
    Le(String, Value),
    /// Column is strictly greater than the value (ordered only).
    Gt(String, Value),
    /// Column is at least the value (ordered only).
    Ge(String, Value),
    /// Column lies in `[lo, hi]` (ordered only).
    Between(String, Value, Value),
    /// Column is one of the listed values (any dimension).
    In(String, Vec<Value>),
    /// Column is not null.
    NotNull(String),
    /// Every sub-predicate holds.
    All(Vec<Predicate>),
    /// At least one sub-predicate holds.
    Any(Vec<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Validate against a schema and dictionary: columns exist, and
    /// ordering comparisons target ordered dimensions.
    pub fn validate(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<()> {
        match self {
            Predicate::Eq(c, _)
            | Predicate::Ne(c, _)
            | Predicate::In(c, _)
            | Predicate::NotNull(c) => {
                schema.index_of(c)?;
                Ok(())
            }
            Predicate::Lt(c, _)
            | Predicate::Le(c, _)
            | Predicate::Gt(c, _)
            | Predicate::Ge(c, _)
            | Predicate::Between(c, _, _) => {
                let f = schema.field(c)?;
                let dim = dict.dimension(&f.semantics.dimension)?;
                if dim.exact_match_only() {
                    return Err(SjError::SemanticsInvalid(format!(
                        "ordering comparison on unordered dimension `{}` (column `{c}`)",
                        dim.name
                    )));
                }
                Ok(())
            }
            Predicate::All(ps) | Predicate::Any(ps) => {
                ps.iter().try_for_each(|p| p.validate(schema, dict))
            }
            Predicate::Not(p) => p.validate(schema, dict),
        }
    }

    fn eval(&self, row: &Row, schema: &Schema) -> bool {
        let col = |name: &str| schema.index_of(name).ok().map(|i| row.get(i));
        let cmp = |name: &str, v: &Value| -> Option<std::cmp::Ordering> {
            let cell = col(name)?;
            match (cell.as_f64(), v.as_f64()) {
                (Some(a), Some(b)) => Some(a.total_cmp(&b)),
                _ => match (cell.as_str(), v.as_str()) {
                    (Some(a), Some(b)) => Some(a.cmp(b)),
                    _ => None,
                },
            }
        };
        match self {
            Predicate::Eq(c, v) => col(c).is_some_and(|cell| cell == v),
            Predicate::Ne(c, v) => col(c).is_some_and(|cell| cell != v),
            Predicate::Lt(c, v) => cmp(c, v) == Some(std::cmp::Ordering::Less),
            Predicate::Le(c, v) => {
                matches!(
                    cmp(c, v),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            }
            Predicate::Gt(c, v) => cmp(c, v) == Some(std::cmp::Ordering::Greater),
            Predicate::Ge(c, v) => matches!(
                cmp(c, v),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ),
            Predicate::Between(c, lo, hi) => {
                matches!(
                    cmp(c, lo),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                ) && matches!(
                    cmp(c, hi),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            }
            Predicate::In(c, vs) => col(c).is_some_and(|cell| vs.contains(cell)),
            Predicate::NotNull(c) => col(c).is_some_and(|cell| !cell.is_null()),
            Predicate::All(ps) => ps.iter().all(|p| p.eval(row, schema)),
            Predicate::Any(ps) => ps.iter().any(|p| p.eval(row, schema)),
            Predicate::Not(p) => !p.eval(row, schema),
        }
    }
}

/// Keep only rows satisfying the predicate (narrow, semantics-checked).
pub fn filter_rows(
    ds: &SjDataset,
    pred: &Predicate,
    dict: &SemanticDictionary,
) -> Result<SjDataset> {
    pred.validate(ds.schema(), dict)?;
    let schema = ds.schema().clone();
    let pred = Arc::new(pred.clone());
    let schema2 = schema.clone();
    let rdd = ds.rdd().map_partitions_named("filter_rows", move |rows| {
        rows.into_iter()
            .filter(|r| pred.eval(r, &schema2))
            .collect()
    });
    Ok(SjDataset::new(
        rdd,
        schema,
        format!("filter({})", ds.name()),
    ))
}

/// An aggregation function over one column's values within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Arithmetic mean (interpolatable dimensions only).
    Mean,
    /// Minimum (ordered dimensions only).
    Min,
    /// Maximum (ordered dimensions only).
    Max,
    /// Sum (ordered dimensions only).
    Sum,
    /// Number of non-null values (any dimension; output is on the
    /// `sample-count` dimension).
    Count,
}

/// One aggregation request: aggregate `column` with `func` into
/// `output` in the result.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// Input column name.
    pub column: String,
    /// The function.
    pub func: AggFn,
    /// Output column name.
    pub output: String,
}

impl Aggregation {
    /// Shorthand constructor.
    pub fn new(column: &str, func: AggFn, output: &str) -> Self {
        Aggregation {
            column: column.into(),
            func,
            output: output.into(),
        }
    }
}

/// Group by the named columns and aggregate the requested value columns.
/// Semantics-checked: means require interpolatable dimensions; min, max,
/// and sum require ordered ones.
pub fn aggregate(
    ds: &SjDataset,
    group_by: &[&str],
    aggs: &[Aggregation],
    dict: &SemanticDictionary,
) -> Result<SjDataset> {
    if group_by.is_empty() {
        return Err(SjError::SemanticsInvalid(
            "aggregate requires at least one group-by column".into(),
        ));
    }
    let schema = ds.schema();
    let mut group_idx = Vec::with_capacity(group_by.len());
    let mut out_fields = Vec::new();
    for g in group_by {
        let i = schema.index_of(g)?;
        group_idx.push(i);
        out_fields.push(schema.fields()[i].clone());
    }
    let mut agg_plan: Vec<(usize, AggFn)> = Vec::with_capacity(aggs.len());
    for a in aggs {
        let i = schema.index_of(&a.column)?;
        let f = &schema.fields()[i];
        let dim = dict.dimension(&f.semantics.dimension)?;
        match a.func {
            AggFn::Mean if !dim.interpolatable() => {
                return Err(SjError::SemanticsInvalid(format!(
                    "cannot take a mean on dimension `{}` (column `{}`)",
                    dim.name, a.column
                )))
            }
            AggFn::Min | AggFn::Max | AggFn::Sum if dim.exact_match_only() => {
                return Err(SjError::SemanticsInvalid(format!(
                    "cannot order/sum dimension `{}` (column `{}`)",
                    dim.name, a.column
                )))
            }
            _ => {}
        }
        let semantics = if a.func == AggFn::Count {
            FieldSemantics::value("sample-count", "samples")
        } else {
            FieldSemantics {
                relation: RelationType::Value,
                dimension: f.semantics.dimension.clone(),
                units: f.semantics.units.clone(),
            }
        };
        out_fields.push(FieldDef::new(&a.output, semantics));
        agg_plan.push((i, a.func));
    }
    let out_schema = Schema::new(out_fields)?;

    let parts = ds.rdd().num_partitions().max(1);
    let gidx = group_idx.clone();
    let keyed = ds.rdd().map_partitions_named("key_by_group", move |rows| {
        rows.into_iter().map(|r| (r.key_of(&gidx), r)).collect()
    });
    let rdd = keyed
        .group_by_key(parts)
        .map_partitions_named("aggregate", move |groups| {
            groups
                .into_iter()
                .map(|(_, rows)| {
                    let first = &rows[0];
                    let mut values: Vec<Value> =
                        group_idx.iter().map(|&i| first.get(i).clone()).collect();
                    for &(ci, func) in &agg_plan {
                        let nums: Vec<f64> =
                            rows.iter().filter_map(|r| r.get(ci).as_f64()).collect();
                        let v = match func {
                            AggFn::Count => Value::Int(
                                rows.iter().filter(|r| !r.get(ci).is_null()).count() as i64,
                            ),
                            AggFn::Mean if nums.is_empty() => Value::Null,
                            AggFn::Mean => {
                                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                            }
                            AggFn::Sum => Value::Float(nums.iter().sum()),
                            AggFn::Min => nums
                                .iter()
                                .cloned()
                                .min_by(f64::total_cmp)
                                .map_or(Value::Null, Value::Float),
                            AggFn::Max => nums
                                .iter()
                                .cloned()
                                .max_by(f64::total_cmp)
                                .map_or(Value::Null, Value::Float),
                        };
                        values.push(v);
                    }
                    Row::new(values)
                })
                .collect()
        });
    Ok(SjDataset::new(
        rdd,
        out_schema,
        format!("aggregate({})", ds.name()),
    ))
}

/// Keep only the named columns, in the given order (narrow).
pub fn project(ds: &SjDataset, columns: &[&str]) -> Result<SjDataset> {
    let schema = ds.schema();
    let mut idx = Vec::with_capacity(columns.len());
    let mut fields = Vec::with_capacity(columns.len());
    for c in columns {
        let i = schema.index_of(c)?;
        idx.push(i);
        fields.push(schema.fields()[i].clone());
    }
    let out_schema = Schema::new(fields)?;
    let rdd = ds.rdd().map_partitions_named("project", move |rows| {
        rows.into_iter()
            .map(|r| idx.iter().map(|&i| r.get(i).clone()).collect())
            .collect()
    });
    Ok(SjDataset::new(
        rdd,
        out_schema,
        format!("project({})", ds.name()),
    ))
}

/// Globally sort rows by one column (ordered dimensions only). Wide.
pub fn sort_rows(ds: &SjDataset, column: &str, dict: &SemanticDictionary) -> Result<SjDataset> {
    let schema = ds.schema();
    let i = schema.index_of(column)?;
    let f = &schema.fields()[i];
    let dim = dict.dimension(&f.semantics.dimension)?;
    if dim.exact_match_only() {
        return Err(SjError::SemanticsInvalid(format!(
            "cannot sort by unordered dimension `{}` (column `{column}`)",
            dim.name
        )));
    }
    let parts = ds.rdd().num_partitions().max(1);
    let keyed = ds.rdd().map_partitions_named("key_for_sort", move |rows| {
        rows.into_iter()
            .map(|r| {
                // Sort key: the bit-ordered encoding of the numeric view
                // (total order over f64, nulls first).
                let k = r
                    .get(i)
                    .as_f64()
                    .map(|v| {
                        let bits = v.to_bits();
                        if bits >> 63 == 1 {
                            // Negative: flip everything so magnitude order
                            // reverses into value order.
                            !bits
                        } else {
                            // Non-negative: set the sign bit so it sorts
                            // after every negative.
                            bits | (1 << 63)
                        }
                    })
                    .unwrap_or(0);
                (k, r)
            })
            .collect()
    });
    let rdd = keyed.sort_by_key(parts).map_values(|r| r).map(|(_, r)| r);
    Ok(SjDataset::new(
        rdd,
        schema.clone(),
        format!("sort({})", ds.name()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn temps(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let mk = |rack: &str, t: i64, v: f64| {
            Row::new(vec![
                Value::str(rack),
                Value::Time(Timestamp::from_secs(t)),
                Value::Float(v),
            ])
        };
        let rows = vec![
            mk("r1", 0, 20.0),
            mk("r1", 60, 24.0),
            mk("r1", 120, 28.0),
            mk("r2", 0, 30.0),
            mk("r2", 60, 34.0),
        ];
        SjDataset::from_rows(ctx, rows, schema, "temps", 2)
    }

    #[test]
    fn filter_eq_and_ordering() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let d = dict();
        let out = filter_rows(&ds, &Predicate::Eq("rack".into(), Value::str("r1")), &d).unwrap();
        assert_eq!(out.count().unwrap(), 3);
        let out = filter_rows(&ds, &Predicate::Gt("temp".into(), Value::Float(25.0)), &d).unwrap();
        assert_eq!(out.count().unwrap(), 3);
        let out = filter_rows(
            &ds,
            &Predicate::All(vec![
                Predicate::Eq("rack".into(), Value::str("r1")),
                Predicate::Ge("temp".into(), Value::Float(24.0)),
            ]),
            &d,
        )
        .unwrap();
        assert_eq!(out.count().unwrap(), 2);
    }

    #[test]
    fn ordering_on_identifiers_is_rejected() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let e = filter_rows(
            &ds,
            &Predicate::Lt("rack".into(), Value::str("r2")),
            &dict(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("unordered"));
        // Equality on identifiers is fine.
        assert!(filter_rows(
            &ds,
            &Predicate::Ne("rack".into(), Value::str("r2")),
            &dict()
        )
        .is_ok());
    }

    #[test]
    fn between_in_and_not() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let d = dict();
        let out = filter_rows(
            &ds,
            &Predicate::Between("temp".into(), Value::Float(24.0), Value::Float(30.0)),
            &d,
        )
        .unwrap();
        assert_eq!(out.count().unwrap(), 3);
        let out = filter_rows(
            &ds,
            &Predicate::In("rack".into(), vec![Value::str("r2"), Value::str("r9")]),
            &d,
        )
        .unwrap();
        assert_eq!(out.count().unwrap(), 2);
        let out = filter_rows(
            &ds,
            &Predicate::Not(Box::new(Predicate::Eq("rack".into(), Value::str("r2")))),
            &d,
        )
        .unwrap();
        assert_eq!(out.count().unwrap(), 3);
    }

    #[test]
    fn filter_unknown_column_errors() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        assert!(filter_rows(&ds, &Predicate::NotNull("nope".into()), &dict()).is_err());
    }

    #[test]
    fn aggregate_mean_min_max_count() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let out = aggregate(
            &ds,
            &["rack"],
            &[
                Aggregation::new("temp", AggFn::Mean, "mean_temp"),
                Aggregation::new("temp", AggFn::Min, "min_temp"),
                Aggregation::new("temp", AggFn::Max, "max_temp"),
                Aggregation::new("temp", AggFn::Count, "n"),
            ],
            &dict(),
        )
        .unwrap();
        let mut rows = out.collect().unwrap();
        rows.sort_by_key(|r| r.get(0).as_str().unwrap().to_string());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1).as_f64(), Some(24.0));
        assert_eq!(rows[0].get(2).as_f64(), Some(20.0));
        assert_eq!(rows[0].get(3).as_f64(), Some(28.0));
        assert_eq!(rows[0].get(4).as_i64(), Some(3));
        assert_eq!(rows[1].get(1).as_f64(), Some(32.0));
        // Output schema: count carries the sample-count dimension.
        assert_eq!(
            out.schema().field("n").unwrap().semantics.dimension,
            "sample-count"
        );
        out.validate(&dict()).unwrap();
    }

    #[test]
    fn mean_on_identifier_dimension_is_rejected() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let e = aggregate(
            &ds,
            &["rack"],
            &[Aggregation::new("rack", AggFn::Mean, "mean_rack")],
            &dict(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("mean"));
        // Count on identifiers is allowed.
        assert!(aggregate(
            &ds,
            &["rack"],
            &[Aggregation::new("rack", AggFn::Count, "n")],
            &dict(),
        )
        .is_ok());
    }

    #[test]
    fn aggregate_requires_group_columns() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        assert!(aggregate(&ds, &[], &[], &dict()).is_err());
        assert!(aggregate(&ds, &["nope"], &[], &dict()).is_err());
    }

    #[test]
    fn project_selects_and_reorders() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let out = project(&ds, &["temp", "rack"]).unwrap();
        assert_eq!(out.schema().len(), 2);
        assert_eq!(out.schema().fields()[0].name, "temp");
        let row = &out.head(1).unwrap()[0];
        assert_eq!(row.get(0).as_f64(), Some(20.0));
        assert_eq!(row.get(1).as_str(), Some("r1"));
        assert!(project(&ds, &["nope"]).is_err());
    }

    #[test]
    fn sort_rows_orders_by_value() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let out = sort_rows(&ds, "temp", &dict()).unwrap();
        let temps: Vec<f64> = out
            .collect_column("temp")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_f64())
            .collect();
        for w in temps.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(temps.len(), 5);
        // Sorting by an identifier is rejected.
        assert!(sort_rows(&ds, "rack", &dict()).is_err());
    }

    #[test]
    fn sort_rows_handles_negative_values_and_nulls() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new("t", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("a"), Value::Float(3.0)]),
            Row::new(vec![Value::str("b"), Value::Float(-7.5)]),
            Row::new(vec![Value::str("c"), Value::Null]),
            Row::new(vec![Value::str("d"), Value::Float(-1.0)]),
            Row::new(vec![Value::str("e"), Value::Float(0.0)]),
        ];
        let ds = SjDataset::from_rows(&ctx, rows, schema, "x", 2);
        let out = sort_rows(&ds, "t", &dict()).unwrap();
        let got: Vec<Option<f64>> = out
            .collect_column("t")
            .unwrap()
            .iter()
            .map(|v| v.as_f64())
            .collect();
        assert_eq!(
            got,
            vec![None, Some(-7.5), Some(-1.0), Some(0.0), Some(3.0)]
        );
    }

    #[test]
    fn aggregate_by_multiple_columns() {
        let ctx = ExecCtx::local();
        let ds = temps(&ctx);
        let out = aggregate(
            &ds,
            &["rack", "time"],
            &[Aggregation::new("temp", AggFn::Sum, "s")],
            &dict(),
        )
        .unwrap();
        // Every (rack, time) pair is unique here.
        assert_eq!(out.count().unwrap(), 5);
    }
}
