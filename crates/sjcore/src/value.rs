//! Dynamic values: the cells of a ScrubJay row.
//!
//! ScrubJayRDD rows are variable-length tuples with named elements of
//! varied types (§4.1). [`Value`] is the dynamic cell type; [`KeyAtom`] is
//! its hashable/orderable encoding used as a join key for exact-match
//! (natural join) comparisons on domain columns.

use crate::units::time::{TimeSpan, Timestamp};
use serde::{Deserialize, Serialize};
use sjdf::ByteSize;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing / not applicable.
    Null,
    /// Boolean flag.
    Bool(bool),
    /// Signed integer (counters, identifiers).
    Int(i64),
    /// Floating-point measurement.
    Float(f64),
    /// Text (names, identifiers).
    Str(Arc<str>),
    /// An instant in time.
    Time(Timestamp),
    /// A time interval.
    Span(TimeSpan),
    /// A list of values (e.g. a job's node list) — the input of the
    /// *explode discrete* transformation.
    List(Arc<[Value]>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Numeric view (ints widen to float); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Time(t) => Some(t.as_secs_f64()),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Timestamp view; `None` for non-times.
    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Span view; `None` for non-spans.
    pub fn as_span(&self) -> Option<TimeSpan> {
        match self {
            Value::Span(s) => Some(*s),
            _ => None,
        }
    }

    /// List view; `None` for non-lists.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Exact-match key encoding for joins and grouping. Floats are encoded
    /// bit-exactly (exact matching on continuous values is only used when
    /// semantics say the domain is discrete; continuous ordered domains go
    /// through the interpolation join instead).
    pub fn key(&self) -> KeyAtom {
        match self {
            Value::Null => KeyAtom::Null,
            Value::Bool(b) => KeyAtom::Bool(*b),
            Value::Int(i) => KeyAtom::Int(*i),
            Value::Float(f) => KeyAtom::Bits(f.to_bits()),
            Value::Str(s) => KeyAtom::Str(Arc::clone(s)),
            Value::Time(t) => KeyAtom::Time(t.as_micros()),
            Value::Span(s) => KeyAtom::SpanKey(s.start.as_micros(), s.end.as_micros()),
            Value::List(l) => KeyAtom::List(l.iter().map(Value::key).collect()),
        }
    }

    /// Short name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Time(_) => "time",
            Value::Span(_) => "span",
            Value::List(_) => "list",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Span(s) => write!(f, "{s}"),
            Value::List(l) => {
                let items: Vec<String> = l.iter().map(|v| v.to_string()).collect();
                write!(f, "[{}]", items.join("|"))
            }
        }
    }
}

impl ByteSize for Value {
    fn byte_size(&self) -> usize {
        16 + match self {
            Value::Str(s) => s.len(),
            Value::List(l) => l.iter().map(ByteSize::byte_size).sum(),
            _ => 0,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Time(v)
    }
}
impl From<TimeSpan> for Value {
    fn from(v: TimeSpan) -> Self {
        Value::Span(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Hashable, orderable encoding of a [`Value`] used as a join key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KeyAtom {
    /// Null key.
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Bit-exact float key.
    Bits(u64),
    /// String key.
    Str(Arc<str>),
    /// Timestamp key (micros).
    Time(i64),
    /// Span key (start, end micros).
    SpanKey(i64, i64),
    /// List key.
    List(Vec<KeyAtom>),
}

impl ByteSize for KeyAtom {
    fn byte_size(&self) -> usize {
        16 + match self {
            KeyAtom::Str(s) => s.len(),
            KeyAtom::List(l) => l.iter().map(ByteSize::byte_size).sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_i64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn keys_are_equal_for_equal_values() {
        assert_eq!(Value::Int(5).key(), Value::Int(5).key());
        assert_eq!(Value::str("a").key(), Value::str("a").key());
        assert_ne!(Value::Int(5).key(), Value::Float(5.0).key());
    }

    #[test]
    fn float_keys_are_bit_exact() {
        assert_eq!(Value::Float(1.5).key(), Value::Float(1.5).key());
        assert_ne!(Value::Float(1.5).key(), Value::Float(1.5000001).key());
    }

    #[test]
    fn list_values_display_with_pipe() {
        let v = Value::list([Value::Int(1), Value::str("a")]);
        assert_eq!(v.to_string(), "[1|a]");
    }

    #[test]
    fn key_of_list_is_elementwise() {
        let a = Value::list([Value::Int(1), Value::Int(2)]).key();
        let b = Value::list([Value::Int(1), Value::Int(2)]).key();
        assert_eq!(a, b);
    }

    #[test]
    fn byte_size_scales_with_content() {
        assert!(Value::str("a long string value").byte_size() > Value::Int(1).byte_size());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn time_values_expose_time() {
        let t = Timestamp::from_secs(42);
        assert_eq!(Value::Time(t).as_time(), Some(t));
        assert_eq!(Value::Time(t).as_f64(), Some(42.0));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::list([
            Value::Int(1),
            Value::str("n2"),
            Value::Time(Timestamp::from_secs(7)),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
