//! Opt-in LRU cache of intermediate derivation results (§5.4).
//!
//! Two derivation sequences that perform the same expensive derivation
//! should compute it only once. The plan executor fingerprints every plan
//! node; when caching is enabled, a node's materialized rows are stored
//! under that fingerprint and reused by later executions. Capacity is
//! bounded in bytes with least-recently-used eviction, and entries may
//! optionally spill to non-volatile storage.

use crate::error::{Result, SjError};
use crate::row::Row;
use crate::schema::Schema;
use parking_lot::Mutex;
use sjdf::ByteSize;
use std::collections::HashMap;
use std::path::PathBuf;

/// One cached materialization.
#[derive(Debug, Clone)]
struct Entry {
    schema: Schema,
    rows: Vec<Row>,
    bytes: usize,
    last_used: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// LRU intermediate-result cache keyed by plan-node fingerprints.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    spill_dir: Option<PathBuf>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<u64, Entry>,
    bytes: usize,
    clock: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// In-memory cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_bytes,
            spill_dir: None,
        }
    }

    /// Cache that additionally persists entries as JSON files under `dir`
    /// (the paper's non-volatile cache), so results survive the process.
    pub fn with_spill(capacity_bytes: usize, dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| SjError::Io(e.to_string()))?;
        Ok(ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_bytes,
            spill_dir: Some(dir),
        })
    }

    /// Look up a materialization by fingerprint. Falls back to the spill
    /// directory when the entry is not in memory.
    pub fn get(&self, key: u64) -> Option<(Schema, Vec<Row>)> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.entries.get_mut(&key) {
            e.last_used = clock;
            let out = (e.schema.clone(), e.rows.clone());
            inner.stats.hits += 1;
            return Some(out);
        }
        // Spill lookup.
        if let Some(dir) = &self.spill_dir {
            let path = dir.join(format!("{key:016x}.json"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok((schema, rows)) = serde_json::from_str::<(Schema, Vec<Row>)>(&text) {
                    inner.stats.hits += 1;
                    return Some((schema, rows));
                }
            }
        }
        inner.stats.misses += 1;
        None
    }

    /// Insert a materialization. Entries larger than the whole capacity
    /// are not cached in memory (but still spill if configured).
    pub fn put(&self, key: u64, schema: Schema, rows: Vec<Row>) {
        let bytes = rows.iter().map(ByteSize::byte_size).sum::<usize>();
        if let Some(dir) = &self.spill_dir {
            let path = dir.join(format!("{key:016x}.json"));
            if let Ok(text) = serde_json::to_string(&(&schema, &rows)) {
                let _ = std::fs::write(path, text);
            }
        }
        if bytes > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            key,
            Entry {
                schema,
                rows,
                bytes,
                last_used: clock,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        // Evict least-recently-used entries until within capacity.
        while inner.bytes > self.capacity_bytes {
            let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.bytes;
                inner.stats.evictions += 1;
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes held in memory.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

// ---------------------------------------------------------------------------
// Tiered cache: hot LRU + compressed cold tier (§9 future work)
// ---------------------------------------------------------------------------

/// Statistics of the tiered cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups served from the hot tier.
    pub hot_hits: u64,
    /// Lookups served from the cold (compressed) tier.
    pub cold_hits: u64,
    /// Lookups that missed both tiers.
    pub misses: u64,
    /// Entries demoted from hot to cold.
    pub demotions: u64,
    /// Entries dropped from the cold tier.
    pub cold_evictions: u64,
}

#[derive(Debug)]
struct ColdEntry {
    compressed: Vec<u8>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct TieredInner {
    hot: HashMap<u64, Entry>,
    hot_bytes: usize,
    cold: HashMap<u64, ColdEntry>,
    cold_bytes: usize,
    clock: u64,
    stats: TierStats,
}

/// The storage cache hierarchy the paper's conclusion envisions: a hot
/// in-memory LRU tier whose evicted entries are *compressed* and demoted
/// to a bounded cold tier instead of being discarded. Cold hits are
/// decompressed and promoted back to hot.
#[derive(Debug)]
pub struct TieredCache {
    inner: Mutex<TieredInner>,
    hot_capacity: usize,
    cold_capacity: usize,
}

impl TieredCache {
    /// A tiered cache with the given per-tier byte capacities (the cold
    /// capacity bounds *compressed* bytes).
    pub fn new(hot_capacity: usize, cold_capacity: usize) -> Self {
        TieredCache {
            inner: Mutex::new(TieredInner::default()),
            hot_capacity,
            cold_capacity,
        }
    }

    /// Look up a materialization; cold hits are promoted back to hot.
    pub fn get(&self, key: u64) -> Option<(Schema, Vec<Row>)> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.hot.get_mut(&key) {
            e.last_used = clock;
            let out = (e.schema.clone(), e.rows.clone());
            inner.stats.hot_hits += 1;
            return Some(out);
        }
        if let Some(ce) = inner.cold.remove(&key) {
            inner.cold_bytes -= ce.compressed.len();
            let decoded = crate::compress::decompress(&ce.compressed)?;
            let (schema, rows): (Schema, Vec<Row>) = serde_json::from_slice(&decoded).ok()?;
            inner.stats.cold_hits += 1;
            drop(inner);
            self.put(key, schema.clone(), rows.clone());
            return Some((schema, rows));
        }
        inner.stats.misses += 1;
        None
    }

    /// Insert into the hot tier, demoting LRU victims to the cold tier.
    pub fn put(&self, key: u64, schema: Schema, rows: Vec<Row>) {
        let bytes = rows.iter().map(ByteSize::byte_size).sum::<usize>();
        if bytes > self.hot_capacity {
            // Straight to cold.
            self.demote(key, &schema, &rows);
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.hot.insert(
            key,
            Entry {
                schema,
                rows,
                bytes,
                last_used: clock,
            },
        ) {
            inner.hot_bytes -= old.bytes;
        }
        inner.hot_bytes += bytes;
        while inner.hot_bytes > self.hot_capacity {
            let Some((&victim, _)) = inner.hot.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let Some(e) = inner.hot.remove(&victim) else {
                break;
            };
            inner.hot_bytes -= e.bytes;
            inner.stats.demotions += 1;
            drop(inner);
            self.demote(victim, &e.schema, &e.rows);
            inner = self.inner.lock();
        }
    }

    fn demote(&self, key: u64, schema: &Schema, rows: &[Row]) {
        let Ok(encoded) = serde_json::to_vec(&(schema, rows)) else {
            return;
        };
        let compressed = crate::compress::compress(&encoded);
        if compressed.len() > self.cold_capacity {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.cold.insert(
            key,
            ColdEntry {
                compressed,
                last_used: clock,
            },
        ) {
            inner.cold_bytes -= old.compressed.len();
        }
        inner.cold_bytes += inner.cold.get(&key).map_or(0, |e| e.compressed.len());
        while inner.cold_bytes > self.cold_capacity {
            let Some((&victim, _)) = inner.cold.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(e) = inner.cold.remove(&victim) {
                inner.cold_bytes -= e.compressed.len();
                inner.stats.cold_evictions += 1;
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> TierStats {
        self.inner.lock().stats
    }

    /// (hot entries, cold entries).
    pub fn tier_lens(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.hot.len(), inner.cold.len())
    }

    /// (hot bytes, compressed cold bytes).
    pub fn tier_bytes(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.hot_bytes, inner.cold_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![FieldDef::new(
            "x",
            FieldSemantics::value("temperature", "celsius"),
        )])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64)]))
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let c = ResultCache::new(1 << 20);
        c.put(42, schema(), rows(3));
        let (s, r) = c.get(42).unwrap();
        assert_eq!(s, schema());
        assert_eq!(r.len(), 3);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(43).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Each 10-row entry is ~400 bytes; capacity fits two.
        let entry_bytes = rows(10).iter().map(ByteSize::byte_size).sum::<usize>();
        let c = ResultCache::new(entry_bytes * 2 + 10);
        c.put(1, schema(), rows(10));
        c.put(2, schema(), rows(10));
        // Touch 1 so 2 becomes the LRU victim.
        c.get(1).unwrap();
        c.put(3, schema(), rows(10));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= entry_bytes * 2 + 10);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = ResultCache::new(10);
        c.put(1, schema(), rows(100));
        assert!(c.get(1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn replacing_an_entry_adjusts_bytes() {
        let c = ResultCache::new(1 << 20);
        c.put(1, schema(), rows(100));
        let b1 = c.bytes();
        c.put(1, schema(), rows(10));
        assert!(c.bytes() < b1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn tiered_cache_demotes_to_cold_and_promotes_back() {
        let entry_bytes = rows(50).iter().map(ByteSize::byte_size).sum::<usize>();
        // Hot fits one entry; cold is generous.
        let c = TieredCache::new(entry_bytes + 8, 1 << 20);
        c.put(1, schema(), rows(50));
        c.put(2, schema(), rows(50)); // evicts 1 -> cold (compressed)
        let (hot, cold) = c.tier_lens();
        assert_eq!((hot, cold), (1, 1));
        assert_eq!(c.stats().demotions, 1);
        // Cold bytes are compressed: much smaller than raw.
        let (_, cold_bytes) = c.tier_bytes();
        assert!(cold_bytes < entry_bytes, "{cold_bytes} vs {entry_bytes}");
        // Fetching 1 hits cold and promotes it back to hot (evicting 2).
        let (_, r) = c.get(1).expect("cold hit");
        assert_eq!(r.len(), 50);
        assert_eq!(c.stats().cold_hits, 1);
        let (hot, _) = c.tier_lens();
        assert_eq!(hot, 1);
        // And now 1 is a hot hit.
        c.get(1).unwrap();
        assert_eq!(c.stats().hot_hits, 1);
    }

    #[test]
    fn tiered_cache_bounds_the_cold_tier() {
        let entry_bytes = rows(50).iter().map(ByteSize::byte_size).sum::<usize>();
        // Tiny tiers: cold holds roughly one compressed entry.
        let compressed_size = {
            let encoded = serde_json::to_vec(&(schema(), rows(50))).unwrap();
            crate::compress::compress(&encoded).len()
        };
        let c = TieredCache::new(entry_bytes + 8, compressed_size + 16);
        for k in 0..6 {
            c.put(k, schema(), rows(50));
        }
        let (_, cold_bytes) = c.tier_bytes();
        assert!(cold_bytes <= compressed_size + 16);
        assert!(c.stats().cold_evictions > 0);
    }

    #[test]
    fn tiered_cache_miss_is_counted() {
        let c = TieredCache::new(1 << 20, 1 << 20);
        assert!(c.get(99).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn oversized_hot_entries_go_straight_to_cold() {
        let c = TieredCache::new(64, 1 << 20);
        c.put(5, schema(), rows(100));
        let (hot, cold) = c.tier_lens();
        assert_eq!((hot, cold), (0, 1));
        assert!(c.get(5).is_some());
    }

    #[test]
    fn spill_persists_across_instances() {
        let dir = std::env::temp_dir().join(format!("sj-cache-test-{}", std::process::id()));
        {
            let c = ResultCache::with_spill(1 << 20, &dir).unwrap();
            c.put(7, schema(), rows(4));
        }
        {
            let c = ResultCache::with_spill(1 << 20, &dir).unwrap();
            let (_, r) = c.get(7).expect("spilled entry should be readable");
            assert_eq!(r.len(), 4);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
