//! The derivation engine (§5): queries, plans, and the search.
//!
//! Performance analysts do not name tables or columns. A [`Query`] names
//! only the *dimensions* of the domains and values of interest — "the
//! value `application` for the domain `job`, and the value `heat` for the
//! domain `rack`" — and the engine searches the catalog, **over semantics
//! only**, for a sequence of derivations producing a dataset that relates
//! them. The found sequence is a serializable, reproducible [`Plan`]
//! executed separately (and optionally cached).

pub mod constraint;
mod plan;
mod search;

pub use plan::{Plan, PlanCache};
pub use search::{EngineConfig, EngineStats, PlannerKind, QueryEngine};

use crate::error::{Result, SjError};
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::units::UnitKind;
use serde::{Deserialize, Serialize};

/// One requested measurement: a value dimension, optionally constrained to
/// specific units ("instructions, per millisecond").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryValue {
    /// Dimension keyword of the value of interest.
    pub dimension: String,
    /// Optional units constraint.
    pub units: Option<String>,
}

impl QueryValue {
    /// A value request without a units constraint.
    pub fn dim(dimension: &str) -> Self {
        QueryValue {
            dimension: dimension.into(),
            units: None,
        }
    }

    /// A value request with a units constraint.
    pub fn with_units(dimension: &str, units: &str) -> Self {
        QueryValue {
            dimension: dimension.into(),
            units: Some(units.into()),
        }
    }
}

/// A ScrubJay query: the domain dimensions and value dimensions of
/// interest (§5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Domain dimensions the result must be defined over.
    pub domains: Vec<String>,
    /// Value dimensions (with optional units) the result must measure.
    pub values: Vec<QueryValue>,
}

impl Query {
    /// Build a query from domain dimension names and value requests.
    pub fn new(domains: impl IntoIterator<Item = &'static str>, values: Vec<QueryValue>) -> Self {
        Query {
            domains: domains.into_iter().map(String::from).collect(),
            values,
        }
    }

    /// A canonical ordering for cache keys: domains and values sorted and
    /// deduplicated. Two queries asking for the same thing in different
    /// orders normalize to the same `Query`, and therefore the same hash —
    /// which is what lets a service-side plan cache recognize them as one
    /// entry.
    pub fn normalized(&self) -> Query {
        let mut domains = self.domains.clone();
        domains.sort();
        domains.dedup();
        let mut values = self.values.clone();
        values.sort_by(|a, b| (&a.dimension, &a.units).cmp(&(&b.dimension, &b.units)));
        values.dedup();
        Query { domains, values }
    }

    /// Validate every keyword against the dictionary, resolving aliases
    /// into canonical form.
    pub fn canonicalize(&self, dict: &SemanticDictionary) -> Result<Query> {
        let mut domains = Vec::with_capacity(self.domains.len());
        for d in &self.domains {
            domains.push(dict.dimension(d)?.name.clone());
        }
        let mut values = Vec::with_capacity(self.values.len());
        for v in &self.values {
            let dimension = dict.dimension(&v.dimension)?.name.clone();
            let units = match &v.units {
                None => None,
                Some(u) => {
                    let units = dict.units(u)?;
                    if units.dimension != dimension {
                        return Err(SjError::SemanticsInvalid(format!(
                            "query units `{u}` lie on dimension `{}`, not `{dimension}`",
                            units.dimension
                        )));
                    }
                    Some(units.name.clone())
                }
            };
            values.push(QueryValue { dimension, units });
        }
        Ok(Query { domains, values })
    }

    /// Whether a schema satisfies this (canonicalized) query: every
    /// requested domain dimension appears as a domain column and every
    /// requested value appears as a value column with acceptable units.
    pub fn satisfied_by(&self, schema: &Schema, dict: &SemanticDictionary) -> bool {
        for d in &self.domains {
            if schema.domain_field_on(d).is_none() {
                return false;
            }
        }
        for v in &self.values {
            if !self.value_satisfied(v, schema, dict) {
                return false;
            }
        }
        true
    }

    fn value_satisfied(&self, v: &QueryValue, schema: &Schema, dict: &SemanticDictionary) -> bool {
        schema.value_fields().any(|f| {
            if f.semantics.dimension != v.dimension {
                return false;
            }
            match &v.units {
                None => true,
                Some(want) => {
                    if &f.semantics.units == want {
                        return true;
                    }
                    // Convertible scalar units also satisfy the request —
                    // the engine appends a unit conversion at the end.
                    match (dict.units(&f.semantics.units), dict.units(want)) {
                        (Ok(have), Ok(want)) => {
                            matches!(have.kind, UnitKind::Scalar { .. })
                                && matches!(want.kind, UnitKind::Scalar { .. })
                                && have.dimension == want.dimension
                        }
                        _ => false,
                    }
                }
            }
        })
    }

    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        let values: Vec<String> = self
            .values
            .iter()
            .map(|v| match &v.units {
                Some(u) => format!("{} [{}]", v.dimension, u),
                None => v.dimension.clone(),
            })
            .collect();
        format!(
            "domains({}) x values({})",
            self.domains.join(", "),
            values.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "fahrenheit")),
        ])
        .unwrap()
    }

    #[test]
    fn canonicalize_resolves_aliases_and_validates() {
        let q = Query::new(["node"], vec![QueryValue::dim("temperature")]);
        let c = q.canonicalize(&dict()).unwrap();
        assert_eq!(c.domains, vec!["compute-node"]);
        assert!(Query::new(["flux"], vec![]).canonicalize(&dict()).is_err());
    }

    #[test]
    fn canonicalize_rejects_units_on_wrong_dimension() {
        let q = Query::new(
            ["rack"],
            vec![QueryValue::with_units("temperature", "watts")],
        );
        assert!(q.canonicalize(&dict()).is_err());
    }

    #[test]
    fn satisfaction_requires_domains_and_values() {
        let d = dict();
        let s = schema();
        assert!(Query::new(["rack"], vec![QueryValue::dim("temperature")])
            .canonicalize(&d)
            .unwrap()
            .satisfied_by(&s, &d));
        assert!(!Query::new(["job"], vec![QueryValue::dim("temperature")])
            .canonicalize(&d)
            .unwrap()
            .satisfied_by(&s, &d));
        assert!(!Query::new(["rack"], vec![QueryValue::dim("heat")])
            .canonicalize(&d)
            .unwrap()
            .satisfied_by(&s, &d));
    }

    #[test]
    fn convertible_units_satisfy_a_constrained_value() {
        let d = dict();
        let s = schema();
        // The schema has Fahrenheit; Celsius is convertible.
        let q = Query::new(
            ["rack"],
            vec![QueryValue::with_units("temperature", "celsius")],
        )
        .canonicalize(&d)
        .unwrap();
        assert!(q.satisfied_by(&s, &d));
        // Counts are not convertible to rates by mere unit conversion.
        let counts = Schema::new(vec![
            FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
            FieldDef::new(
                "i",
                FieldSemantics::value("instructions", "instructions-count"),
            ),
        ])
        .unwrap();
        let q = Query::new(
            ["cpu"],
            vec![QueryValue::with_units(
                "instructions",
                "instructions-per-ms",
            )],
        )
        .canonicalize(&d)
        .unwrap();
        assert!(!q.satisfied_by(&counts, &d));
    }

    #[test]
    fn a_domain_column_does_not_satisfy_a_value_request() {
        let d = dict();
        // time appears as a domain; querying the value `time` (elapsed)
        // must not be satisfied by it.
        let q = Query::new(["rack"], vec![QueryValue::dim("time")])
            .canonicalize(&d)
            .unwrap();
        assert!(!q.satisfied_by(&schema(), &d));
    }

    #[test]
    fn describe_mentions_everything() {
        let q = Query::new(
            ["job", "rack"],
            vec![
                QueryValue::dim("application"),
                QueryValue::with_units("heat", "delta-celsius"),
            ],
        );
        let s = q.describe();
        assert!(s.contains("job"));
        assert!(s.contains("heat [delta-celsius]"));
    }
}
